//! Offline no-op stand-in for `serde_derive`.
//!
//! This workspace never serializes anything (there is no `serde_json` or
//! other format crate in the dependency graph); the `#[derive(Serialize,
//! Deserialize)]` attributes on model types are decoration for future
//! interop. The real `serde_derive` cannot be fetched in the offline
//! build environment, so these derives simply expand to nothing — the
//! companion `serde` stub provides blanket trait impls, keeping every
//! `T: Serialize` bound satisfiable.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
