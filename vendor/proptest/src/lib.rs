//! Offline mini stand-in for the `proptest` crate.
//!
//! The real `proptest` cannot be fetched in the offline build
//! environment. This crate implements the subset of its API the
//! workspace's property tests use — strategies over ranges, tuples and
//! collections, `prop_map`, weighted `prop_oneof!`, `Just`, `any`, and
//! the `proptest!` / `prop_assert*` / `prop_assume!` macros — with two
//! deliberate differences:
//!
//! * **Determinism.** Cases are generated from a seed derived from the
//!   test's module path, name, and case index, never from OS entropy.
//!   The same binary always tests the same cases — in keeping with this
//!   repository's everything-is-seeded policy — so failures reproduce
//!   with a plain `cargo test`.
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) and case number but is not minimized.
//!
//! The generator behind every strategy is SplitMix64, which is
//! statistically solid for test-input generation.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import the workspace's tests use: strategies, `any`,
/// `Just`, the config type, and the macros.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each function runs `config.cases` times with
/// inputs drawn from the given strategies; `prop_assert*` failures
/// report the case number and panic.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rejected: u32 = 0;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > config.cases * 16 {
                                panic!(
                                    "{}: too many rejected cases ({rejected}); weaken prop_assume!",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("{} failed at case {case}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Assert inside a `proptest!` body; failure aborts only the current
/// case with a readable message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discard the current case when its inputs do not satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose among strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u32),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u32..=4, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u32..5, any::<bool>()), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&(n, _)| n < 5));
        }

        #[test]
        fn prop_map_and_oneof(p in prop_oneof![3 => (1u32..10).prop_map(Pick::A), 1 => Just(Pick::B)]) {
            match p {
                Pick::A(n) => prop_assert!((1..10).contains(&n)),
                Pick::B => {}
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn same_case_same_inputs() {
        let mut a = TestRng::for_case("x", 7);
        let mut b = TestRng::for_case("x", 7);
        let s = crate::collection::vec(0u64..1000, 1..50);
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }

    #[test]
    fn weighted_oneof_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::for_case("weights", 0);
        let hits = (0..1000).filter(|_| Strategy::sample(&s, &mut rng)).count();
        assert!(hits > 800, "expected ~900 true draws, got {hits}");
    }
}
