//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// sampling function.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Clone + std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Object-safe view of a strategy, so differently-typed strategies over
/// the same value type can live in one collection.
trait DynStrategy<T> {
    fn dyn_sample(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T: Clone + std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_sample(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice among boxed strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms; total weight must be > 0.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T: Clone + std::fmt::Debug> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = u64::from(self.end.abs_diff(self.start));
                    let off = rng.below(span);
                    // Widen through the unsigned domain so signed lower
                    // bounds cannot overflow.
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = u64::from(hi.abs_diff(lo));
                    let off = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.below(span + 1)
                    };
                    (lo as i128 + off as i128) as $t
                }
            }
        )*
    };
}

int_range_strategies!(u8, u16, u32, i32, i64);

// u64/usize spans do not fit the u64-returning abs_diff pattern above
// uniformly on 32-bit targets, so they get their own impls.
macro_rules! wide_range_strategies {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    let off = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.below(span + 1)
                    };
                    lo + off as $t
                }
            }
        )*
    };
}

wide_range_strategies!(u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn signed_range_handles_negative_bounds() {
        let mut rng = TestRng::for_case("signed", 0);
        for _ in 0..200 {
            let v = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn boxed_strategies_mix_types() {
        let arms: Vec<BoxedStrategy<u32>> =
            vec![(0u32..3).sample_boxed(), Just(9u32).sample_boxed()];
        let mut rng = TestRng::for_case("mix", 0);
        for s in &arms {
            let _ = s.sample(&mut rng);
        }
    }

    trait SampleBoxed<T> {
        fn sample_boxed(self) -> BoxedStrategy<T>;
    }

    impl<S: Strategy + 'static> SampleBoxed<S::Value> for S {
        fn sample_boxed(self) -> BoxedStrategy<S::Value> {
            self.boxed()
        }
    }
}
