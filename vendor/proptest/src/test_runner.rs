//! Deterministic case generation: the per-case RNG and runner config.

/// Per-test configuration. Only `cases` is honored by the mini runner.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to generate and check per property.
    pub cases: u32,
}

impl Config {
    /// Run `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition unmet; the case is skipped.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a formatted message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// SplitMix64 generator seeded from a test identifier and case index.
///
/// The identifier is the test's full module path plus function name, so
/// distinct tests explore distinct input streams, while reruns of the
/// same binary replay identical cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `ident`.
    #[must_use]
    pub fn for_case(ident: &str, case: u32) -> Self {
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        for &b in ident.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        TestRng {
            state: splitmix64(h ^ (u64::from(case) << 32 | 0x5bf0_3635)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// One step of the SplitMix64 output function, used for seeding.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let a = TestRng::for_case("mod::alpha", 0).next_u64();
        let b = TestRng::for_case("mod::beta", 0).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = TestRng::for_case("below", 0);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = TestRng::for_case("unit", 0);
        for _ in 0..1000 {
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
