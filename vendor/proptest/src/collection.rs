//! Collection strategies: `collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for a `Vec` whose length is drawn from `len` and whose
/// elements are drawn from `element`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A `Vec<S::Value>` with length in `len` (half-open).
#[must_use]
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "empty length range for collection::vec"
    );
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
