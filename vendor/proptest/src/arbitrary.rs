//! `any::<T>()` — canonical full-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Clone + std::fmt::Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::any;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn any_bool_produces_both_values() {
        let mut rng = TestRng::for_case("anybool", 0);
        let s = any::<bool>();
        let draws: Vec<bool> = (0..64).map(|_| s.sample(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
