//! Offline no-op stand-in for `serde`.
//!
//! The real `serde` cannot be fetched in the offline build environment,
//! and nothing in this workspace actually serializes (no format crate is
//! present). This stub keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` decorations and `T: Serialize` bounds compiling:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits with blanket
//!   impls, so every bound is trivially satisfied;
//! * the derive macros (re-exported from the sibling `serde_derive`
//!   stub) expand to nothing.
//!
//! Swapping the real serde back in is a two-line `Cargo.toml` change; no
//! source edits are required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(crate::Serialize, crate::Deserialize)]
    struct Probe {
        _x: u32,
    }

    fn takes_serialize<T: super::Serialize>(_t: &T) {}

    #[test]
    fn derives_expand_and_bounds_hold() {
        takes_serialize(&Probe { _x: 1 });
        takes_serialize(&vec![1u8, 2, 3]);
    }
}
