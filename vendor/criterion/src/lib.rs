//! Offline mini stand-in for the `criterion` benchmark harness.
//!
//! The real `criterion` cannot be fetched in the offline build
//! environment. This crate keeps the workspace's `[[bench]]` targets
//! compiling and runnable with the same source: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, and `black_box`.
//!
//! Statistics are intentionally simple — each benchmark runs a fixed
//! number of timed iterations and reports the mean and min wall-clock
//! time per iteration. There is no warm-up calibration, outlier
//! analysis, or HTML report.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after a few warm-up runs).
const MEASURE_ITERS: u32 = 20;
const WARMUP_ITERS: u32 = 3;

/// Top-level harness handle, passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Parse CLI args — accepted for API parity, ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// End of run — the real crate prints a summary here.
    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the mini harness uses a fixed iteration
    /// count instead of a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; measurement time is not configurable.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into_benchmark_id().0), f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        run_one(
            &format!("{}/{}", self.name, id.into_benchmark_id().0),
            |b| {
                f(b, input);
            },
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id combining a function name and a parameter value.
    #[must_use]
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id naming only the parameter value.
    #[must_use]
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Things usable as a benchmark id: `BenchmarkId` or plain strings.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timer handle given to the benchmarked closure.
pub struct Bencher {
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, repeating it enough times to measure.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..MEASURE_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.per_iter.push(start.elapsed());
        }
    }
}

fn run_one<F>(label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        per_iter: Vec::new(),
    };
    f(&mut bencher);
    if bencher.per_iter.is_empty() {
        eprintln!("  {label}: no measurements");
        return;
    }
    let total: Duration = bencher.per_iter.iter().sum();
    let mean = total / bencher.per_iter.len() as u32;
    let min = bencher.per_iter.iter().min().copied().unwrap_or_default();
    eprintln!(
        "  {label}: mean {:.3} ms, min {:.3} ms ({} iters)",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        bencher.per_iter.len()
    );
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running each group collected by `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_input_benches_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::from_parameter(5u32), &5u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>());
        });
        group.finish();
    }
}
