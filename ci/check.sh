#!/usr/bin/env bash
# Pre-merge gate: formatting, clippy (deny warnings), the project's own
# determinism/invariant lint, and the full test suite. Run from anywhere;
# CI and contributors run exactly this script (see CONTRIBUTING.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> g2pl-lint (L1 determinism / L2 ambient time+entropy / L3 panics)"
cargo run -q -p g2pl-lint

echo "==> cargo test"
cargo test -q --workspace

echo "ci/check.sh: all gates passed"
