#!/usr/bin/env bash
# Pre-merge gate: formatting, clippy (deny warnings), the project's own
# determinism/invariant lint, and the full test suite. Run from anywhere;
# CI and contributors run exactly this script (see CONTRIBUTING.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> g2pl-lint (workspace analyzer: L1-L7 + state-machine reachability)"
# Deny-new-findings mode: the analyzer exits nonzero on ANY unsuppressed
# finding across every workspace member, so a new violation (or a stale
# allow marker) fails the gate here. The summary line prints the wall
# time; the analyzer must stay interactive (< 5s) so it can run on every
# pre-merge check without anyone being tempted to skip it.
cargo run -q --release -p g2pl-lint

echo "==> g2pl-lint --dot smoke (state-machine extraction)"
# The extractor must keep seeing the protocol engines: one digraph per
# engine, or the reachability lints above are checking an empty graph.
dot_out="$(cargo run -q --release -p g2pl-lint -- --dot)"
for engine in g2pl s2pl c2pl; do
  echo "$dot_out" | grep -q "digraph $engine {" \
    || { echo "g2pl-lint --dot: missing state machine for $engine"; exit 1; }
done

echo "==> cargo test"
cargo test -q --workspace

echo "==> trace-explain smoke (span export + round accounting)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run -q -p g2pl-bench --bin repro -- --scale smoke --trace-out "$trace_dir" fig2 >/dev/null
explain_out="$(cargo run -q -p g2pl-bench --bin trace-explain -- --best-case "$trace_dir"/*.jsonl || true)"
echo "$explain_out" | grep -q "round-check: PASS (s-2PL" \
  || { echo "trace-explain: s-2PL round check failed"; echo "$explain_out"; exit 1; }
echo "$explain_out" | grep -q "round-check: PASS (g-2PL" \
  || { echo "trace-explain: g-2PL round check failed"; echo "$explain_out"; exit 1; }
if echo "$explain_out" | grep -q "FAIL"; then
  echo "trace-explain: a check failed"; echo "$explain_out"; exit 1
fi

echo "==> trace-explain --tail smoke (flight recorder + marker cross-check)"
# Tail mode replays the exported trace, attributes the worst-k
# transactions to phases, and cross-checks the exporter's slow_txn
# markers against the replayed flight recorder.
tail_out="$(cargo run -q -p g2pl-bench --bin trace-explain -- --tail "$trace_dir"/*.jsonl || true)"
echo "$tail_out" | grep -q "tail-check: PASS" \
  || { echo "trace-explain --tail: marker cross-check failed"; echo "$tail_out"; exit 1; }
if echo "$tail_out" | grep -q "FAIL"; then
  echo "trace-explain --tail: a check failed"; echo "$tail_out"; exit 1
fi

echo "==> tail smoke (fig_tail load sweep: drained, verified, quantile CSVs)"
# All three engines over the client sweep with drain on; every cell is
# verified (P1-P9 + serializability), and the figure must emit both the
# p99/p999 curves and the side tail CSV.
cargo run -q --release -p g2pl-bench --bin repro -- --scale smoke --out "$trace_dir" fig_tail >/dev/null
test -f "$trace_dir/fig_tail.csv" || { echo "tail smoke: fig_tail.csv missing"; exit 1; }
test -f "$trace_dir/fig_tail_tail.csv" || { echo "tail smoke: fig_tail_tail.csv missing"; exit 1; }
grep -q "^x,series,p50,p90,p99,p999,max,count$" "$trace_dir/fig_tail_tail.csv" \
  || { echo "tail smoke: quantile header missing"; exit 1; }

echo "==> fault smoke (fig_faults loss sweep, P1-P8 verification on)"
# Verification is on by default: every cell of the sweep re-runs with
# trace + history recording and must pass P1-P8 plus the serializability
# check, including the lossy cells exercising lease recovery.
cargo run -q --release -p g2pl-bench --bin repro -- --scale smoke --out "$trace_dir" fig_faults >/dev/null
test -f "$trace_dir/fig_faults.csv" || { echo "fault smoke: fig_faults.csv missing"; exit 1; }

echo "==> server-fault smoke (fig_server_faults outage sweep, P1-P9 verification on)"
# Each cell crashes the server twice mid-run; verification re-checks the
# trace against P1-P9 (crash-window hygiene, no lost acknowledged commit)
# plus serializability, and drain mode proves recovery liveness.
cargo run -q --release -p g2pl-bench --bin repro -- --scale smoke --out "$trace_dir" fig_server_faults >/dev/null
test -f "$trace_dir/fig_server_faults.csv" || { echo "server-fault smoke: fig_server_faults.csv missing"; exit 1; }

echo "==> shard-fault smoke (fig_shard_faults per-shard outage sweep, P1-P10 verification on)"
# Each cell beyond one shard mixes 30% multi-home transactions and
# crashes the highest shard twice mid-run; verification re-checks every
# trace against P1-P10 (cross-shard atomicity: no lost acknowledged
# commit, no unresolved prepare vote) plus serializability, and drain
# mode proves recovery liveness across 1/2/4/8 fault domains.
cargo run -q --release -p g2pl-bench --bin repro -- --scale smoke --out "$trace_dir" fig_shard_faults >/dev/null
test -f "$trace_dir/fig_shard_faults.csv" || { echo "shard-fault smoke: fig_shard_faults.csv missing"; exit 1; }
test -f "$trace_dir/fig_shard_faults_tail.csv" || { echo "shard-fault smoke: fig_shard_faults_tail.csv missing"; exit 1; }

echo "==> scale smoke (fig_scale clients x shards grid on the PDES)"
# Every cell of the sharded scale-out grid runs on the conservative PDES
# (one LP per shard, link latency as lookahead), drains to quiescence,
# and verifies its lock tables and client states before reporting; the
# figure must emit both the mean curves and the side tail CSV.
cargo run -q --release -p g2pl-bench --bin repro -- --scale smoke --out "$trace_dir" fig_scale >/dev/null
test -f "$trace_dir/fig_scale.csv" || { echo "scale smoke: fig_scale.csv missing"; exit 1; }
test -f "$trace_dir/fig_scale_tail.csv" || { echo "scale smoke: fig_scale_tail.csv missing"; exit 1; }
grep -q "^x,series,p50,p90,p99,p999,max,count$" "$trace_dir/fig_scale_tail.csv" \
  || { echo "scale smoke: quantile header missing"; exit 1; }

echo "==> scale-bench smoke (10k clients x 4 shards PDES datapoint)"
# One mid-size sharded cell end to end: drain + quiescence verification
# are part of the run; the datapoint JSON must parse under the schema
# the committed results/scale_datapoint.json uses.
cargo run -q --release -p g2pl-bench --bin repro -- --scale smoke scale-bench \
  --bench-out target/scale_datapoint_smoke.json >/dev/null
grep -q '"schema": "g2pl-scale-bench/1"' target/scale_datapoint_smoke.json \
  || { echo "scale-bench smoke: datapoint schema missing"; exit 1; }

echo "==> chaos smoke (randomized fault-plan search with shrinking, shard-aware)"
# A small fixed-seed search: samples (seed, FaultPlan) pairs across all
# three engines, verifies every run end to end, and fails the gate with
# a minimal shrunk reproducer command line if any trial breaks.
cargo run -q --release -p g2pl-bench --bin chaos -- --trials 6 --seed 1

echo "==> multi-shard chaos smoke (seeded repro: crash a non-zero shard mid-run)"
# One pinned multi-shard case per engine: 4 fault domains, 30% multi-home
# transactions, shard 2 crashed mid multi-home commitment plus an
# inter-shard partition — the exact scenario P10 exists to police.
for engine in g2pl s2pl c2pl; do
  cargo run -q --release -p g2pl-bench --bin chaos -- --repro --engine "$engine" --seed 7 \
    --shards 4 --server-crash 2:5000:1200:0 --shard-partition 1:2:6000:9000 \
    || { echo "multi-shard chaos smoke: $engine failed"; exit 1; }
done

echo "==> bench smoke (engine throughput vs committed baseline)"
# The engine cells are scale-independent (fixed workload, best-of-3), so
# a smoke run is comparable to the committed default-scale BENCH_pr7.json.
# Fails if aggregate cell throughput regresses more than 30%.
cargo run -q --release -p g2pl-bench --bin repro -- --scale smoke bench \
  --bench-out target/BENCH_pr7.json --baseline BENCH_pr7.json >/dev/null

echo "ci/check.sh: all gates passed"
