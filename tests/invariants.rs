//! Property-based invariant tests across all protocol engines.
//!
//! Every engine, under randomly drawn configurations, must:
//! * produce conflict-serializable committed histories;
//! * drain to quiescence (all items home, no locks held, no data stuck);
//! * fill its measurement window exactly;
//! * be bit-deterministic under a fixed seed.

use g2pl_core::prelude::*;
use proptest::prelude::*;

fn arb_protocol() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::S2pl),
        Just(ProtocolKind::C2pl),
        (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(mr1w, consistent, expand)| {
            let mut opts = G2plOpts {
                mr1w,
                expand_reads: expand,
                ..G2plOpts::default()
            };
            if !consistent {
                opts.ordering = g2pl_fwdlist::OrderingRule::fifo();
            }
            ProtocolKind::G2pl(opts)
        }),
    ]
}

fn arb_config() -> impl Strategy<Value = EngineConfig> {
    (
        arb_protocol(),
        2u32..12,      // clients
        1u64..300,     // latency
        0u32..=10,     // read probability tenths
        1u32..=4,      // max items per txn
        any::<u64>(),  // seed
        any::<bool>(), // messaged aborts
    )
        .prop_map(
            |(protocol, clients, latency, pr10, max_items, seed, messaged)| {
                let mut cfg =
                    EngineConfig::table1(protocol, clients, latency, f64::from(pr10) / 10.0);
                cfg.profile.max_items = max_items;
                cfg.items = g2pl_protocols::ItemSpace::single(8);
                cfg.warmup_txns = 20;
                cfg.measured_txns = 150;
                cfg.seed = seed;
                cfg.drain = true;
                cfg.record_history = true;
                if messaged {
                    cfg.abort_effect = AbortEffect::Messaged;
                }
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Committed histories are conflict-serializable with well-formed
    /// version chains, for every protocol and optimization combination.
    #[test]
    fn histories_are_serializable(cfg in arb_config()) {
        let m = run(&cfg).expect("valid config");
        let history = m.history.as_ref().expect("history enabled");
        let label = m.protocol;
        check_serializable(history)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }

    /// Runs drain to quiescence (the engines assert conservation
    /// internally when `drain` is set) and fill the measurement window.
    #[test]
    fn runs_drain_and_fill_window(cfg in arb_config()) {
        let m = run(&cfg).expect("valid config");
        prop_assert_eq!(m.aborts.trials(), cfg.measured_txns);
        prop_assert!(m.committed_total > 0);
        // Every committed transaction has a response sample or fell in
        // the warm-up / post-window period.
        prop_assert!(m.response.count() <= m.committed_total);
    }

    /// Same seed, same metrics — full determinism.
    #[test]
    fn determinism(cfg in arb_config()) {
        let a = run(&cfg).expect("valid config");
        let b = run(&cfg).expect("valid config");
        prop_assert_eq!(a.response.mean(), b.response.mean());
        prop_assert_eq!(a.committed_total, b.committed_total);
        prop_assert_eq!(a.aborted_total, b.aborted_total);
        prop_assert_eq!(a.net.messages(), b.net.messages());
        prop_assert_eq!(a.net.bytes(), b.net.bytes());
        prop_assert_eq!(a.end_time, b.end_time);
    }
}

/// Aborted transactions never appear in the committed history.
#[test]
fn aborted_txns_never_commit() {
    let mut cfg = EngineConfig::table1(ProtocolKind::g2pl_paper(), 10, 50, 0.3);
    cfg.warmup_txns = 0;
    cfg.measured_txns = 400;
    cfg.drain = true;
    cfg.record_history = true;
    let m = run(&cfg).expect("valid config");
    assert!(m.aborted_total > 0, "want some aborts for this test");
    let h = m.history.expect("history");
    assert_eq!(
        h.len() as u64,
        m.committed_total,
        "history records exactly the committed transactions"
    );
    // Distinct transactions only.
    let mut ids: Vec<_> = h.records().iter().map(|r| r.txn).collect();
    let before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), before);
}

/// Trace replay drives two different protocols with byte-identical
/// transaction streams.
#[test]
fn trace_replay_pairs_protocols() {
    use g2pl_workload::{Trace, TxnGenerator, TxnProfile};
    let generator = TxnGenerator::new(TxnProfile::table1(0.4), 25);
    let trace = Trace::record(&generator, 6, 50, 999);

    let mk = |protocol: ProtocolKind| {
        let mut cfg = EngineConfig::table1(protocol, 6, 50, 0.4);
        cfg.replay = Some(trace.clone());
        cfg.warmup_txns = 0;
        cfg.measured_txns = 200;
        cfg.record_history = true;
        cfg.drain = true;
        cfg
    };
    let s = run(&mk(ProtocolKind::S2pl)).expect("valid config");
    let g = run(&mk(ProtocolKind::g2pl_paper())).expect("valid config");
    // Both histories are serializable and built from the same spec pool.
    check_serializable(s.history.as_ref().unwrap()).unwrap();
    check_serializable(g.history.as_ref().unwrap()).unwrap();
    assert!(s.committed_total > 0 && g.committed_total > 0);

    // Replay is deterministic: same protocol, same trace => same metrics.
    let s2 = run(&mk(ProtocolKind::S2pl)).expect("valid config");
    assert_eq!(s.response.mean(), s2.response.mean());
    assert_eq!(s.net.messages(), s2.net.messages());
}

/// WAL bookkeeping: enabling it changes no modelled metric, logs drain to
/// empty, and g-2PL retains strictly more log space than s-2PL (versions
/// migrate before becoming permanent).
#[test]
fn wal_invariants_and_retention_ordering() {
    let mk = |protocol: ProtocolKind, wal: bool| {
        let mut cfg = EngineConfig::table1(protocol, 12, 250, 0.25);
        cfg.warmup_txns = 50;
        cfg.measured_txns = 400;
        cfg.drain = true;
        cfg.enable_wal = wal;
        cfg
    };
    for protocol in [
        ProtocolKind::S2pl,
        ProtocolKind::g2pl_paper(),
        ProtocolKind::C2pl,
    ] {
        let with = run(&mk(protocol.clone(), true)).expect("valid config");
        let without = run(&mk(protocol, false)).expect("valid config");
        assert_eq!(
            with.response.mean(),
            without.response.mean(),
            "{}: WAL bookkeeping must not perturb the model",
            with.protocol
        );
        assert_eq!(with.net.messages(), without.net.messages());
        let wal = with.wal.expect("wal enabled");
        assert_eq!(wal.end_live_records, 0, "drained run must empty the logs");
        assert!(wal.forces > 0, "commits force the log");
        assert!(wal.bytes_written > 0);
    }

    let s = run(&mk(ProtocolKind::S2pl, true))
        .expect("valid config")
        .wal
        .unwrap();
    let g = run(&mk(ProtocolKind::g2pl_paper(), true))
        .expect("valid config")
        .wal
        .unwrap();
    assert!(
        g.high_water_bytes_max > s.high_water_bytes_max,
        "g-2PL must retain more log space (g {} vs s {})",
        g.high_water_bytes_max,
        s.high_water_bytes_max
    );
}
