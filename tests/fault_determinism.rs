//! Workspace-level acceptance tests for the fault-injection subsystem.
//!
//! Two properties anchor the whole design:
//!
//! 1. **Determinism** — a run is a pure function of `(config, seed)`,
//!    fault plan included. Same seed and plan must reproduce the exact
//!    event trace, not just the same aggregate numbers.
//! 2. **Inertness** — a present-but-empty `FaultPlan` takes the
//!    fault-free code path everywhere, so every pre-fault artifact
//!    (figures, tables, traces) stays byte-identical.

use g2pl_core::prelude::*;
use g2pl_faults::{CrashWindow, FaultPlan};

fn trio() -> [ProtocolKind; 3] {
    [
        ProtocolKind::S2pl,
        ProtocolKind::g2pl_paper(),
        ProtocolKind::C2pl,
    ]
}

fn lossy_cfg(p: ProtocolKind, loss: f64) -> EngineConfig {
    let mut cfg = EngineConfig::table1(p, 8, 50, 0.4);
    cfg.warmup_txns = 20;
    cfg.measured_txns = 250;
    cfg.drain = true;
    cfg.trace_events = true;
    cfg.faults = Some(FaultPlan::message_loss(loss));
    cfg
}

#[test]
fn same_seed_and_plan_reproduce_the_exact_trace() {
    for p in trio() {
        let cfg = lossy_cfg(p.clone(), 0.05);
        let a = run(&cfg).expect("valid config");
        let b = run(&cfg).expect("valid config");
        assert!(a.faults.injected.total() > 0, "{p:?}: no faults fired");
        assert_eq!(a.committed_total, b.committed_total, "{p:?}");
        assert_eq!(a.aborted_total, b.aborted_total, "{p:?}");
        assert_eq!(a.events, b.events, "{p:?}");
        assert_eq!(a.net.messages(), b.net.messages(), "{p:?}");
        assert_eq!(a.faults.injected, b.faults.injected, "{p:?}");
        assert_eq!(
            a.trace.as_deref(),
            b.trace.as_deref(),
            "{p:?}: traces diverged under an identical plan"
        );
    }
}

#[test]
fn different_seeds_draw_different_faults() {
    let mut a_cfg = lossy_cfg(ProtocolKind::S2pl, 0.05);
    let mut b_cfg = a_cfg.clone();
    a_cfg.seed = 7;
    b_cfg.seed = 8;
    let a = run(&a_cfg).expect("valid config");
    let b = run(&b_cfg).expect("valid config");
    // The loss lottery is seeded from the master seed; distinct seeds
    // must not share a coin sequence (equal totals would be a one-in-
    // thousands coincidence over ~5% of all messages).
    assert_ne!(
        (a.faults.injected, a.net.messages()),
        (b.faults.injected, b.net.messages())
    );
}

#[test]
fn inert_plan_is_byte_identical_to_no_plan() {
    for p in trio() {
        let mut pristine = EngineConfig::table1(p.clone(), 10, 100, 0.5);
        pristine.warmup_txns = 20;
        pristine.measured_txns = 300;
        pristine.trace_events = true;
        let mut inert = pristine.clone();
        inert.faults = Some(FaultPlan::default());
        let a = run(&pristine).expect("valid config");
        let b = run(&inert).expect("valid config");
        assert_eq!(a.events, b.events, "{p:?}");
        assert_eq!(a.net.messages(), b.net.messages(), "{p:?}");
        assert_eq!(a.response.mean(), b.response.mean(), "{p:?}");
        assert_eq!(a.trace.as_deref(), b.trace.as_deref(), "{p:?}");
        assert!(!b.faults.any(), "{p:?}: inert plan counted faults");
    }
}

#[test]
fn zero_loss_plan_reproduces_fault_free_numbers() {
    // fig_faults' leftmost sweep point carries `message_loss(0.0)`; it
    // must reproduce the fault-free column of the corresponding
    // latency figure exactly, or the loss sweep has no baseline.
    assert_eq!(experiments::LOSS_SWEEP[0], 0.0);
    for p in trio() {
        let mut pristine = EngineConfig::table1(p.clone(), 12, 250, 0.6);
        pristine.warmup_txns = 20;
        pristine.measured_txns = 300;
        pristine.drain = true;
        let mut zero = pristine.clone();
        zero.faults = Some(FaultPlan::message_loss(0.0));
        let a = run(&pristine).expect("valid config");
        let b = run(&zero).expect("valid config");
        assert_eq!(a.response.mean(), b.response.mean(), "{p:?}");
        assert_eq!(a.events, b.events, "{p:?}");
        assert!(!b.faults.any(), "{p:?}");
    }
}

#[test]
fn crash_recovery_is_deterministic_and_commits() {
    for p in trio() {
        let mk = || {
            let mut cfg = EngineConfig::table1(p.clone(), 6, 50, 0.3);
            cfg.warmup_txns = 10;
            cfg.measured_txns = 150;
            cfg.drain = true;
            cfg.trace_events = true;
            cfg.faults = Some(FaultPlan {
                crashes: vec![CrashWindow {
                    client: 2,
                    at: 4_000,
                    down_for: 2_000,
                }],
                ..FaultPlan::default()
            });
            run(&cfg).expect("valid config")
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.faults.crashes, 1, "{p:?}: crash did not fire");
        assert_eq!(a.committed_total, b.committed_total, "{p:?}");
        assert_eq!(a.trace.as_deref(), b.trace.as_deref(), "{p:?}");
        assert!(a.committed_total > 0, "{p:?}: nothing committed");
    }
}

#[test]
fn lossy_runs_pass_every_trace_property() {
    for p in trio() {
        let cfg = lossy_cfg(p.clone(), 0.05);
        let m = run(&cfg).expect("valid config");
        let trace = m.trace.as_deref().expect("trace recorded");
        let opts = TraceCheckOpts::for_config(&cfg);
        check_trace_with(trace, opts).unwrap_or_else(|e| panic!("{p:?} under 5% loss: {e}"));
    }
}
