//! Serial vs grid-parallel sweeps must be bit-identical.
//!
//! The grid scheduler ([`g2pl_core::run_grid`]) flattens every
//! `(point, replication)` cell of a figure onto one worker pool. Worker
//! count is pure scheduling: each cell is an independent deterministic
//! simulation, and aggregation reads the result slots in replication
//! order. These tests pin that property at the figure level — the same
//! figure computed with one worker and with many must produce the same
//! `FigureData` down to the last bit (means, confidence intervals, and
//! point order).

use g2pl_core::prelude::*;

/// The worker-count override is process-global, so tests that flip it
/// must not interleave.
static WORKERS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` once serially and once with a wide worker pool, restoring the
/// default afterwards, and return both outputs.
fn serial_and_parallel<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _guard = WORKERS_LOCK.lock().expect("workers lock poisoned");
    set_grid_workers(Some(1));
    let serial = f();
    set_grid_workers(Some(8));
    let parallel = f();
    set_grid_workers(None);
    (serial, parallel)
}

#[test]
fn fig2_sweep_is_identical_serial_and_parallel() {
    let (serial, parallel) = serial_and_parallel(|| {
        experiments::figure("fig2")
            .expect("registered")
            .build(Scale::Smoke)
    });
    assert_eq!(serial, parallel, "worker count changed figure output");
    // Sanity: the figure has both protocols over the full sweep.
    assert_eq!(serial.series.len(), 2);
    assert_eq!(serial.xs().len(), experiments::LATENCY_SWEEP.len());
}

#[test]
fn fig11_custom_sweep_is_identical_serial_and_parallel() {
    let (serial, parallel) = serial_and_parallel(|| {
        experiments::figure("fig11")
            .expect("registered")
            .build(Scale::Smoke)
    });
    assert_eq!(serial, parallel, "worker count changed figure output");
    assert_eq!(serial.series.len(), 1);
}

#[test]
fn fig_tail_sweep_is_identical_serial_and_parallel() {
    // `FigureData` equality covers the tail columns too, so this pins
    // the pooled quantile sketches — not just the means — against
    // worker-count effects.
    let (serial, parallel) = serial_and_parallel(|| {
        experiments::figure("fig_tail")
            .expect("registered")
            .build(Scale::Smoke)
    });
    assert_eq!(serial, parallel, "worker count changed tail-figure output");
    // p99 + p999 curves per engine, one tail series per engine.
    assert_eq!(serial.series.len(), 6);
    assert_eq!(serial.tails.len(), 3);
    for t in &serial.tails {
        assert_eq!(t.points.len(), experiments::CLIENT_SWEEP.len());
        for p in &t.points {
            assert!(
                p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999 && p.p999 <= p.max,
                "{}: quantiles not monotone at x={}",
                t.label,
                p.x
            );
            assert!(p.count > 0, "{}: empty pooled sketch at x={}", t.label, p.x);
        }
    }
}

#[test]
fn pooled_sketch_is_identical_serial_and_parallel() {
    // Below the figure layer: the pooled replication sketch itself must
    // be bit-identical at any worker count.
    let mut cfg = EngineConfig::table1(ProtocolKind::g2pl_paper(), 8, 250, 0.25);
    cfg.warmup_txns = 50;
    cfg.measured_txns = 300;
    let (serial, parallel) = serial_and_parallel(|| run_replicated(&cfg, 3));
    assert_eq!(serial.response_tail(), parallel.response_tail());
    assert_eq!(
        serial.tail_summary().p999,
        parallel.tail_summary().p999,
        "pooled p999 differs across worker counts"
    );
}
