//! Serial vs grid-parallel sweeps must be bit-identical.
//!
//! The grid scheduler ([`g2pl_core::run_grid`]) flattens every
//! `(point, replication)` cell of a figure onto one worker pool. Worker
//! count is pure scheduling: each cell is an independent deterministic
//! simulation, and aggregation reads the result slots in replication
//! order. These tests pin that property at the figure level — the same
//! figure computed with one worker and with many must produce the same
//! `FigureData` down to the last bit (means, confidence intervals, and
//! point order).

use g2pl_core::prelude::*;

/// The worker-count override is process-global, so tests that flip it
/// must not interleave.
static WORKERS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` once serially and once with a wide worker pool, restoring the
/// default afterwards, and return both outputs.
fn serial_and_parallel<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _guard = WORKERS_LOCK.lock().expect("workers lock poisoned");
    set_grid_workers(Some(1));
    let serial = f();
    set_grid_workers(Some(8));
    let parallel = f();
    set_grid_workers(None);
    (serial, parallel)
}

#[test]
fn fig2_sweep_is_identical_serial_and_parallel() {
    let (serial, parallel) = serial_and_parallel(|| {
        experiments::figure("fig2")
            .expect("registered")
            .build(Scale::Smoke)
    });
    assert_eq!(serial, parallel, "worker count changed figure output");
    // Sanity: the figure has both protocols over the full sweep.
    assert_eq!(serial.series.len(), 2);
    assert_eq!(serial.xs().len(), experiments::LATENCY_SWEEP.len());
}

#[test]
fn fig11_custom_sweep_is_identical_serial_and_parallel() {
    let (serial, parallel) = serial_and_parallel(|| {
        experiments::figure("fig11")
            .expect("registered")
            .build(Scale::Smoke)
    });
    assert_eq!(serial, parallel, "worker count changed figure output");
    assert_eq!(serial.series.len(), 1);
}
