//! Sharded scale-out invariants.
//!
//! Multi-shard runs of every engine must preserve the single-server
//! guarantees: conflict-serializable committed histories, a clean trace
//! (P1–P9), drain to quiescence, and bit-determinism under a fixed
//! seed. A one-shard item space must stay *byte-identical* to the
//! pre-sharding engine (verified against the committed PR 7 fig2
//! fixture), so the directory-sharding refactor is provably
//! behavior-preserving for every figure that predates it.

use g2pl_core::prelude::*;

fn sharded_cfg(protocol: ProtocolKind, shards: u32, seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::table1(protocol, 10, 50, 0.5);
    cfg.items = ItemSpace::sharded(shards, 8);
    cfg.profile.max_items = 4;
    if shards > 1 {
        // Exercise the placement-aware generator: 40% multi-home
        // transactions over mildly skewed shard popularity.
        cfg.profile.shard_mix = Some(ShardMix {
            cross_frac: 0.4,
            shard_theta: 0.7,
        });
    }
    cfg.warmup_txns = 30;
    cfg.measured_txns = 250;
    cfg.seed = seed;
    cfg.drain = true;
    cfg.record_history = true;
    cfg.trace_events = true;
    cfg
}

fn protocols() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::S2pl,
        ProtocolKind::C2pl,
        ProtocolKind::g2pl_paper(),
    ]
}

#[test]
fn multi_shard_histories_are_serializable() {
    for p in protocols() {
        for shards in [2, 4, 7] {
            let cfg = sharded_cfg(p.clone(), shards, 11 + u64::from(shards));
            let m = run(&cfg).expect("valid config");
            let history = m.history.as_ref().expect("history enabled");
            check_serializable(history)
                .unwrap_or_else(|e| panic!("{} @ {shards} shards: {e}", m.protocol));
            assert_eq!(m.aborts.trials(), cfg.measured_txns);
            assert!(m.committed_total > 0);
        }
    }
}

#[test]
fn multi_shard_traces_pass_p_properties() {
    for p in protocols() {
        let cfg = sharded_cfg(p.clone(), 4, 99);
        let m = run(&cfg).expect("valid config");
        let trace = m.trace.as_ref().expect("trace enabled");
        check_trace(trace).unwrap_or_else(|e| panic!("{}: {e}", m.protocol));
    }
}

#[test]
fn multi_shard_runs_are_bit_deterministic() {
    for p in protocols() {
        let cfg = sharded_cfg(p.clone(), 4, 7);
        let a = run(&cfg).expect("valid config");
        let b = run(&cfg).expect("valid config");
        assert_eq!(a.response.mean(), b.response.mean(), "{}", a.protocol);
        assert_eq!(a.net.messages(), b.net.messages(), "{}", a.protocol);
        assert_eq!(a.net.bytes(), b.net.bytes(), "{}", a.protocol);
        assert_eq!(a.committed_total, b.committed_total, "{}", a.protocol);
    }
}

#[test]
fn multi_shard_commit_splits_are_visible_in_message_kinds() {
    // With one shard a transaction sends exactly one commit-release; at
    // many shards a multi-home transaction sends one per involved
    // shard, so the per-committed-txn commit-message rate must rise.
    let one = run(&sharded_cfg(ProtocolKind::S2pl, 1, 5)).expect("valid config");
    let eight = {
        let mut cfg = sharded_cfg(ProtocolKind::S2pl, 8, 5);
        cfg.items = ItemSpace::sharded(8, 1); // every item on its own shard
        cfg.profile.max_items = 4;
        run(&cfg).expect("valid config")
    };
    let rate_one = one.net.of_kind("s2pl.commit_release") as f64 / one.committed_total as f64;
    let rate_eight = eight.net.of_kind("s2pl.commit_release") as f64 / eight.committed_total as f64;
    assert!(
        (rate_one - 1.0).abs() < 1e-9,
        "single shard must send exactly one commit per txn, got {rate_one}"
    );
    assert!(
        rate_eight > 1.2,
        "distinct-shard items must split commits, got {rate_eight}"
    );
}

#[test]
fn full_mesh_topology_is_inert_and_link_overrides_take_effect() {
    let base = sharded_cfg(ProtocolKind::g2pl_paper(), 2, 3);

    // The explicit full mesh must be byte-identical to no topology.
    let mut mesh = base.clone();
    mesh.topology = Some(Topology::full_mesh(mesh.latency));
    let plain = run(&base).expect("valid config");
    let meshed = run(&mesh).expect("valid config");
    assert_eq!(plain.response.mean(), meshed.response.mean());
    assert_eq!(plain.net.messages(), meshed.net.messages());
    assert_eq!(plain.net.bytes(), meshed.net.bytes());

    // Slowing only the client↔client class must show up in g-2PL, whose
    // data migrates on exactly those links.
    let mut slow_cc = base.clone();
    slow_cc.topology =
        Some(Topology::full_mesh(slow_cc.latency).with_client_client(LatencyCfg::Constant(400)));
    let slowed = run(&slow_cc).expect("valid config");
    assert!(
        slowed.response.mean() > plain.response.mean(),
        "slower forwarding links must slow g-2PL: {} vs {}",
        slowed.response.mean(),
        plain.response.mean()
    );
}

#[test]
fn scale_engine_is_identical_serial_parallel_and_across_reruns() {
    // One PDES worker is the serial reference; any other worker count —
    // and any rerun — must reproduce the exact same trajectory.
    let cfg = experiments::scale_cell(128, 4);
    let serial = run_scale_with_workers(&cfg, 1).expect("cell runs");
    for m in [
        run_scale_with_workers(&cfg, 2).expect("cell runs"),
        run_scale_with_workers(&cfg, 4).expect("cell runs"),
        run_scale_with_workers(&cfg, 1).expect("cell runs"),
    ] {
        assert_eq!(serial.committed, m.committed);
        assert_eq!(serial.multi_home, m.multi_home);
        assert_eq!(serial.events, m.events);
        assert_eq!(serial.messages, m.messages);
        assert_eq!(serial.rounds, m.rounds);
        assert_eq!(serial.cross_messages, m.cross_messages);
        assert!(serial.response.mean() == m.response.mean());
        assert_eq!(serial.tail.summary(), m.tail.summary());
    }
    assert!(serial.multi_home > 0, "the grid workload must cross shards");
}

#[test]
fn fig_scale_builds_bit_identical_figure_data() {
    // The registry figure runs with auto worker count; two builds must
    // serialize byte-for-byte, including the tail CSV the CI smoke
    // checks.
    let spec = experiments::figure("fig_scale").expect("fig_scale registered");
    let a = spec.build(Scale::Smoke);
    let b = spec.build(Scale::Smoke);
    assert_eq!(a.to_csv(), b.to_csv());
    let tail_a = a.to_tail_csv().expect("fig_scale has tail data");
    let tail_b = b.to_tail_csv().expect("fig_scale has tail data");
    assert_eq!(tail_a, tail_b);
    assert!(tail_a.starts_with("x,series,p50,p90,p99,p999,max,count\n"));
    assert_eq!(a.series.len(), 3, "one series per shard count");
    assert!(a.series.iter().all(|s| s.points.len() == 3));
}

#[test]
fn one_shard_fig2_matches_pr7_fixture_byte_for_byte() {
    // The committed fixture was generated at PR 7 HEAD, before the
    // sharding refactor; regenerating it through today's engines must
    // reproduce it exactly.
    let fig = experiments::figure("fig2")
        .expect("fig2 exists")
        .build(Scale::Smoke);
    let csv = fig.to_csv();
    let fixture = include_str!("data/fig2_smoke_pr7.csv");
    assert_eq!(
        csv, fixture,
        "1-shard fig2 CSV diverged from the PR 7 baseline"
    );
    let tail = fig.to_tail_csv().expect("fig2 has tail data");
    let tail_fixture = include_str!("data/fig2_tail_smoke_pr7.csv");
    assert_eq!(
        tail, tail_fixture,
        "1-shard fig2 tail CSV diverged from the PR 7 baseline"
    );
}
