//! Observability integration tests: the golden Fig-1 round counts, the
//! phase-partition property on real engine runs, consistency of the
//! aggregates under heavy aborts, and the `--trace-out` JSONL export.
//!
//! The round counts pin the paper's §3.1 analysis: on the best-case
//! workload (single-item exclusive transactions, one hot item, nothing
//! can deadlock) s-2PL pays exactly 3 sequential network rounds per
//! transaction (`3m` total) while g-2PL pays `2m + 1` per collection
//! window — each mid-window release rides its successor's grant, and
//! only the last holder sends a data message back to the server.

use g2pl_core::prelude::*;
use g2pl_obs::{ObsReport, Phase, SpanKind, SpanRecorder, FLIGHT_K};

/// `set_trace_out` is process-global; tests that flip it must not
/// interleave.
static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The §3.1 worked example: one hot item, exclusive single-item
/// transactions, drain at the end so every commit's release accounting
/// completes.
fn best_case(protocol: ProtocolKind, clients: u32, latency: u64) -> EngineConfig {
    let mut cfg = EngineConfig::table1(protocol, clients, latency, 0.0);
    cfg.items = g2pl_protocols::ItemSpace::single(1);
    cfg.profile.min_items = 1;
    cfg.profile.max_items = 1;
    cfg.warmup_txns = 0;
    cfg.measured_txns = 60;
    cfg.drain = true;
    cfg.trace_events = true;
    cfg.seed = 11;
    cfg
}

fn replayed(m: &RunMetrics) -> ObsReport {
    SpanRecorder::replay(m.spans.as_deref().unwrap_or(&[])).finish()
}

#[test]
fn s2pl_best_case_spends_three_rounds_per_transaction() {
    let m = run(&best_case(ProtocolKind::S2pl, 3, 100)).expect("valid config");
    let report = replayed(&m);
    assert!(!report.details.is_empty());
    for d in &report.details {
        assert_eq!(
            d.rounds, 3,
            "s-2PL single-item txn {} used {} rounds, Fig 1 says 3",
            d.txn.0, d.rounds
        );
    }
    // Aggregate view agrees: mean of the rounds histogram is exactly 3.
    assert!((m.phases.mean_rounds() - 3.0).abs() < 1e-9);
}

#[test]
fn g2pl_best_case_spends_two_m_plus_one_rounds_per_window() {
    let m = run(&best_case(ProtocolKind::g2pl_paper(), 3, 100)).expect("valid config");
    let report = replayed(&m);
    let commits = report.details.len() as u64;
    let total: u64 = report.details.iter().map(|d| u64::from(d.rounds)).sum();
    assert!(commits > 0 && m.window_closes > 0);
    assert_eq!(
        total,
        2 * commits + m.window_closes,
        "g-2PL rounds must sum to 2m+1 per window ({} commits, {} windows)",
        commits,
        m.window_closes
    );
    // Strictly fewer rounds than s-2PL's 3m as soon as any window
    // batches more than one transaction.
    assert!(m.window_closes < commits || total == 3 * commits);
}

#[test]
fn response_phases_partition_the_measured_response_time() {
    for kind in [
        ProtocolKind::S2pl,
        ProtocolKind::g2pl_paper(),
        ProtocolKind::C2pl,
    ] {
        let mut cfg = EngineConfig::table1(kind, 8, 250, 0.25);
        cfg.warmup_txns = 30;
        cfg.measured_txns = 200;
        cfg.trace_events = true;
        let m = run(&cfg).expect("valid config");
        assert_eq!(m.phases.measured_commits, m.response.count());
        let sum = m.phases.mean_phase_sum();
        let mean = m.response.mean();
        assert!(
            (sum - mean).abs() <= 0.01 * mean,
            "{}: phase means sum to {sum}, mean response is {mean}",
            m.protocol
        );
        // The tail phase exists but is excluded from the partition.
        assert_eq!(Phase::RESPONSE_PHASES, 5);
        assert!(m.phases.phase(Phase::CommitReturn).count() > 0);
        // Nothing was silently lost.
        assert_eq!(m.phases.spans_dropped, 0);
        assert!(!m.trace_truncated());
    }
}

#[test]
fn aggregates_stay_consistent_under_heavy_aborts() {
    // Five clients hammering a five-item pool with write-only five-item
    // transactions: deadlocks and victim aborts throughout.
    let mut cfg = EngineConfig::table1(ProtocolKind::S2pl, 10, 100, 0.0);
    cfg.items = g2pl_protocols::ItemSpace::single(5);
    cfg.profile.min_items = 5;
    cfg.profile.max_items = 5;
    cfg.warmup_txns = 10;
    cfg.measured_txns = 120;
    cfg.trace_events = true;
    let m = run(&cfg).expect("valid config");
    assert!(m.aborted_total > 0, "config failed to provoke aborts");
    assert_eq!(m.phases.measured_commits, m.response.count());
    // Aborted transactions contribute no rounds and no phase samples,
    // so every phase count equals the measured-commit count and the
    // histogram total matches too.
    for p in Phase::ALL.iter().take(Phase::RESPONSE_PHASES) {
        assert!(m.phases.phase(*p).count() <= m.phases.measured_commits);
    }
    assert_eq!(m.phases.rounds.total(), m.phases.measured_commits);
    let sum = m.phases.mean_phase_sum();
    let mean = m.response.mean();
    assert!((sum - mean).abs() <= 0.01 * mean);
}

#[test]
fn response_sketch_and_flight_recorder_ride_in_run_metrics() {
    let mut cfg = EngineConfig::table1(ProtocolKind::g2pl_paper(), 8, 250, 0.25);
    cfg.warmup_txns = 30;
    cfg.measured_txns = 200;
    let m = run(&cfg).expect("valid config");
    // The sketch counts exactly the commits the mean counts, and its
    // max is the exact observed maximum (quantile(1.0) is clamped).
    assert_eq!(m.response_tail.count(), m.response.count());
    let max = m.response_tail.max().expect("measured commits exist");
    assert_eq!(
        max as f64,
        m.response.max().expect("measured commits exist")
    );
    let t = m.tail_summary();
    assert!(t.p50 <= t.p90 && t.p90 <= t.p99 && t.p99 <= t.p999 && t.p999 <= t.max);
    // Each response phase's tail sketch saw every measured commit.
    for p in Phase::ALL.iter().take(Phase::RESPONSE_PHASES) {
        assert_eq!(m.phases.tail(*p).count(), m.phases.measured_commits);
    }
    // Flight recorder: bounded, measured-only, worst-first, and its
    // worst entry is the sketch's exact maximum.
    assert!(!m.flight.is_empty());
    assert!(m.flight.len() <= FLIGHT_K);
    assert!(m.flight.iter().all(|d| d.measured));
    let responses: Vec<u64> = m
        .flight
        .iter()
        .map(|d| d.commit.units() - d.start.units())
        .collect();
    assert!(
        responses.windows(2).all(|w| w[0] >= w[1]),
        "flight not sorted worst-first: {responses:?}"
    );
    assert_eq!(responses[0], max);
}

#[test]
fn trace_export_round_trips_flight_markers() {
    let _guard = TRACE_LOCK.lock().expect("trace lock poisoned");
    let dir = std::env::temp_dir().join(format!("g2pl-obs-tail-test-{}", std::process::id()));
    let mut cfg = EngineConfig::table1(ProtocolKind::S2pl, 6, 200, 0.25);
    cfg.warmup_txns = 10;
    cfg.measured_txns = 100;
    set_trace_out(Some(dir.clone()));
    let _ = run_replicated(&cfg, 1);
    set_trace_out(None);

    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("export directory exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(entries.len(), 1);
    let text = std::fs::read_to_string(&entries[0]).expect("trace readable");
    let tf = g2pl_obs::parse_jsonl(&text).expect("trace parses");
    assert!(tf.meta.response_p99 > 0, "meta carries engine-side p99");
    assert!(tf.meta.response_p99 <= tf.meta.response_p999);

    // The exporter appended one slow_txn marker per flight entry, in
    // rank order; replaying the same events must rebuild that flight.
    let markers: Vec<_> = tf
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::SlowTxn)
        .collect();
    assert!(!markers.is_empty());
    let report = SpanRecorder::replay(&tf.events).finish();
    assert_eq!(markers.len(), report.flight.len());
    for (i, (ev, d)) in markers.iter().zip(report.flight.iter()).enumerate() {
        assert_eq!(ev.n as usize, i + 1, "markers out of rank order");
        assert_eq!(ev.txn, Some(d.txn));
        assert_eq!(ev.at, d.end);
        assert!(ev.measured);
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_exports_a_parseable_jsonl_trace() {
    let _guard = TRACE_LOCK.lock().expect("trace lock poisoned");
    let dir = std::env::temp_dir().join(format!("g2pl-obs-test-{}", std::process::id()));
    let mut cfg = EngineConfig::table1(ProtocolKind::g2pl_paper(), 4, 150, 0.25);
    cfg.warmup_txns = 10;
    cfg.measured_txns = 80;
    set_trace_out(Some(dir.clone()));
    let result = run_replicated(&cfg, 2);
    set_trace_out(None);
    assert_eq!(result.reps(), 2);

    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("export directory exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(entries.len(), 1, "exactly replication 0 is exported");
    let text = std::fs::read_to_string(&entries[0]).expect("trace readable");
    let tf = g2pl_obs::parse_jsonl(&text).expect("trace parses");
    assert_eq!(tf.meta.protocol, "g-2PL");
    assert_eq!(tf.meta.clients, 4);
    assert_eq!(tf.meta.dropped, 0);
    assert!(tf.meta.measured > 0);
    assert!(!tf.events.is_empty());

    // Replaying the exported events reproduces the partition property.
    let report = SpanRecorder::replay(&tf.events).finish();
    assert_eq!(report.breakdown.measured_commits, tf.meta.measured);
    let sum = report.breakdown.mean_phase_sum();
    assert!((sum - tf.meta.mean_response).abs() <= 0.01 * tf.meta.mean_response);

    std::fs::remove_dir_all(&dir).ok();
}
