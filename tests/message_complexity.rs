//! §3.2's message-complexity claim, verified by counting.
//!
//! "Assume m clients under the best case where each transaction either
//! requests a single data item or requests multiple data items within a
//! single message. The s-2PL protocol will require 3m messages and 3m
//! rounds as opposed to the g-2PL protocol which will require 2m + 1
//! messages and 2m + 1 rounds."
//!
//! In steady state with single-item exclusive transactions this becomes:
//! s-2PL pays 3 messages per commit (request, grant, commit-release);
//! g-2PL pays 2 + 1/W messages per commit, where W is the mean window
//! length — the release of one transaction and the grant of the next
//! merge into one forward.

use g2pl_core::prelude::*;

fn single_item_cfg(protocol: ProtocolKind, clients: u32) -> EngineConfig {
    let mut cfg = EngineConfig::table1(protocol, clients, 200, 0.0);
    cfg.items = g2pl_protocols::ItemSpace::single(1); // one scorching-hot item: maximal grouping
    cfg.profile.min_items = 1;
    cfg.profile.max_items = 1;
    cfg.warmup_txns = 100;
    cfg.measured_txns = 1_000;
    cfg.drain = true;
    cfg
}

#[test]
fn s2pl_costs_three_messages_per_commit() {
    let m = run(&single_item_cfg(ProtocolKind::S2pl, 10)).expect("valid config");
    assert_eq!(m.aborted_total, 0, "single-item txns cannot deadlock");
    let per_commit = m.net.messages() as f64 / m.committed_total as f64;
    assert!(
        (per_commit - 3.0).abs() < 0.05,
        "s-2PL should cost exactly 3 messages/commit, got {per_commit:.3}"
    );
}

#[test]
fn g2pl_costs_two_plus_epsilon_messages_per_commit() {
    let m = run(&single_item_cfg(ProtocolKind::g2pl_paper(), 10)).expect("valid config");
    assert_eq!(m.aborted_total, 0, "single-item txns cannot deadlock");
    let per_commit = m.net.messages() as f64 / m.committed_total as f64;
    // 2 + 1/W for mean window length W; with 10 clients fighting over one
    // item, W far exceeds 1, so the count approaches 2.
    assert!(
        per_commit < 2.6,
        "g-2PL should approach 2 messages/commit, got {per_commit:.3}"
    );
    assert!(
        per_commit >= 2.0,
        "fewer than 2 messages/commit is impossible, got {per_commit:.3}"
    );
    // The saved message is the separate release: data migrates
    // client-to-client instead.
    assert!(
        m.net.client_to_client_share() > 0.2,
        "migration should carry a large share of traffic"
    );
}

#[test]
fn g2pl_sends_fewer_messages_than_s2pl_on_hot_items() {
    let s = run(&single_item_cfg(ProtocolKind::S2pl, 10)).expect("valid config");
    let g = run(&single_item_cfg(ProtocolKind::g2pl_paper(), 10)).expect("valid config");
    let s_rate = s.net.messages() as f64 / s.committed_total as f64;
    let g_rate = g.net.messages() as f64 / g.committed_total as f64;
    assert!(
        g_rate < s_rate - 0.4,
        "expected ≥0.4 messages/commit saved: s={s_rate:.2}, g={g_rate:.2}"
    );
}

/// The grant that merges with a release is visible as latency too: on a
/// serial hot-item chain, g-2PL approaches half of s-2PL's response.
#[test]
fn hot_chain_latency_halves() {
    let s = run(&single_item_cfg(ProtocolKind::S2pl, 10)).expect("valid config");
    let g = run(&single_item_cfg(ProtocolKind::g2pl_paper(), 10)).expect("valid config");
    let ratio = g.mean_response() / s.mean_response();
    assert!(
        ratio < 0.7,
        "g-2PL should cut the serial chain cost well below s-2PL: ratio {ratio:.2}"
    );
}
