//! End-to-end shard fault-domain checks across all three engines.
//!
//! The sharded sibling of `server_fault_recovery`: every test runs a
//! drained simulation over a 4-shard directory with 30% multi-home
//! transactions while a plan kills a *non-zero* shard twice — once early
//! enough to land mid multi-home commitment. Verified contract: the run
//! completes (drain = recovery liveness), the trace passes P1–P10
//! (including cross-shard atomicity), the history is
//! conflict-serializable, the WAL drains to empty, crash events name the
//! actual crashed shard, the same `(seed, plan)` replays bit-for-bit,
//! and an inert plan leaves the sharded pristine path byte-identical to
//! having no plan at all.

use g2pl_core::{check_serializable, check_trace_with, TraceCheckOpts};
use g2pl_protocols::{
    run, EngineConfig, FaultPlan, ItemSpace, LinkPartition, ProtocolKind, RunMetrics,
    ServerCrashWindow, ShardMix, TraceKind,
};
use g2pl_simcore::SiteId;

const CRASHED_SHARD: u32 = 2;

fn engines() -> [ProtocolKind; 3] {
    [
        ProtocolKind::g2pl_paper(),
        ProtocolKind::S2pl,
        ProtocolKind::C2pl,
    ]
}

fn shard_crash_cfg(protocol: ProtocolKind) -> EngineConfig {
    let mut cfg = EngineConfig::table1(protocol, 8, 50, 0.4);
    cfg.items = ItemSpace::sharded(4, 7);
    cfg.profile.shard_mix = Some(ShardMix {
        cross_frac: 0.3,
        shard_theta: 0.5,
    });
    cfg.warmup_txns = 50;
    cfg.measured_txns = 300;
    cfg.drain = true;
    cfg.trace_events = true;
    cfg.record_history = true;
    cfg.enable_wal = true;
    cfg.faults = Some(FaultPlan {
        server_crashes: vec![
            ServerCrashWindow::on_shard(CRASHED_SHARD, 4_000, 1_200),
            ServerCrashWindow::on_shard(CRASHED_SHARD, 15_000, 800),
        ],
        ..FaultPlan::default()
    });
    cfg
}

fn run_checked(cfg: &EngineConfig) -> RunMetrics {
    let m = run(cfg).expect("valid config");
    assert!(!m.trace_truncated(), "trace truncated; cannot verify");
    m
}

fn count(m: &RunMetrics, kind: TraceKind) -> usize {
    m.trace
        .as_ref()
        .expect("trace enabled")
        .iter()
        .filter(|e| e.kind == kind)
        .count()
}

#[test]
fn shard_crash_mid_multi_home_commit_verifies_end_to_end() {
    for protocol in engines() {
        let cfg = shard_crash_cfg(protocol);
        let m = run_checked(&cfg);
        assert_eq!(
            m.faults.server_crashes, 2,
            "{}: both scheduled shard crashes must fire",
            m.protocol
        );
        assert!(
            m.faults.reregistrations > 0,
            "{}: recovery must hear from surviving clients",
            m.protocol
        );
        assert!(m.committed_total > 0, "{}", m.protocol);
        // The 30% multi-home mix must actually exercise atomic
        // commitment: prepare votes recorded and commits applied at the
        // voted shards.
        assert!(
            count(&m, TraceKind::Prepared) > 0,
            "{}: no prepare votes — 2PC never engaged",
            m.protocol
        );
        assert!(
            count(&m, TraceKind::CommitApplied) > 0,
            "{}: no applied commits at prepared shards",
            m.protocol
        );
        // The crash events must name the shard that actually went down,
        // not the paper's single server.
        let trace = m.trace.as_ref().expect("trace enabled");
        let crashed: Vec<SiteId> = trace
            .iter()
            .filter(|e| e.kind == TraceKind::ServerCrashed)
            .map(|e| e.site)
            .collect();
        assert_eq!(
            crashed,
            vec![SiteId::server(CRASHED_SHARD); 2],
            "{}: crash events must carry the crashed shard",
            m.protocol
        );
        if let Err(e) = check_trace_with(trace, TraceCheckOpts::for_config(&cfg)) {
            panic!("{}: P1-P10 violated under shard crashes: {e}", m.protocol);
        }
        let history = m.history.as_ref().expect("history enabled");
        if let Err(e) = check_serializable(history) {
            panic!("{}: serializability violated: {e}", m.protocol);
        }
        let wal = m.wal.as_ref().expect("wal enabled");
        assert_eq!(
            wal.end_live_records, 0,
            "{}: WAL must drain after recovery (every version home)",
            m.protocol
        );
    }
}

#[test]
fn shard_crash_replays_bit_for_bit() {
    for protocol in engines() {
        let cfg = shard_crash_cfg(protocol);
        let a = run_checked(&cfg);
        let b = run_checked(&cfg);
        assert_eq!(a.trace, b.trace, "{}: trace diverged on replay", a.protocol);
        assert_eq!(a.committed_total, b.committed_total);
        assert_eq!(a.aborted_total, b.aborted_total);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.faults.server_crashes, b.faults.server_crashes);
        assert_eq!(a.faults.reregistrations, b.faults.reregistrations);
    }
}

#[test]
fn inert_plan_is_byte_identical_on_sharded_runs() {
    // A plan that schedules nothing must leave the sharded engine on its
    // fault-free code path — no WAL forcing, no prepare round trips —
    // so the multi-home figures are unperturbed by the fault subsystem.
    // This anchors the x = 0 point of fig_shard_faults.
    for protocol in engines() {
        let mut pristine = shard_crash_cfg(protocol);
        pristine.faults = None;
        let mut inert = pristine.clone();
        inert.faults = Some(FaultPlan::default());
        let a = run_checked(&pristine);
        let b = run_checked(&inert);
        assert_eq!(
            a.trace, b.trace,
            "{}: inert plan perturbed the sharded run",
            a.protocol
        );
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.committed_total, b.committed_total);
        assert_eq!(a.faults.server_crashes, 0);
        assert_eq!(b.faults.server_crashes, 0);
        // Without faults armed there is no 2PC detour at all.
        assert_eq!(count(&a, TraceKind::Prepared), 0, "{}", a.protocol);
    }
}

#[test]
fn shard_crash_composes_with_client_faults_and_partitions() {
    // The full fault surface at once: message loss and duplication, a
    // client crash, an inter-shard partition, and the shard outages —
    // still drained, still fully verified under P1–P10.
    for protocol in engines() {
        let mut cfg = shard_crash_cfg(protocol);
        let plan = cfg.faults.as_mut().expect("plan set");
        plan.drop_prob = 0.02;
        plan.dup_prob = 0.01;
        plan.crashes.push(g2pl_protocols::CrashWindow {
            client: 3,
            at: 8_000,
            down_for: 2_000,
        });
        plan.partitions.push(LinkPartition::between_shards(
            1,
            CRASHED_SHARD,
            6_000,
            9_000,
        ));
        let m = run_checked(&cfg);
        assert_eq!(m.faults.server_crashes, 2, "{}", m.protocol);
        let trace = m.trace.as_ref().expect("trace enabled");
        if let Err(e) = check_trace_with(trace, TraceCheckOpts::for_config(&cfg)) {
            panic!("{}: P1-P10 violated under combined faults: {e}", m.protocol);
        }
        let history = m.history.as_ref().expect("history enabled");
        if let Err(e) = check_serializable(history) {
            panic!("{}: serializability violated: {e}", m.protocol);
        }
    }
}
