//! Property-based tests of the lock table: under arbitrary interleavings
//! of acquire/release, the core locking invariants must hold.

use g2pl_lockmgr::{LockMode, LockTable, WaitForGraph};
use g2pl_simcore::{ItemId, TxnId};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum Op {
    Acquire {
        txn: u32,
        item: u32,
        exclusive: bool,
    },
    ReleaseAll {
        txn: u32,
    },
}

fn arb_op(txns: u32, items: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..txns, 0..items, any::<bool>())
            .prop_map(|(txn, item, exclusive)| Op::Acquire { txn, item, exclusive }),
        1 => (0..txns).prop_map(|txn| Op::ReleaseAll { txn }),
    ]
}

/// Replay a script, checking invariants after every step.
fn run_script(ops: &[Op]) {
    let mut lt = LockTable::new();
    // Track which txns have released (simulating "finished" txns that
    // must not acquire again under strict 2PL).
    let mut finished: HashSet<u32> = HashSet::new();
    for op in ops {
        match *op {
            Op::Acquire {
                txn,
                item,
                exclusive,
            } => {
                if finished.contains(&txn) {
                    continue; // strict 2PL: no acquiring after release
                }
                let mode = if exclusive {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                let _ = lt.acquire(TxnId::new(txn), ItemId::new(item), mode);
            }
            Op::ReleaseAll { txn } => {
                finished.insert(txn);
                lt.release_all(TxnId::new(txn));
            }
        }
        check_invariants(&lt, 16);
    }
}

/// The invariants: no incompatible co-holders; holders never also queued
/// on the same item (except upgrades); held_by matches holders.
fn check_invariants(lt: &LockTable, items: u32) {
    for i in 0..items {
        let item = ItemId::new(i);
        let holders = lt.holders(item);
        // Pairwise compatibility (the same txn can appear once only).
        for (a_idx, &(a, am)) in holders.iter().enumerate() {
            for &(b, bm) in &holders[a_idx + 1..] {
                assert_ne!(a, b, "duplicate holder {a} on {item}");
                assert!(
                    am.compatible(bm),
                    "incompatible co-holders on {item}: {a}:{am} and {b}:{bm}"
                );
            }
        }
        // Queued requests exist only while an incompatibility or a
        // nonempty queue justifies them: at minimum, a queued request
        // must not be trivially grantable ahead of everything.
        let waiters: Vec<_> = lt.waiters(item).collect();
        if let Some(&(first, mode)) = waiters.first() {
            let blocked = holders
                .iter()
                .any(|&(h, hm)| h != first && !hm.compatible(mode));
            assert!(
                blocked || holders.iter().any(|&(h, _)| h == first),
                "head waiter {first}:{mode} on {item} should have been granted; holders={holders:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_random_scripts(
        ops in proptest::collection::vec(arb_op(12, 16), 1..200)
    ) {
        run_script(&ops);
    }

    /// Releasing everything leaves the table quiescent.
    #[test]
    fn full_release_is_quiescent(
        ops in proptest::collection::vec(arb_op(10, 8), 1..100)
    ) {
        let mut lt = LockTable::new();
        for op in &ops {
            if let Op::Acquire { txn, item, exclusive } = *op {
                let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                let _ = lt.acquire(TxnId::new(txn), ItemId::new(item), mode);
            }
        }
        for t in 0..10 {
            lt.release_all(TxnId::new(t));
        }
        prop_assert!(lt.is_quiescent());
    }

    /// Wake-ups granted by release are immediately visible as holders.
    #[test]
    fn woken_requests_become_holders(
        ops in proptest::collection::vec(arb_op(10, 8), 1..100)
    ) {
        let mut lt = LockTable::new();
        for op in &ops {
            match *op {
                Op::Acquire { txn, item, exclusive } => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    let _ = lt.acquire(TxnId::new(txn), ItemId::new(item), mode);
                }
                Op::ReleaseAll { txn } => {
                    let woken = lt.release_all(TxnId::new(txn));
                    for (item, t, mode) in woken {
                        // A duplicate queued request may have upgraded the
                        // hold immediately after the first grant, so the
                        // held mode must be at least the woken mode.
                        let held = lt.mode_of(t, item);
                        prop_assert!(
                            held.is_some_and(|h| h.max(mode) == h),
                            "woken ({}, {}) must hold ≥ {}, holds {:?}", t, item, mode, held
                        );
                    }
                }
            }
        }
    }

    /// A wait-for graph built over any waits relation never reports a
    /// cycle for an acyclic edge set, and always finds a planted one.
    #[test]
    fn wfg_detects_planted_cycles(n in 2u32..20, extra in 0usize..30) {
        let mut g = WaitForGraph::new();
        // Plant a ring 0 -> 1 -> ... -> n-1 -> 0.
        for i in 0..n {
            g.add_edge(TxnId::new(i), TxnId::new((i + 1) % n));
        }
        // Extra forward chords cannot remove the ring.
        for e in 0..extra {
            let a = (e as u32 * 7) % n;
            let b = (e as u32 * 13 + 1) % n;
            if a != b {
                g.add_edge(TxnId::new(a), TxnId::new(b));
            }
        }
        prop_assert!(g.find_cycle_from(TxnId::new(0)).is_some());
        // Removing any single ring node breaks this particular ring, but
        // chords may still form smaller cycles — only check the planted
        // ring's detectability, which is the guarantee we rely on.
    }
}
