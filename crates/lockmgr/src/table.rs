//! The lock table: per-item holder sets and FIFO wait queues.

use crate::mode::LockMode;
use g2pl_simcore::{ItemId, Slab, TxnId};
use std::collections::VecDeque;

/// Result of a lock acquisition attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The lock was granted immediately (or was already held in a
    /// sufficient mode).
    Granted,
    /// The request conflicts with current holders or queued-ahead waiters
    /// and was enqueued.
    Queued,
}

#[derive(Clone, Debug, Default)]
struct ItemLock {
    holders: Vec<(TxnId, LockMode)>,
    queue: VecDeque<(TxnId, LockMode)>,
}

impl ItemLock {
    fn holder_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|&(_, m)| m)
    }

    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|&(t, m)| t == txn || m.compatible(mode))
    }
}

/// A strict-2PL lock table.
///
/// Grants are FIFO-fair: a shared request queues behind an earlier queued
/// exclusive request even when it would be compatible with the current
/// holders, preventing writer starvation (the behaviour of textbook
/// queue-based lock managers, and the one the paper's s-2PL baseline
/// assumes when it says conflicting requests are "enqueued").
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    /// Lock state per item, indexed by `ItemId::index()` (item ids are
    /// dense, so the slab sweep below visits items in ascending id order —
    /// the same order the previous `BTreeMap` representation produced).
    items: Slab<ItemLock>,
    /// Items held per transaction (in acquisition order), indexed by
    /// `TxnId::index()`.
    held: Slab<Vec<ItemId>>,
    /// Reverse index: the item each transaction is queued on (at most one
    /// under the sequential client model; the most recent wins otherwise).
    queued: Slab<Option<ItemId>>,
}

impl LockTable {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempt to acquire `item` in `mode` for `txn`.
    ///
    /// Re-requesting an item already held in a sufficient mode returns
    /// [`AcquireOutcome::Granted`] without any state change. An upgrade
    /// (S held, X requested) is granted in place when `txn` is the only
    /// holder and nothing is queued, and queued at the *front* otherwise.
    pub fn acquire(&mut self, txn: TxnId, item: ItemId, mode: LockMode) -> AcquireOutcome {
        let lock = self.items.ensure(item.index());

        if let Some(held_mode) = lock.holder_mode(txn) {
            if held_mode.max(mode) == held_mode {
                return AcquireOutcome::Granted; // already sufficient
            }
            // Upgrade S -> X.
            if lock.holders.len() == 1 && lock.queue.is_empty() {
                lock.holders[0].1 = LockMode::Exclusive;
                return AcquireOutcome::Granted;
            }
            lock.queue.push_front((txn, mode));
            *self.queued.ensure(txn.index()) = Some(item);
            return AcquireOutcome::Queued;
        }

        if lock.queue.is_empty() && lock.grantable(txn, mode) {
            lock.holders.push((txn, mode));
            self.held.ensure(txn.index()).push(item);
            AcquireOutcome::Granted
        } else {
            lock.queue.push_back((txn, mode));
            *self.queued.ensure(txn.index()) = Some(item);
            AcquireOutcome::Queued
        }
    }

    /// The item `txn` is currently queued on, if any.
    pub fn queued_on(&self, txn: TxnId) -> Option<ItemId> {
        self.queued.get(txn.index()).copied().flatten()
    }

    /// Release every lock held by `txn` and remove any of its queued
    /// requests, granting whatever becomes grantable.
    ///
    /// Returns the newly granted `(item, txn, mode)` triples, in grant
    /// order.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(ItemId, TxnId, LockMode)> {
        let mut woken = Vec::new();
        if let Some(q) = self.queued.get_mut(txn.index()) {
            *q = None;
        }
        // Remove the transaction's queued requests FIRST: promoting a
        // released item before purging the queues could re-grant the
        // finished transaction its own stale queued request. The item
        // slab is indexed by the dense item id, so this sweep — and thus
        // the wake-up order and the whole simulation — visits items in
        // ascending id order, exactly as the previous `BTreeMap`
        // representation did.
        let mut queued_on: Vec<ItemId> = Vec::new();
        for (i, lock) in self.items.iter() {
            if lock.queue.iter().any(|&(t, _)| t == txn) {
                queued_on.push(ItemId::new(i as u32));
            }
        }
        for &item in &queued_on {
            // lint:allow(L3): item came from the slab one statement ago
            let lock = self.items.get_mut(item.index()).expect("just observed");
            lock.queue.retain(|&(t, _)| t != txn);
        }
        let items = self
            .held
            .get_mut(txn.index())
            .map(std::mem::take)
            .unwrap_or_default();
        for item in items {
            let lock = self
                .items
                .get_mut(item.index())
                // lint:allow(L3): the held index only lists items with lock state
                .expect("held item has lock state");
            lock.holders.retain(|&(t, _)| t != txn);
            Self::promote(&mut self.queued, &mut self.held, lock, item, &mut woken);
        }
        // The queue removals themselves can unblock requests queued
        // behind the departed transaction.
        for item in queued_on {
            // lint:allow(L3): item came from the slab in the sweep above
            let lock = self.items.get_mut(item.index()).expect("just observed");
            Self::promote(&mut self.queued, &mut self.held, lock, item, &mut woken);
        }
        woken
    }

    fn promote(
        queued: &mut Slab<Option<ItemId>>,
        held: &mut Slab<Vec<ItemId>>,
        lock: &mut ItemLock,
        item: ItemId,
        woken: &mut Vec<(ItemId, TxnId, LockMode)>,
    ) {
        while let Some(&(t, m)) = lock.queue.front() {
            // Upgrades re-check against remaining holders (t itself may
            // still hold S).
            if !lock.grantable(t, m) {
                break;
            }
            lock.queue.pop_front();
            *queued.ensure(t.index()) = None;
            if let Some(pos) = lock.holders.iter().position(|&(h, _)| h == t) {
                lock.holders[pos].1 = lock.holders[pos].1.max(m);
            } else {
                lock.holders.push((t, m));
                held.ensure(t.index()).push(item);
            }
            woken.push((item, t, m));
            if m.is_exclusive() {
                break;
            }
        }
    }

    /// Current holders of `item`, with their modes.
    pub fn holders(&self, item: ItemId) -> &[(TxnId, LockMode)] {
        self.items
            .get(item.index())
            .map_or(&[], |l| l.holders.as_slice())
    }

    /// Queued waiters on `item`, in queue order.
    pub fn waiters(&self, item: ItemId) -> impl Iterator<Item = (TxnId, LockMode)> + '_ {
        self.items
            .get(item.index())
            .into_iter()
            .flat_map(|l| l.queue.iter().copied())
    }

    /// Items currently held by `txn` (in acquisition order).
    pub fn held_by(&self, txn: TxnId) -> &[ItemId] {
        self.held.get(txn.index()).map_or(&[], Vec::as_slice)
    }

    /// Mode in which `txn` holds `item`, if it does.
    pub fn mode_of(&self, txn: TxnId, item: ItemId) -> Option<LockMode> {
        self.items
            .get(item.index())
            .and_then(|l| l.holder_mode(txn))
    }

    /// True when no locks are held and no requests queued (quiescence
    /// check for drain tests).
    pub fn is_quiescent(&self) -> bool {
        self.items
            .as_slice()
            .iter()
            .all(|l| l.holders.is_empty() && l.queue.is_empty())
    }

    /// Every `(txn, item)` pair currently waiting in some queue, in
    /// deterministic (item, txn) order. Used to rebuild the wait-for
    /// graph on demand at detection time.
    pub fn all_waiters(&self) -> Vec<(TxnId, ItemId)> {
        let mut out: Vec<(TxnId, ItemId)> = self
            .items
            .iter()
            .flat_map(|(i, lock)| {
                let item = ItemId::new(i as u32);
                lock.queue.iter().map(move |&(t, _)| (t, item))
            })
            .collect();
        out.sort_unstable_by_key(|&(t, i)| (i, t));
        out
    }

    /// The transactions `txn` is waiting for on `item`: every incompatible
    /// current holder plus every queued-ahead waiter (FIFO queues make a
    /// request wait on whatever precedes it).
    ///
    /// Returns an empty vector when `txn` is not queued on `item`.
    pub fn waits_for(&self, txn: TxnId, item: ItemId) -> Vec<TxnId> {
        let mut out = Vec::new();
        self.waits_for_into(txn, item, &mut out);
        out
    }

    /// Allocation-free variant of [`waits_for`](Self::waits_for): appends
    /// the (sorted, deduplicated) blockers to `out`, leaving anything
    /// already in `out` untouched. This is the deadlock detector's hot
    /// path — it runs on every ungrantable request.
    pub fn waits_for_into(&self, txn: TxnId, item: ItemId, out: &mut Vec<TxnId>) {
        let Some(lock) = self.items.get(item.index()) else {
            return;
        };
        let Some(pos) = lock.queue.iter().position(|&(t, _)| t == txn) else {
            return;
        };
        let my_mode = lock.queue[pos].1;
        let start = out.len();
        out.extend(
            lock.holders
                .iter()
                .filter(|&&(t, m)| t != txn && !m.compatible(my_mode))
                .map(|&(t, _)| t),
        );
        for &(t, m) in lock.queue.iter().take(pos) {
            // Queued-ahead conflicting requests also block us under FIFO.
            if t != txn && (!m.compatible(my_mode) || out[start..].contains(&t)) {
                out.push(t);
            }
        }
        out[start..].sort_unstable();
        // Dedup the appended range in place.
        let mut w = start;
        for r in start..out.len() {
            if w == start || out[w - 1] != out[r] {
                out[w] = out[r];
                w += 1;
            }
        }
        out.truncate(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive, Shared};

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }
    fn x(i: u32) -> ItemId {
        ItemId::new(i)
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire(t(1), x(0), Shared), AcquireOutcome::Granted);
        assert_eq!(lt.acquire(t(2), x(0), Shared), AcquireOutcome::Granted);
        assert_eq!(lt.holders(x(0)).len(), 2);
    }

    #[test]
    fn exclusive_blocks_everything() {
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire(t(1), x(0), Exclusive), AcquireOutcome::Granted);
        assert_eq!(lt.acquire(t(2), x(0), Shared), AcquireOutcome::Queued);
        assert_eq!(lt.acquire(t(3), x(0), Exclusive), AcquireOutcome::Queued);
    }

    #[test]
    fn fifo_fairness_no_reader_overtaking() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Shared);
        assert_eq!(lt.acquire(t(2), x(0), Exclusive), AcquireOutcome::Queued);
        // A third reader must not jump the queued writer.
        assert_eq!(lt.acquire(t(3), x(0), Shared), AcquireOutcome::Queued);
    }

    #[test]
    fn release_grants_next_in_fifo_order() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Exclusive);
        lt.acquire(t(2), x(0), Shared);
        lt.acquire(t(3), x(0), Shared);
        lt.acquire(t(4), x(0), Exclusive);
        let woken = lt.release_all(t(1));
        // Both leading readers wake together; the writer stays queued.
        assert_eq!(woken, vec![(x(0), t(2), Shared), (x(0), t(3), Shared)]);
        let woken = lt.release_all(t(2));
        assert!(woken.is_empty());
        let woken = lt.release_all(t(3));
        assert_eq!(woken, vec![(x(0), t(4), Exclusive)]);
    }

    #[test]
    fn release_all_covers_multiple_items() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Exclusive);
        lt.acquire(t(1), x(1), Exclusive);
        lt.acquire(t(2), x(0), Shared);
        lt.acquire(t(3), x(1), Shared);
        let mut woken = lt.release_all(t(1));
        woken.sort_by_key(|&(i, _, _)| i);
        assert_eq!(woken, vec![(x(0), t(2), Shared), (x(1), t(3), Shared)]);
        assert!(lt.held_by(t(1)).is_empty());
    }

    #[test]
    fn abort_of_queued_txn_unblocks_queue() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Shared);
        lt.acquire(t(2), x(0), Exclusive); // queued
        lt.acquire(t(3), x(0), Shared); // queued behind writer
                                        // Abort the queued writer: the reader should now be grantable.
        let woken = lt.release_all(t(2));
        assert_eq!(woken, vec![(x(0), t(3), Shared)]);
    }

    #[test]
    fn rerequest_same_mode_is_granted() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Shared);
        assert_eq!(lt.acquire(t(1), x(0), Shared), AcquireOutcome::Granted);
        assert_eq!(lt.holders(x(0)).len(), 1);
    }

    #[test]
    fn sole_holder_upgrade_succeeds_in_place() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Shared);
        assert_eq!(lt.acquire(t(1), x(0), Exclusive), AcquireOutcome::Granted);
        assert_eq!(lt.mode_of(t(1), x(0)), Some(Exclusive));
    }

    #[test]
    fn contended_upgrade_waits_for_other_readers() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Shared);
        lt.acquire(t(2), x(0), Shared);
        assert_eq!(lt.acquire(t(1), x(0), Exclusive), AcquireOutcome::Queued);
        let woken = lt.release_all(t(2));
        assert_eq!(woken, vec![(x(0), t(1), Exclusive)]);
        assert_eq!(lt.mode_of(t(1), x(0)), Some(Exclusive));
    }

    #[test]
    fn waits_for_includes_holders_and_queued_ahead() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Exclusive);
        lt.acquire(t(2), x(0), Exclusive);
        lt.acquire(t(3), x(0), Exclusive);
        assert_eq!(lt.waits_for(t(3), x(0)), vec![t(1), t(2)]);
        assert_eq!(lt.waits_for(t(2), x(0)), vec![t(1)]);
        assert!(lt.waits_for(t(1), x(0)).is_empty()); // holder, not waiter
    }

    #[test]
    fn waits_for_shared_ignores_compatible_holders() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Shared);
        lt.acquire(t(2), x(0), Exclusive);
        lt.acquire(t(3), x(0), Shared);
        // t3 (S) waits on the queued-ahead writer t2; t1 (S holder) is
        // compatible but t2 is between them.
        assert_eq!(lt.waits_for(t(3), x(0)), vec![t(2)]);
    }

    #[test]
    fn queued_on_tracks_waits() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Exclusive);
        assert_eq!(lt.queued_on(t(1)), None, "holders are not queued");
        lt.acquire(t(2), x(0), Shared);
        assert_eq!(lt.queued_on(t(2)), Some(x(0)));
        lt.release_all(t(1));
        assert_eq!(lt.queued_on(t(2)), None, "granted waiters leave the index");
        lt.acquire(t(3), x(0), Exclusive);
        assert_eq!(lt.queued_on(t(3)), Some(x(0)));
        lt.release_all(t(3));
        assert_eq!(lt.queued_on(t(3)), None, "aborted waiters leave the index");
    }

    #[test]
    fn all_waiters_lists_queued_requests() {
        let mut lt = LockTable::new();
        lt.acquire(t(1), x(0), Exclusive);
        lt.acquire(t(2), x(0), Shared);
        lt.acquire(t(3), x(1), Exclusive);
        lt.acquire(t(4), x(1), Exclusive);
        assert_eq!(lt.all_waiters(), vec![(t(2), x(0)), (t(4), x(1))]);
        lt.release_all(t(1));
        assert_eq!(lt.all_waiters(), vec![(t(4), x(1))]);
    }

    #[test]
    fn quiescence() {
        let mut lt = LockTable::new();
        assert!(lt.is_quiescent());
        lt.acquire(t(1), x(0), Shared);
        assert!(!lt.is_quiescent());
        lt.release_all(t(1));
        assert!(lt.is_quiescent());
    }
}
