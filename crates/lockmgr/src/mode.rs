//! Lock modes and the compatibility matrix.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A lock mode: shared (read) or exclusive (write).
///
/// §3.1: "locks are distinguished into read (shared) and write (exclusive)
/// types and a client cannot acquire a write lock on a data item until the
/// clients reading the data have released their shared locks and vice
/// versa."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared / read lock: compatible with other shared locks.
    Shared,
    /// Exclusive / write lock: compatible with nothing.
    Exclusive,
}

impl LockMode {
    /// Standard two-mode compatibility: S‖S only.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// True for [`LockMode::Shared`].
    pub fn is_shared(self) -> bool {
        self == LockMode::Shared
    }

    /// True for [`LockMode::Exclusive`].
    pub fn is_exclusive(self) -> bool {
        self == LockMode::Exclusive
    }

    /// The least upper bound of two modes (S ∨ X = X), used when a
    /// transaction re-requests an item it already holds.
    pub fn max(self, other: LockMode) -> LockMode {
        if self.is_exclusive() || other.is_exclusive() {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LockMode::Shared => "S",
            LockMode::Exclusive => "X",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive, Shared};

    #[test]
    fn compatibility_matrix() {
        assert!(Shared.compatible(Shared));
        assert!(!Shared.compatible(Exclusive));
        assert!(!Exclusive.compatible(Shared));
        assert!(!Exclusive.compatible(Exclusive));
    }

    #[test]
    fn lub() {
        assert_eq!(Shared.max(Shared), Shared);
        assert_eq!(Shared.max(Exclusive), Exclusive);
        assert_eq!(Exclusive.max(Shared), Exclusive);
        assert_eq!(Exclusive.max(Exclusive), Exclusive);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{Shared}/{Exclusive}"), "S/X");
    }
}
