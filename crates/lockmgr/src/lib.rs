//! # g2pl-lockmgr
//!
//! The server-side lock manager substrate used by the s-2PL baseline (and
//! by the c-2PL extension) of the g-2PL reproduction.
//!
//! The paper's s-2PL protocol (§3.1) is strict two-phase locking at the
//! data server: clients request items, the server acquires a read (shared)
//! or write (exclusive) lock on their behalf, ships the item, and releases
//! every lock at transaction end. Requests that cannot be granted are
//! enqueued; a wait-for-graph deadlock check is run whenever a lock cannot
//! be granted immediately (§4: "deadlock detection is initiated when a
//! lock cannot be granted"), and victims are aborted.
//!
//! Components:
//! * [`mode::LockMode`] — S/X modes with the standard compatibility matrix;
//! * [`table::LockTable`] — per-item holders + FIFO wait queues;
//! * [`wfg::WaitForGraph`] — cycle detection over the waits-for relation;
//! * [`victim::VictimPolicy`] — which deadlocked transaction to abort.

pub mod mode;
pub mod table;
pub mod victim;
pub mod wfg;

pub use mode::LockMode;
pub use table::{AcquireOutcome, LockTable};
pub use victim::VictimPolicy;
pub use wfg::WaitForGraph;
