//! Deadlock victim selection policies.

use g2pl_simcore::TxnId;
use serde::{Deserialize, Serialize};

/// Which member of a deadlock cycle to abort.
///
/// The paper aborts "the transactions necessary to remove the deadlocks"
/// without fixing a policy; commercial s-2PL systems typically abort the
/// youngest transaction (cheapest to redo, and guarantees progress because
/// the oldest transaction in any cycle eventually wins). We default to
/// youngest and expose the alternatives for the ablation benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum VictimPolicy {
    /// Abort the youngest transaction (highest `TxnId`, i.e. latest
    /// start). Default; starvation-free under restart-with-new-id because
    /// ages only grow.
    #[default]
    Youngest,
    /// Abort the oldest transaction (lowest `TxnId`).
    Oldest,
    /// Abort the transaction holding the fewest locks (cheapest rollback);
    /// ties break to the youngest.
    FewestLocks,
}

impl VictimPolicy {
    /// Pick the victim from a non-empty cycle.
    ///
    /// `locks_held` reports the number of locks a transaction holds and is
    /// only consulted by [`VictimPolicy::FewestLocks`].
    ///
    /// # Panics
    /// Panics if `cycle` is empty.
    pub fn choose(self, cycle: &[TxnId], locks_held: impl Fn(TxnId) -> usize) -> TxnId {
        assert!(
            !cycle.is_empty(),
            "cannot pick a victim from an empty cycle"
        );
        match self {
            // lint:allow(L3): cycle is non-empty per the assert above
            VictimPolicy::Youngest => *cycle.iter().max().expect("non-empty"),
            // lint:allow(L3): cycle is non-empty per the assert above
            VictimPolicy::Oldest => *cycle.iter().min().expect("non-empty"),
            VictimPolicy::FewestLocks => *cycle
                .iter()
                .min_by_key(|&&t| (locks_held(t), std::cmp::Reverse(t)))
                // lint:allow(L3): cycle is non-empty per the assert above
                .expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }

    #[test]
    fn youngest_is_highest_id() {
        let cycle = [t(3), t(9), t(1)];
        assert_eq!(VictimPolicy::Youngest.choose(&cycle, |_| 0), t(9));
    }

    #[test]
    fn oldest_is_lowest_id() {
        let cycle = [t(3), t(9), t(1)];
        assert_eq!(VictimPolicy::Oldest.choose(&cycle, |_| 0), t(1));
    }

    #[test]
    fn fewest_locks_consults_callback() {
        let cycle = [t(3), t(9), t(1)];
        let locks = |txn: TxnId| match txn.0 {
            3 => 5,
            9 => 2,
            1 => 7,
            _ => unreachable!(),
        };
        assert_eq!(VictimPolicy::FewestLocks.choose(&cycle, locks), t(9));
    }

    #[test]
    fn fewest_locks_ties_break_youngest() {
        let cycle = [t(3), t(9)];
        assert_eq!(VictimPolicy::FewestLocks.choose(&cycle, |_| 1), t(9));
    }

    #[test]
    #[should_panic(expected = "empty cycle")]
    fn empty_cycle_panics() {
        VictimPolicy::Youngest.choose(&[], |_| 0);
    }
}
