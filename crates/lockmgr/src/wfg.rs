//! Wait-for-graph deadlock detection.
//!
//! §4: "In the s-2PL implementation, deadlocks are detected by computing
//! wait-for-graphs and aborting the transactions necessary to remove the
//! deadlocks. … deadlock detection is initiated when a lock cannot be
//! granted." The same machinery detects g-2PL's cross-window (read-only)
//! deadlocks of §3.3.

use g2pl_simcore::TxnId;
use std::collections::BTreeMap;

/// A directed waits-for graph over transactions.
///
/// Edges mean "source waits for target". The graph is rebuilt (or edited)
/// by the protocol engines; [`WaitForGraph::find_cycle_from`] runs a DFS
/// from the transaction whose blocked request triggered detection, which
/// is sufficient: any deadlock created by a new edge necessarily contains
/// that edge's source.
#[derive(Clone, Debug, Default)]
pub struct WaitForGraph {
    edges: BTreeMap<TxnId, Vec<TxnId>>,
}

impl WaitForGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the edge `from → to` ("from waits for to"). Parallel edges are
    /// collapsed; self-loops are ignored (a transaction never waits for
    /// itself in a well-formed lock manager, and a self-loop would be a
    /// spurious "deadlock" of size one).
    pub fn add_edge(&mut self, from: TxnId, to: TxnId) {
        if from == to {
            return;
        }
        let v = self.edges.entry(from).or_default();
        if !v.contains(&to) {
            v.push(to);
        }
    }

    /// Remove every edge into and out of `txn` (it committed or aborted).
    pub fn remove_txn(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        for v in self.edges.values_mut() {
            v.retain(|&t| t != txn);
        }
    }

    /// Remove all edges out of `txn` (its request was granted; it no
    /// longer waits, but others may still wait for it).
    pub fn clear_outgoing(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
    }

    /// Successors of `txn`.
    pub fn out_edges(&self, txn: TxnId) -> &[TxnId] {
        self.edges.get(&txn).map_or(&[], Vec::as_slice)
    }

    /// Number of transactions with outgoing edges.
    pub fn waiting_count(&self) -> usize {
        self.edges.len()
    }

    /// Find a cycle reachable from `start`, returning its member
    /// transactions (in cycle order, starting from the transaction where
    /// the DFS closed the loop). Returns `None` when `start` cannot reach
    /// a cycle.
    pub fn find_cycle_from(&self, start: TxnId) -> Option<Vec<TxnId>> {
        // Iterative DFS with an explicit path stack (colouring: on_path).
        let mut on_path: Vec<TxnId> = Vec::new();
        let mut visited: BTreeMap<TxnId, bool> = BTreeMap::new(); // true = done
                                                                  // Stack frames: (node, next-child index).
        let mut stack: Vec<(TxnId, usize)> = vec![(start, 0)];
        on_path.push(start);
        visited.insert(start, false);

        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            let succs = self.out_edges(node);
            if *child < succs.len() {
                let next = succs[*child];
                *child += 1;
                match visited.get(&next) {
                    Some(false) => {
                        // Back edge: `next` is on the current path — cycle.
                        let pos = on_path
                            .iter()
                            .position(|&t| t == next)
                            // lint:allow(L3): visited[next] == false means next is on the path
                            .expect("on-path node is on path");
                        return Some(on_path[pos..].to_vec());
                    }
                    Some(true) => {} // already fully explored
                    None => {
                        visited.insert(next, false);
                        on_path.push(next);
                        stack.push((next, 0));
                    }
                }
            } else {
                visited.insert(node, true);
                stack.pop();
                on_path.pop();
            }
        }
        None
    }

    /// Find any cycle in the whole graph (used by tests and by periodic
    /// global detection policies).
    pub fn find_any_cycle(&self) -> Option<Vec<TxnId>> {
        // BTreeMap keys iterate in TxnId order — deterministic.
        let starts: Vec<TxnId> = self.edges.keys().copied().collect();
        for s in starts {
            if let Some(c) = self.find_cycle_from(s) {
                return Some(c);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }

    #[test]
    fn no_cycle_in_dag() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(1), t(3));
        assert!(g.find_cycle_from(t(1)).is_none());
        assert!(g.find_any_cycle().is_none());
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        let c = g.find_cycle_from(t(1)).expect("cycle");
        assert_eq!(c.len(), 2);
        assert!(c.contains(&t(1)) && c.contains(&t(2)));
    }

    #[test]
    fn long_cycle_detected_from_any_member() {
        let mut g = WaitForGraph::new();
        for i in 0..5u32 {
            g.add_edge(t(i), t((i + 1) % 5));
        }
        for i in 0..5u32 {
            let c = g.find_cycle_from(t(i)).expect("cycle");
            assert_eq!(c.len(), 5);
        }
    }

    #[test]
    fn cycle_not_reachable_from_outside_branch() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2)); // tail into the cycle
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(2)); // cycle 2<->3
        let c = g.find_cycle_from(t(1)).expect("reachable cycle");
        assert_eq!(c.len(), 2);
        assert!(!c.contains(&t(1)), "tail node is not part of the cycle");
    }

    #[test]
    fn self_loop_ignored() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(1));
        assert!(g.find_cycle_from(t(1)).is_none());
    }

    #[test]
    fn remove_txn_breaks_cycle() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        g.remove_txn(t(2));
        assert!(g.find_any_cycle().is_none());
        assert!(g.out_edges(t(1)).is_empty());
    }

    #[test]
    fn clear_outgoing_keeps_incoming() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(1));
        g.clear_outgoing(t(2));
        assert!(g.find_any_cycle().is_none());
        assert_eq!(g.out_edges(t(1)), &[t(2)]);
    }

    #[test]
    fn parallel_edges_collapse() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(1), t(2));
        assert_eq!(g.out_edges(t(1)).len(), 1);
    }

    #[test]
    fn diamond_is_not_a_cycle() {
        let mut g = WaitForGraph::new();
        g.add_edge(t(1), t(2));
        g.add_edge(t(1), t(3));
        g.add_edge(t(2), t(4));
        g.add_edge(t(3), t(4));
        assert!(g.find_any_cycle().is_none());
    }
}
