//! Extension experiments beyond the paper's figures.
//!
//! The paper's conclusion lists future work — comparing against more
//! caching protocols, exploring forward-list ordering disciplines, and
//! the read-only optimization — and its §2 and footnote 1 make claims
//! (message size stops mattering; window tuning gains little) that it
//! never plots. Each function here regenerates one such study:
//!
//! | id | study |
//! |----|-------|
//! | `ext-protocols` | s-2PL vs g-2PL vs c-2PL across the read-probability sweep |
//! | `ext-skew` | Zipf access skew: the hotter the hot set, the bigger the grouping win |
//! | `ext-bandwidth` | finite bandwidth: g-2PL's bigger messages vs fewer rounds |
//! | `ext-abort-effect` | the reproduction finding: instant vs messaged abort recovery |
//! | `ext-window-hold` | footnote 1: holding windows open buys little |
//! | `ext-ordering` | forward-list ordering disciplines |
//! | `ext-victims` | deadlock victim policies |
//! | `ext-read-expansion` | the §3.3 read-expansion variant at high read probabilities |
//! | `ext-log-retention` | WAL log-space high-water marks (§1's recovery substrate) |
//! | `ext-server-cpu` | §3.3's "server computation overlaps communication" claim |

use crate::experiments::{Scale, PR_SWEEP};
use crate::figure::{FigureData, Series};
use crate::runner::run_replicated;
use g2pl_lockmgr::VictimPolicy;
use g2pl_protocols::{AbortEffect, EngineConfig, G2plOpts, LatencyCfg, ProtocolKind};
use g2pl_workload::AccessDistribution;

fn base(protocol: ProtocolKind, latency: u64, pr: f64, scale: Scale) -> EngineConfig {
    let (warmup, measured, _) = scale.params();
    let mut cfg = EngineConfig::table1(protocol, 50, latency, pr);
    cfg.warmup_txns = warmup;
    cfg.measured_txns = measured;
    cfg
}

fn g2pl_with(f: impl FnOnce(&mut G2plOpts)) -> ProtocolKind {
    let mut opts = G2plOpts::default();
    f(&mut opts);
    ProtocolKind::G2pl(opts)
}

fn series_over<F>(label: &str, xs: &[f64], reps: u32, mut cfg_of: F) -> Series
where
    F: FnMut(f64) -> EngineConfig,
{
    Series {
        label: label.to_string(),
        points: xs
            .iter()
            .map(|&x| {
                let ci = run_replicated(&cfg_of(x), reps).response_ci();
                (x, ci.mean, ci.half_width)
            })
            .collect(),
    }
}

/// Three-way protocol comparison over the read-probability sweep in the
/// MAN — the "compare with more caching protocols" future-work item.
/// c-2PL converges towards s-2PL at low read probabilities (callbacks eat
/// the cache) and beats both on read-mostly hot data.
pub fn ext_protocols(scale: Scale) -> FigureData {
    let (_, _, reps) = scale.params();
    let series = [
        ProtocolKind::g2pl_paper(),
        ProtocolKind::S2pl,
        ProtocolKind::C2pl,
    ]
    .into_iter()
    .map(|p| {
        let label = p.label().to_string();

        series_over(&label, &PR_SWEEP, reps, |pr| {
            base(p.clone(), 250, pr, scale)
        })
    })
    .collect();
    FigureData {
        id: "ext-protocols".into(),
        title: "s-2PL vs g-2PL vs c-2PL across read probabilities, MAN".into(),
        x_label: "read probability".into(),
        y_label: "mean response time".into(),
        tails: Vec::new(),
        series,
    }
}

/// Access-skew study: a Zipf-distributed item choice concentrates load on
/// a few scorching items. The paper predicts "the more a certain data
/// item is requested … more is the performance gain" for g-2PL.
pub fn ext_skew(scale: Scale) -> FigureData {
    let (_, _, reps) = scale.params();
    let thetas = [0.0, 0.4, 0.8, 1.2, 1.6];
    let mk = |p: ProtocolKind| {
        move |theta: f64| {
            let mut cfg = base(p.clone(), 500, 0.25, scale);
            cfg.profile.access = AccessDistribution::Zipf { theta };
            cfg
        }
    };
    FigureData {
        id: "ext-skew".into(),
        title: "Zipf access skew vs response time, pr=0.25, s-WAN".into(),
        x_label: "zipf theta".into(),
        y_label: "mean response time".into(),
        tails: Vec::new(),
        series: vec![
            series_over("g-2PL", &thetas, reps, mk(ProtocolKind::g2pl_paper())),
            series_over("s-2PL", &thetas, reps, mk(ProtocolKind::S2pl)),
        ],
    }
}

/// Finite-bandwidth study (§2's claim): at low data rates the
/// transmission term dominates and g-2PL's bigger messages (data
/// migration plus forward lists) cost real time; as the rate grows the
/// latency term takes over and the round savings win.
pub fn ext_bandwidth(scale: Scale) -> FigureData {
    let (_, _, reps) = scale.params();
    // Bytes of payload transferred per simulation time unit.
    let rates = [64.0, 256.0, 1024.0, 4096.0, 16384.0];
    let mk = |p: ProtocolKind| {
        move |rate: f64| {
            let mut cfg = base(p.clone(), 250, 0.25, scale);
            cfg.latency = LatencyCfg::Bandwidth {
                latency: 250,
                bytes_per_unit: rate as u64,
            };
            cfg
        }
    };
    FigureData {
        id: "ext-bandwidth".into(),
        title: "Finite bandwidth: response time vs data rate, pr=0.25, MAN".into(),
        x_label: "bytes per time unit".into(),
        y_label: "mean response time".into(),
        tails: Vec::new(),
        series: vec![
            series_over("g-2PL", &rates, reps, mk(ProtocolKind::g2pl_paper())),
            series_over("s-2PL", &rates, reps, mk(ProtocolKind::S2pl)),
        ],
    }
}

/// The reproduction finding: abort-effect semantics across the latency
/// sweep at pr = 0.6. `g-2PL (instant)` reproduces the paper; `g-2PL
/// (messaged)` charges the real notice + migration cost of each deadlock
/// abort and loses its advantage at high contention.
pub fn ext_abort_effect(scale: Scale) -> FigureData {
    let (_, _, reps) = scale.params();
    let latencies = [50.0, 250.0, 500.0, 750.0];
    let instant = |l: f64| base(ProtocolKind::g2pl_paper(), l as u64, 0.6, scale);
    let messaged = |l: f64| {
        let mut cfg = base(ProtocolKind::g2pl_paper(), l as u64, 0.6, scale);
        cfg.abort_effect = AbortEffect::Messaged;
        cfg
    };
    let s2pl = |l: f64| base(ProtocolKind::S2pl, l as u64, 0.6, scale);
    FigureData {
        id: "ext-abort-effect".into(),
        title: "Abort-effect semantics: instant (paper) vs messaged (faithful), pr=0.6".into(),
        x_label: "network latency".into(),
        y_label: "mean response time".into(),
        tails: Vec::new(),
        series: vec![
            series_over("g-2PL (instant)", &latencies, reps, instant),
            series_over("g-2PL (messaged)", &latencies, reps, messaged),
            series_over("s-2PL", &latencies, reps, s2pl),
        ],
    }
}

/// Footnote 1: holding a returned item for up to two latencies to gather
/// a bigger window "does not produce significant performance gains".
pub fn ext_window_hold(scale: Scale) -> FigureData {
    let (_, _, reps) = scale.params();
    let holds = [0.0, 125.0, 250.0, 500.0, 1000.0];
    let mk = move |hold: f64| {
        let protocol = g2pl_with(|o| {
            o.dispatch_delay = if hold > 0.0 { Some(hold as u64) } else { None };
        });
        base(protocol, 500, 0.25, scale)
    };
    FigureData {
        id: "ext-window-hold".into(),
        title: "Collection-window hold time vs response, pr=0.25, s-WAN (footnote 1)".into(),
        x_label: "window hold (time units)".into(),
        y_label: "mean response time".into(),
        tails: Vec::new(),
        series: vec![series_over("g-2PL", &holds, reps, mk)],
    }
}

/// Forward-list ordering disciplines (§6 future work: "the various
/// ordering disciplines in forming the forward lists").
pub fn ext_ordering(scale: Scale) -> FigureData {
    use g2pl_fwdlist::order::BaseOrder;
    let (_, _, reps) = scale.params();
    let variants: Vec<(&str, ProtocolKind)> = vec![
        ("fifo+avoidance (paper)", ProtocolKind::g2pl_paper()),
        (
            "fifo only",
            g2pl_with(|o| o.ordering = g2pl_fwdlist::OrderingRule::fifo()),
        ),
        ("aging", g2pl_with(|o| o.ordering.base = BaseOrder::Aging)),
        (
            "coalesce readers",
            g2pl_with(|o| o.ordering.coalesce_readers = true),
        ),
    ];
    let prs = [0.0, 0.3, 0.6, 0.9];
    let series = variants
        .into_iter()
        .map(|(label, p)| series_over(label, &prs, reps, |pr| base(p.clone(), 250, pr, scale)))
        .collect();
    FigureData {
        id: "ext-ordering".into(),
        title: "Forward-list ordering disciplines, MAN".into(),
        x_label: "read probability".into(),
        y_label: "mean response time".into(),
        tails: Vec::new(),
        series,
    }
}

/// Deadlock victim policies for both protocols at the contended cell.
pub fn ext_victims(scale: Scale) -> FigureData {
    let (_, _, reps) = scale.params();
    let policies = [
        ("youngest", VictimPolicy::Youngest),
        ("oldest", VictimPolicy::Oldest),
        ("fewest-locks", VictimPolicy::FewestLocks),
    ];
    let prs = [0.0, 0.3, 0.6];
    let mut series = Vec::new();
    for p in [ProtocolKind::g2pl_paper(), ProtocolKind::S2pl] {
        for (name, policy) in policies {
            let label = format!("{} / {name}", p.label());
            series.push(series_over(&label, &prs, reps, |pr| {
                let mut cfg = base(p.clone(), 500, pr, scale);
                cfg.victim = policy;
                cfg
            }));
        }
    }
    FigureData {
        id: "ext-victims".into(),
        title: "Victim policies vs response time, s-WAN".into(),
        x_label: "read probability".into(),
        y_label: "mean response time".into(),
        tails: Vec::new(),
        series,
    }
}

/// The §3.3 read-expansion variant ("expanding a dispatched forward list
/// to include new read requests"), which the paper leaves as future work:
/// it removes the read penalty at high read probabilities.
pub fn ext_read_expansion(scale: Scale) -> FigureData {
    let (_, _, reps) = scale.params();
    let prs = [0.6, 0.8, 0.9, 1.0];
    FigureData {
        id: "ext-read-expansion".into(),
        title: "Read-expansion variant at high read probabilities, MAN".into(),
        x_label: "read probability".into(),
        y_label: "mean response time".into(),
        tails: Vec::new(),
        series: vec![
            series_over("g-2PL", &prs, reps, |pr| {
                base(ProtocolKind::g2pl_paper(), 250, pr, scale)
            }),
            series_over("g-2PL + read expansion", &prs, reps, |pr| {
                base(g2pl_with(|o| o.expand_reads = true), 250, pr, scale)
            }),
            series_over("s-2PL", &prs, reps, |pr| {
                base(ProtocolKind::S2pl, 250, pr, scale)
            }),
        ],
    }
}

/// Server CPU sensitivity (§3.3's overlap claim): the paper argues the
/// forward-list reordering computations overlap communication and "do
/// not increase the transaction blocking time". Sweeping a serial
/// per-message server CPU cost shows how much headroom that claim has —
/// and where the server finally becomes the bottleneck for each
/// protocol (s-2PL pushes roughly 3 messages per transaction through the
/// server; g-2PL offloads data migration to the clients).
pub fn ext_server_cpu(scale: Scale) -> FigureData {
    let (_, _, reps) = scale.params();
    let costs = [0.0, 1.0, 2.0, 5.0, 10.0, 20.0];
    let mk = |p: ProtocolKind| {
        move |cost: f64| {
            let mut cfg = base(p.clone(), 500, 0.6, scale);
            cfg.server_cpu_per_op = cost as u64;
            cfg
        }
    };
    FigureData {
        id: "ext-server-cpu".into(),
        title: "Server CPU cost per message vs response, pr=0.6, s-WAN".into(),
        x_label: "server cpu per message (time units)".into(),
        y_label: "mean response time".into(),
        tails: Vec::new(),
        series: vec![
            series_over("g-2PL", &costs, reps, mk(ProtocolKind::g2pl_paper())),
            series_over("s-2PL", &costs, reps, mk(ProtocolKind::S2pl)),
        ],
    }
}

/// WAL log retention (the §1 recovery substrate): the worst per-site
/// live-log high-water mark, versus latency. Under s-2PL a committed
/// version is permanent as soon as the commit message lands, so logs stay
/// shallow; under g-2PL the version only becomes permanent when the item
/// finishes migrating home, so sites must provision log space that grows
/// with the forward-list pipelines.
pub fn ext_log_retention(scale: Scale) -> FigureData {
    let (_, _, reps) = scale.params();
    let latencies = [50.0, 250.0, 500.0, 750.0];
    let mk = |p: ProtocolKind| {
        move |l: f64| {
            let mut cfg = base(p.clone(), l as u64, 0.25, scale);
            cfg.enable_wal = true;
            cfg
        }
    };
    let series = [ProtocolKind::g2pl_paper(), ProtocolKind::S2pl]
        .into_iter()
        .map(|p| {
            let label = p.label().to_string();
            let cfg_of = mk(p);
            Series {
                label,
                points: latencies
                    .iter()
                    .map(|&l| {
                        let r = run_replicated(&cfg_of(l), reps);
                        let vals: Vec<f64> = r
                            .runs
                            .iter()
                            .map(|m| {
                                // lint:allow(L3): the extension config enables the WAL, so every run carries WAL metrics
                                m.wal.expect("wal enabled").high_water_bytes_max as f64 / 1024.0
                            })
                            .collect();
                        let ci = g2pl_stats::Replications::from_values(&vals).interval_95();
                        (l, ci.mean, ci.half_width)
                    })
                    .collect(),
            }
        })
        .collect();
    FigureData {
        id: "ext-log-retention".into(),
        title: "Worst per-site live WAL (KiB) vs latency, pr=0.25".into(),
        x_label: "network latency".into(),
        y_label: "live log high-water (KiB)".into(),
        tails: Vec::new(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_figures_have_expected_series() {
        // Construct the figures at the cheapest possible size by probing
        // their metadata without running: we only validate the builders
        // produce well-formed configs via a tiny run of one cell each.
        let f = ext_window_hold(Scale::Smoke);
        assert_eq!(f.series.len(), 1);
        assert_eq!(f.series[0].points.len(), 5);
    }
}
