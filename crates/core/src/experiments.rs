//! The experiment registry: every figure of the paper as data.
//!
//! Each chart is declared as a [`FigureSpec`] — id, caption, metric and
//! sweep — and collected in [`FIGURES`]; [`FigureSpec::build`]
//! regenerates the data behind it at a chosen [`Scale`]. The `repro`
//! binary in `g2pl-bench` lists and dispatches straight from the
//! registry; integration tests assert the qualitative *shapes* (who
//! wins, where the crossover falls) at smoke scale. Prose artifacts
//! (tables, the Fig 1 timeline, the headline claim) remain functions.
//!
//! | id | artifact |
//! |----|----------|
//! | `table1` | simulation parameters |
//! | `table2` | networking environments |
//! | `fig1`   | example execution, 3 exclusive transactions |
//! | `fig2`–`fig4` | response time vs latency, pr ∈ {0.0, 0.6, 1.0} |
//! | `fig5`–`fig7` | response time vs read probability (ss-LAN, MAN, l-WAN) |
//! | `fig8`–`fig9` | abort %, vs latency, pr ∈ {0.6, 0.8} |
//! | `fig10` | abort % vs latency, read-only system |
//! | `fig11` | abort % vs forward-list length cap, read-only ss-LAN |
//! | `fig12`–`fig15` | response time / abort % vs number of clients, s-WAN |
//! | `fig_faults` | response time vs message-loss probability, 3 engines |
//! | `fig_faults_aborts` | abort % vs message-loss probability, 3 engines |
//! | `fig_server_faults` | response time vs server outage duration, 3 engines |
//! | `fig_shard_faults` | commit rate & p99 vs per-shard outage duration, 1–8 shards |
//! | `fig_tail` | p99/p999 response time vs number of clients, 3 engines |
//! | `fig_scale` | response time vs clients × shard count, PDES scale-out |
//! | `headline` | the 20–25% response-time improvement claim |

use crate::figure::{FigureData, Series, TailPoint, TailSeries};
use crate::runner::run_grid;
use g2pl_faults::FaultPlan;
use g2pl_netmodel::NetworkEnv;
use g2pl_protocols::{run, run_scale, EngineConfig, ProtocolKind, ScaleCfg, ShardMix, TraceEvent};
use std::fmt::Write as _;

/// How much compute to spend per experiment.
///
/// The paper ran 50 000 measured transactions per replication and 5
/// replications per point (34 CPU-hours per curve in 1997). The shapes
/// stabilise far earlier; `Smoke` is enough for CI assertions, `Full`
/// matches the paper's methodology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~1k measured transactions, 2 replications: seconds per figure.
    Smoke,
    /// ~5k measured transactions, 3 replications: default for `repro`.
    Default,
    /// 50k measured transactions, 5 replications: the paper's methodology.
    Full,
}

impl Scale {
    /// (warm-up transactions, measured transactions, replications).
    pub fn params(self) -> (u64, u64, u32) {
        match self {
            Scale::Smoke => (200, 1_000, 2),
            Scale::Default => (500, 5_000, 3),
            Scale::Full => (2_000, 50_000, 5),
        }
    }
}

/// The latency sweep of Figs 2–4 and 8–9 (Table 2 environments).
pub const LATENCY_SWEEP: [u64; 6] = [1, 50, 100, 250, 500, 750];

/// The read-probability sweep of Figs 5–7.
pub const PR_SWEEP: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// The client-count sweep of Figs 12–15.
pub const CLIENT_SWEEP: [u32; 6] = [10, 25, 50, 75, 100, 150];

/// The message-loss sweep of the fault experiments (`fig_faults*`).
pub const LOSS_SWEEP: [f64; 6] = [0.0, 0.01, 0.02, 0.05, 0.08, 0.10];

/// The server-outage-duration sweep of `fig_server_faults`, in simulated
/// time units per outage (two outages per run; 0 = no crash, the inert
/// anchor point).
pub const OUTAGE_SWEEP: [u64; 5] = [0, 200, 500, 1_000, 2_000];

/// The shard counts swept by `fig_shard_faults`: one series each. The
/// hot set stays 24 items total so the series differ only in how the
/// directory is partitioned into fault domains.
pub const SHARD_FAULT_SHARDS: [u32; 4] = [1, 2, 4, 8];

fn base_cfg(
    protocol: ProtocolKind,
    clients: u32,
    latency: u64,
    pr: f64,
    scale: Scale,
) -> EngineConfig {
    let (warmup, measured, _) = scale.params();
    let mut cfg = EngineConfig::table1(protocol, clients, latency, pr);
    cfg.warmup_txns = warmup;
    cfg.measured_txns = measured;
    cfg
}

/// Metric a figure plots on its y-axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Mean transaction response time over measured commits.
    Response,
    /// Percentage of measured completions that aborted.
    AbortPct,
}

/// Sweep an x-axis for both protocols and collect one metric.
///
/// Every `(protocol, x, replication)` cell of the figure is built up
/// front and handed to [`run_grid`], which schedules the whole grid on
/// one worker pool; results come back in point order, so the figure is
/// identical at any worker count.
#[allow(clippy::too_many_arguments)]
fn sweep(
    id: &str,
    title: &str,
    x_label: &str,
    metric: Metric,
    xs: &[f64],
    scale: Scale,
    protocols: &[ProtocolKind],
    mut cfg_of: impl FnMut(ProtocolKind, f64) -> EngineConfig,
) -> FigureData {
    let (_, _, reps) = scale.params();
    let mut configs = Vec::with_capacity(protocols.len() * xs.len());
    for p in protocols {
        for &x in xs {
            configs.push(cfg_of(p.clone(), x));
        }
    }
    let mut results = run_grid(&configs, reps).into_iter();
    let mut series = Vec::with_capacity(protocols.len());
    let mut tails = Vec::new();
    for p in protocols {
        let mut points = Vec::with_capacity(xs.len());
        let mut tail_points = Vec::with_capacity(xs.len());
        for &x in xs {
            // lint:allow(L3): run_grid returns one result per config
            let r = results.next().expect("one result per grid point");
            let ci = match metric {
                Metric::Response => r.response_ci(),
                Metric::AbortPct => r.abort_pct_ci(),
            };
            points.push((x, ci.mean, ci.half_width));
            if metric == Metric::Response {
                let t = r.tail_summary();
                tail_points.push(TailPoint {
                    x,
                    p50: t.p50,
                    p90: t.p90,
                    p99: t.p99,
                    p999: t.p999,
                    max: t.max,
                    count: t.count,
                });
            }
        }
        series.push(Series {
            label: p.label().to_string(),
            points,
        });
        if metric == Metric::Response {
            tails.push(TailSeries {
                label: p.label().to_string(),
                points: tail_points,
            });
        }
    }
    FigureData {
        id: id.into(),
        title: title.into(),
        x_label: x_label.into(),
        y_label: match metric {
            Metric::Response => "mean response time".into(),
            Metric::AbortPct => "% aborted".into(),
        },
        series,
        tails,
    }
}

const BOTH: &[ProtocolKind] = &[ProtocolKind::G2pl(g2pl_paper_opts()), ProtocolKind::S2pl];

/// All three engines, for the fault experiments.
const TRIO: &[ProtocolKind] = &[
    ProtocolKind::G2pl(g2pl_paper_opts()),
    ProtocolKind::S2pl,
    ProtocolKind::C2pl,
];

/// `G2plOpts::default()` as a const-friendly constructor.
const fn g2pl_paper_opts() -> g2pl_protocols::G2plOpts {
    g2pl_protocols::G2plOpts {
        ordering: g2pl_fwdlist::OrderingRule {
            base: g2pl_fwdlist::order::BaseOrder::Fifo,
            consistent: true,
            coalesce_readers: false,
        },
        mr1w: true,
        expand_reads: false,
        fl_cap: None,
        dispatch_delay: None,
    }
}

// ---- tables ----

/// Table 1: the simulation parameters, as configured in this
/// reproduction.
pub fn table1() -> String {
    let cfg = EngineConfig::table1(ProtocolKind::S2pl, 50, 500, 0.6);
    let mut out = String::new();
    let _ = writeln!(out, "### Table 1 — Simulation parameters");
    let _ = writeln!(out, "| Parameter | Value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| Number of servers | 1 |");
    let _ = writeln!(out, "| Number of clients | varying (50 in Figs 2–11) |");
    let _ = writeln!(out, "| Number of hot data items | {} |", cfg.num_items());
    let _ = writeln!(out, "| Transaction execution pattern | Sequential |");
    let _ = writeln!(
        out,
        "| Items accessed per transaction | {}–{} (uniform) |",
        cfg.profile.min_items, cfg.profile.max_items
    );
    let _ = writeln!(out, "| Percentage of read accesses | 0.00–1.00 |");
    let _ = writeln!(out, "| Network latency | 1–750 time units (Table 2) |");
    let _ = writeln!(
        out,
        "| Computation time per operation | {}–{} time units |",
        cfg.profile.think_min, cfg.profile.think_max
    );
    let _ = writeln!(
        out,
        "| Idle time between transactions | {}–{} time units |",
        cfg.profile.idle_min, cfg.profile.idle_max
    );
    let _ = writeln!(out, "| Multiprogramming level at clients | 1 |");
    out
}

/// Table 2: the simulated networking environments.
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### Table 2 — Networking environments simulated");
    let _ = writeln!(out, "| Network type | Abbrev. | Latency |");
    let _ = writeln!(out, "|---|---|---|");
    for env in NetworkEnv::ALL {
        let _ = writeln!(
            out,
            "| {} | {} | {} |",
            env.name(),
            env.abbrev(),
            env.latency()
        );
    }
    out
}

// ---- figure 1: the worked example ----

/// Fig 1: deterministic trace of three single-item exclusive
/// transactions under both protocols, plus the timelines and the relative
/// improvement.
///
/// Setup: 3 clients, 1 item, every access exclusive, think time pinned to
/// 1 unit, idle pinned so that all three first requests are issued
/// simultaneously, latency 2 units — the paper's example configuration.
pub fn fig1() -> String {
    fn trace_of(protocol: ProtocolKind) -> (Vec<TraceEvent>, Vec<u64>, u64) {
        let mut cfg = EngineConfig::table1(protocol, 3, 2, 0.0);
        cfg.items = g2pl_protocols::ItemSpace::single(1);
        cfg.profile.min_items = 1;
        cfg.profile.max_items = 1;
        cfg.profile.think_min = 1;
        cfg.profile.think_max = 1;
        // Pin the start-up idle so all three requests leave at t = 2.
        cfg.profile.idle_min = 2;
        cfg.profile.idle_max = 2;
        cfg.warmup_txns = 0;
        cfg.measured_txns = 3;
        cfg.trace_events = true;
        // lint:allow(L3): the config is assembled immediately above and statically valid
        let m = run(&cfg).expect("valid config");
        // lint:allow(L3): trace_events is set two lines up, so the trace is present
        let trace = m.trace.expect("trace enabled");
        let mut commits: Vec<u64> = trace
            .iter()
            .filter(|e| e.kind == g2pl_protocols::TraceKind::Committed)
            .map(|e| e.at.units())
            .take(3)
            .collect();
        commits.sort_unstable();
        let last = commits.last().copied().unwrap_or(0);
        (trace, commits, last)
    }

    let (gt, gc, glast) = trace_of(ProtocolKind::g2pl_paper());
    let (st, sc, slast) = trace_of(ProtocolKind::S2pl);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Fig 1 — Example execution: 3 clients, exclusive access, latency 2, processing 1"
    );
    let _ = writeln!(
        out,
        "\n**g-2PL timeline** (all requests leave at t=2):\n```"
    );
    for e in gt.iter().take(40) {
        let _ = writeln!(out, "{e}");
    }
    let _ = writeln!(out, "```");
    let _ = writeln!(out, "\n**s-2PL timeline:**\n```");
    for e in st.iter().take(40) {
        let _ = writeln!(out, "{e}");
    }
    let _ = writeln!(out, "```");
    let _ = writeln!(out, "\ncommit instants: g-2PL {gc:?}, s-2PL {sc:?}");
    let g_span = glast - 2;
    let s_span = slast - 2;
    let improvement = 100.0 * (s_span as f64 - g_span as f64) / s_span as f64;
    let _ = writeln!(
        out,
        "total execution (first request → last commit): g-2PL {g_span} vs s-2PL {s_span} \
         units → {improvement:.1}% reduction"
    );
    let _ = writeln!(
        out,
        "(the paper's idealised example, with all three requests landing in one pre-existing \
         collection window, gives 12 vs 15 units = 20%; our simulated start-up serves the \
         first request from an empty window, so the first hop costs one extra round trip)"
    );
    out
}

// ---- the declarative figure registry ----

/// The x-axis sweep of a registered figure, with its fixed parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sweep {
    /// Network latency over [`LATENCY_SWEEP`] at a fixed read
    /// probability, 50 clients (figs 2–4, 8–9).
    Latency {
        /// Read probability held fixed across the sweep.
        pr: f64,
    },
    /// Network latency over the short read-only range 1–10, pr = 1.0
    /// (fig 10: g-2PL's unique read-only deadlocks).
    LatencyReadOnly,
    /// Read probability over [`PR_SWEEP`] at a fixed latency (figs 5–7).
    ReadProb {
        /// Network latency held fixed across the sweep.
        latency: u64,
    },
    /// Client count over [`CLIENT_SWEEP`] in the s-WAN (figs 12–15).
    Clients {
        /// Read probability held fixed across the sweep.
        pr: f64,
    },
    /// Forward-list length cap, read-only ss-LAN, g-2PL only (fig 11).
    FlCap,
    /// Message-loss probability over [`LOSS_SWEEP`], all three engines
    /// with the fault-injection subsystem on (`fig_faults*`).
    LossRate,
    /// Server outage duration over [`OUTAGE_SWEEP`], all three engines
    /// with crash-recovery on (`fig_server_faults`): two fixed outages
    /// per run, WAL replay plus the re-registration handshake on each
    /// restart.
    ServerOutage,
    /// Per-shard outage duration over [`OUTAGE_SWEEP`], one s-2PL series
    /// per shard count in [`SHARD_FAULT_SHARDS`] (`fig_shard_faults`).
    /// Every run beyond one shard mixes 30% multi-home transactions, the
    /// crash always takes down the *highest* shard (a non-zero fault
    /// domain whenever one exists), and x = 0 runs with no fault plan at
    /// all — the inert anchor. Runs drain, so the commit-rate dip and
    /// the p99 tail both reflect recovery plus the atomic-commitment
    /// detour, never dropped work.
    ShardFaults,
    /// Client count over [`CLIENT_SWEEP`] in the MAN, pr = 0.6, all
    /// three engines, draining every run: plots p99 and p999 response
    /// time from the pooled quantile sketch instead of the mean
    /// (`fig_tail`).
    TailLoad,
    /// Client count × shard count under the sharded scale-out engine
    /// (`fig_scale`): every cell runs the lean multi-home s-2PL harness
    /// on the conservative PDES with one LP per shard, 20% multi-home
    /// transactions over mildly skewed shard popularity, then drains
    /// and verifies quiescence. One series per shard count; tail rows
    /// come from the merged per-LP sketches.
    ScaleOut,
}

/// One registered figure: id, caption material, metric and sweep. The
/// whole chart is data — [`FigureSpec::build`] interprets it.
#[derive(Clone, Copy, Debug)]
pub struct FigureSpec {
    /// Artifact id, e.g. `"fig2"` (what `repro <id>` dispatches on).
    pub id: &'static str,
    /// One-line summary shown by `repro list`.
    pub blurb: &'static str,
    /// Quantity plotted on the y-axis.
    pub metric: Metric,
    /// X-axis sweep and its fixed parameters.
    pub sweep: Sweep,
}

/// Every registered figure, in paper order. `repro list` and the figure
/// dispatch both read this table; adding a chart means adding a row.
pub static FIGURES: &[FigureSpec] = &[
    FigureSpec {
        id: "fig2",
        blurb: "response time vs latency, write-only (pr=0.0)",
        metric: Metric::Response,
        sweep: Sweep::Latency { pr: 0.0 },
    },
    FigureSpec {
        id: "fig3",
        blurb: "response time vs latency, mixed (pr=0.6)",
        metric: Metric::Response,
        sweep: Sweep::Latency { pr: 0.6 },
    },
    FigureSpec {
        id: "fig4",
        blurb: "response time vs latency, read-only (pr=1.0)",
        metric: Metric::Response,
        sweep: Sweep::Latency { pr: 1.0 },
    },
    FigureSpec {
        id: "fig5",
        blurb: "response time vs read probability, ss-LAN (latency 1)",
        metric: Metric::Response,
        sweep: Sweep::ReadProb { latency: 1 },
    },
    FigureSpec {
        id: "fig6",
        blurb: "response time vs read probability, MAN (latency 250)",
        metric: Metric::Response,
        sweep: Sweep::ReadProb { latency: 250 },
    },
    FigureSpec {
        id: "fig7",
        blurb: "response time vs read probability, l-WAN (latency 750)",
        metric: Metric::Response,
        sweep: Sweep::ReadProb { latency: 750 },
    },
    FigureSpec {
        id: "fig8",
        blurb: "abort % vs latency, pr=0.6",
        metric: Metric::AbortPct,
        sweep: Sweep::Latency { pr: 0.6 },
    },
    FigureSpec {
        id: "fig9",
        blurb: "abort % vs latency, pr=0.8",
        metric: Metric::AbortPct,
        sweep: Sweep::Latency { pr: 0.8 },
    },
    FigureSpec {
        id: "fig10",
        blurb: "abort % vs latency, read-only system",
        metric: Metric::AbortPct,
        sweep: Sweep::LatencyReadOnly,
    },
    FigureSpec {
        id: "fig11",
        blurb: "abort % vs forward-list length cap, read-only ss-LAN",
        metric: Metric::AbortPct,
        sweep: Sweep::FlCap,
    },
    FigureSpec {
        id: "fig12",
        blurb: "response time vs number of clients, pr=0.25, s-WAN",
        metric: Metric::Response,
        sweep: Sweep::Clients { pr: 0.25 },
    },
    FigureSpec {
        id: "fig13",
        blurb: "abort % vs number of clients, pr=0.25, s-WAN",
        metric: Metric::AbortPct,
        sweep: Sweep::Clients { pr: 0.25 },
    },
    FigureSpec {
        id: "fig14",
        blurb: "response time vs number of clients, pr=0.75, s-WAN",
        metric: Metric::Response,
        sweep: Sweep::Clients { pr: 0.75 },
    },
    FigureSpec {
        id: "fig15",
        blurb: "abort % vs number of clients, pr=0.75, s-WAN",
        metric: Metric::AbortPct,
        sweep: Sweep::Clients { pr: 0.75 },
    },
    FigureSpec {
        id: "fig_faults",
        blurb: "response time vs message-loss probability, 3 engines",
        metric: Metric::Response,
        sweep: Sweep::LossRate,
    },
    FigureSpec {
        id: "fig_faults_aborts",
        blurb: "abort % vs message-loss probability, 3 engines",
        metric: Metric::AbortPct,
        sweep: Sweep::LossRate,
    },
    FigureSpec {
        id: "fig_server_faults",
        blurb: "response time vs server outage duration, 3 engines",
        metric: Metric::Response,
        sweep: Sweep::ServerOutage,
    },
    FigureSpec {
        id: "fig_shard_faults",
        blurb: "commit rate & p99 vs per-shard outage duration, 1/2/4/8 shards",
        metric: Metric::Response,
        sweep: Sweep::ShardFaults,
    },
    FigureSpec {
        id: "fig_tail",
        blurb: "p99/p999 response time vs number of clients, 3 engines",
        metric: Metric::Response,
        sweep: Sweep::TailLoad,
    },
    FigureSpec {
        id: "fig_scale",
        blurb: "response time vs clients x shard count, sharded PDES scale-out",
        metric: Metric::Response,
        sweep: Sweep::ScaleOut,
    },
];

/// Look up a registered figure by id.
pub fn figure(id: &str) -> Option<&'static FigureSpec> {
    FIGURES.iter().find(|f| f.id == id)
}

/// The registry as a markdown table (the body of `repro list`).
pub fn list_figures() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| id | figure |");
    let _ = writeln!(out, "|---|---|");
    for f in FIGURES {
        let _ = writeln!(out, "| {} | {} |", f.id, f.blurb);
    }
    out
}

impl FigureSpec {
    /// Regenerate the figure's data at the given scale.
    pub fn build(&self, scale: Scale) -> FigureData {
        match self.sweep {
            Sweep::Latency { pr } => sweep(
                self.id,
                &match self.metric {
                    Metric::Response => {
                        format!("Mean transaction response time vs network latency, pr={pr}")
                    }
                    Metric::AbortPct => format!(
                        "Percentage of transactions aborted vs latency, pr={pr}, \
                         50 clients, 25 items"
                    ),
                },
                "network latency",
                self.metric,
                &LATENCY_SWEEP.map(|l| l as f64),
                scale,
                BOTH,
                |p, latency| base_cfg(p, 50, latency as u64, pr, scale),
            ),
            Sweep::LatencyReadOnly => sweep(
                self.id,
                "Percentage of transactions aborted vs latency, read-only system",
                "network latency",
                self.metric,
                &[1.0, 2.0, 4.0, 6.0, 8.0, 10.0],
                scale,
                BOTH,
                |p, latency| base_cfg(p, 50, latency as u64, 1.0, scale),
            ),
            Sweep::ReadProb { latency } => {
                let env = NetworkEnv::nearest(g2pl_simcore::SimTime::new(latency));
                sweep(
                    self.id,
                    &format!("Mean response time vs read probability in {env} (latency {latency})"),
                    "read probability",
                    self.metric,
                    &PR_SWEEP,
                    scale,
                    BOTH,
                    |p, pr| base_cfg(p, 50, latency, pr, scale),
                )
            }
            Sweep::Clients { pr } => sweep(
                self.id,
                &match self.metric {
                    Metric::Response => {
                        format!("Mean response time vs number of clients: 25 items, pr={pr}, s-WAN")
                    }
                    Metric::AbortPct => {
                        format!("Percentage aborted vs number of clients: 25 items, pr={pr}, s-WAN")
                    }
                },
                "number of clients",
                self.metric,
                &CLIENT_SWEEP.map(|c| c as f64),
                scale,
                BOTH,
                |p, clients| base_cfg(p, clients as u32, 500, pr, scale),
            ),
            Sweep::FlCap => self.build_fl_cap(scale),
            Sweep::LossRate => sweep(
                self.id,
                &match self.metric {
                    Metric::Response => {
                        "Mean response time vs message-loss probability, pr=0.6, MAN".to_string()
                    }
                    Metric::AbortPct => {
                        "Percentage of transactions aborted vs message-loss probability, \
                         pr=0.6, MAN"
                            .to_string()
                    }
                },
                "message loss probability",
                self.metric,
                &LOSS_SWEEP,
                scale,
                TRIO,
                |p, loss| {
                    let mut cfg = base_cfg(p, 50, 250, 0.6, scale);
                    // Recovery liveness is part of what the figure shows:
                    // drain so every non-aborted transaction must finish.
                    cfg.drain = true;
                    cfg.faults = Some(FaultPlan::message_loss(loss));
                    cfg
                },
            ),
            Sweep::ServerOutage => sweep(
                self.id,
                &match self.metric {
                    Metric::Response => {
                        "Mean response time vs server outage duration, pr=0.6, latency 50"
                            .to_string()
                    }
                    Metric::AbortPct => {
                        "Percentage of transactions aborted vs server outage duration, \
                         pr=0.6, latency 50"
                            .to_string()
                    }
                },
                "server outage duration",
                self.metric,
                &OUTAGE_SWEEP.map(|d| d as f64),
                scale,
                TRIO,
                |p, down_for| {
                    let mut cfg = base_cfg(p, 50, 50, 0.6, scale);
                    // Every non-aborted transaction must finish despite
                    // losing the server twice — recovery liveness is the
                    // point of the figure.
                    cfg.drain = true;
                    cfg.faults = Some(FaultPlan::server_outage(down_for as u64));
                    cfg
                },
            ),
            Sweep::ShardFaults => self.build_shard_faults(scale),
            Sweep::TailLoad => self.build_tail(scale),
            Sweep::ScaleOut => self.build_scale(scale),
        }
    }

    /// Fig 11: single-series g-2PL sweep over the forward-list cap.
    fn build_fl_cap(&self, scale: Scale) -> FigureData {
        let caps: [u64; 8] = [1, 2, 3, 4, 5, 6, 8, 10];
        let (_, _, reps) = scale.params();
        let configs: Vec<EngineConfig> = caps
            .iter()
            .map(|&cap| {
                let opts = g2pl_protocols::G2plOpts {
                    fl_cap: Some(cap as usize),
                    ..Default::default()
                };
                base_cfg(ProtocolKind::G2pl(opts), 50, 1, 1.0, scale)
            })
            .collect();
        let points = caps
            .iter()
            .zip(run_grid(&configs, reps))
            .map(|(&cap, r)| {
                let ci = r.abort_pct_ci();
                (cap as f64, ci.mean, ci.half_width)
            })
            .collect();
        FigureData {
            id: self.id.into(),
            title: "Percentage of transactions aborted vs forward-list length, pr=1.0, ss-LAN"
                .into(),
            x_label: "forward list length cap".into(),
            y_label: "% aborted".into(),
            series: vec![Series {
                label: "g-2PL".into(),
                points,
            }],
            tails: Vec::new(),
        }
    }

    /// `fig_shard_faults`: shard fault domains under the s-2PL engine.
    /// One series pair per shard count in [`SHARD_FAULT_SHARDS`]; the
    /// x-axis is [`OUTAGE_SWEEP`] outage durations with both scheduled
    /// crashes landing on the highest shard. Beyond one shard the
    /// workload mixes 30% multi-home transactions (θ = 0.5 shard
    /// popularity), so a crash strands in-doubt prepare votes that
    /// recovery must resolve. Every run drains; replication 0 of every
    /// point is trace-verified (P1–P10 plus serializability) by the
    /// grid runner. The plotted commit rate is measured commits per
    /// 1 000 simulated time units — sensitive to both the outage dead
    /// time and the atomic-commitment round trips — and p99 comes from
    /// the pooled quantile sketch.
    fn build_shard_faults(&self, scale: Scale) -> FigureData {
        let (_, _, reps) = scale.params();
        let mut configs = Vec::with_capacity(SHARD_FAULT_SHARDS.len() * OUTAGE_SWEEP.len());
        for &shards in &SHARD_FAULT_SHARDS {
            for &down_for in &OUTAGE_SWEEP {
                let mut cfg = base_cfg(ProtocolKind::S2pl, 50, 50, 0.6, scale);
                // Hold the hot set at 24 items however it is partitioned,
                // so the series differ only in fault-domain layout.
                cfg.items = g2pl_protocols::ItemSpace::sharded(shards, 24 / shards);
                if shards > 1 {
                    cfg.profile.shard_mix = Some(ShardMix {
                        cross_frac: 0.3,
                        shard_theta: 0.5,
                    });
                }
                // Acknowledged commits must survive the outage: drain so
                // every non-aborted transaction finishes and is counted.
                cfg.drain = true;
                // x = 0 carries no plan at all — the inert anchor runs
                // the pristine code path (no WAL forcing, no 2PC).
                if down_for > 0 {
                    cfg.faults = Some(FaultPlan::shard_outage(shards - 1, down_for));
                }
                configs.push(cfg);
            }
        }
        let mut results = run_grid(&configs, reps).into_iter();
        let mut series = Vec::with_capacity(2 * SHARD_FAULT_SHARDS.len());
        let mut tails = Vec::with_capacity(SHARD_FAULT_SHARDS.len());
        for &shards in &SHARD_FAULT_SHARDS {
            let label = if shards == 1 {
                "1 shard".to_string()
            } else {
                format!("{shards} shards")
            };
            let mut rate = Vec::with_capacity(OUTAGE_SWEEP.len());
            let mut p99 = Vec::with_capacity(OUTAGE_SWEEP.len());
            let mut tail_points = Vec::with_capacity(OUTAGE_SWEEP.len());
            for &down_for in &OUTAGE_SWEEP {
                let x = down_for as f64;
                // lint:allow(L3): run_grid returns one result per config
                let r = results.next().expect("one result per grid point");
                let per_rep: Vec<f64> = r
                    .runs
                    .iter()
                    .map(|m| 1_000.0 * m.committed_total as f64 / m.end_time.units() as f64)
                    .collect();
                let mean = per_rep.iter().sum::<f64>() / per_rep.len() as f64;
                rate.push((x, mean, 0.0));
                let t = r.tail_summary();
                p99.push((x, t.p99 as f64, 0.0));
                tail_points.push(TailPoint {
                    x,
                    p50: t.p50,
                    p90: t.p90,
                    p99: t.p99,
                    p999: t.p999,
                    max: t.max,
                    count: t.count,
                });
            }
            series.push(Series {
                label: format!("{label} commit rate"),
                points: rate,
            });
            series.push(Series {
                label: format!("{label} p99"),
                points: p99,
            });
            tails.push(TailSeries {
                label,
                points: tail_points,
            });
        }
        FigureData {
            id: self.id.into(),
            title: "Commit rate and p99 response vs per-shard outage duration, \
                    s-2PL, 30% multi-home beyond one shard"
                .into(),
            x_label: "outage duration per crash".into(),
            y_label: "commits per 1k units / p99 response".into(),
            series,
            tails,
        }
    }

    /// `fig_tail`: load vs tail quantiles for all three engines. Every
    /// run drains (stragglers must finish and be counted — the tail is
    /// the point), and the plotted y values come straight from the
    /// pooled [`g2pl_stats::TailSketch`], so the curves are exact bucket
    /// edges with no sampling error bars (ci = 0).
    fn build_tail(&self, scale: Scale) -> FigureData {
        let (_, _, reps) = scale.params();
        let mut configs = Vec::with_capacity(TRIO.len() * CLIENT_SWEEP.len());
        for p in TRIO {
            for &clients in &CLIENT_SWEEP {
                let mut cfg = base_cfg(p.clone(), clients, 250, 0.6, scale);
                cfg.drain = true;
                configs.push(cfg);
            }
        }
        let mut results = run_grid(&configs, reps).into_iter();
        let mut series = Vec::with_capacity(2 * TRIO.len());
        let mut tails = Vec::with_capacity(TRIO.len());
        for p in TRIO {
            let mut p99 = Vec::with_capacity(CLIENT_SWEEP.len());
            let mut p999 = Vec::with_capacity(CLIENT_SWEEP.len());
            let mut tail_points = Vec::with_capacity(CLIENT_SWEEP.len());
            for &clients in &CLIENT_SWEEP {
                let x = clients as f64;
                // lint:allow(L3): run_grid returns one result per config
                let r = results.next().expect("one result per grid point");
                let t = r.tail_summary();
                p99.push((x, t.p99 as f64, 0.0));
                p999.push((x, t.p999 as f64, 0.0));
                tail_points.push(TailPoint {
                    x,
                    p50: t.p50,
                    p90: t.p90,
                    p99: t.p99,
                    p999: t.p999,
                    max: t.max,
                    count: t.count,
                });
            }
            series.push(Series {
                label: format!("{} p99", p.label()),
                points: p99,
            });
            series.push(Series {
                label: format!("{} p999", p.label()),
                points: p999,
            });
            tails.push(TailSeries {
                label: p.label().to_string(),
                points: tail_points,
            });
        }
        FigureData {
            id: self.id.into(),
            title: "Tail response time (p99/p999) vs number of clients, pr=0.6, MAN".into(),
            x_label: "number of clients".into(),
            y_label: "response time quantile".into(),
            series,
            tails,
        }
    }

    /// `fig_scale`: mean response time over a clients × shard-count
    /// grid of the sharded scale-out engine. Each cell is one PDES run
    /// (one LP per shard, link latency as the lookahead) that drains to
    /// quiescence and verifies its lock tables before reporting, so
    /// every plotted point is backed by a clean multi-home history. The
    /// per-LP statistics merge deterministically, making the whole
    /// figure bit-identical at any worker count.
    fn build_scale(&self, scale: Scale) -> FigureData {
        let (clients_axis, shard_axis): (&[u32], &[u32]) = match scale {
            Scale::Smoke => (&[64, 128, 256], &[1, 2, 4]),
            Scale::Default => (&[1_000, 10_000, 100_000], &[1, 4, 8]),
            Scale::Full => (&[100_000, 400_000, 1_000_000], &[4, 16, 64]),
        };
        let mut series = Vec::with_capacity(shard_axis.len());
        let mut tails = Vec::with_capacity(shard_axis.len());
        for &shards in shard_axis {
            let label = if shards == 1 {
                "1 shard".to_string()
            } else {
                format!("{shards} shards")
            };
            let mut points = Vec::with_capacity(clients_axis.len());
            let mut tail_points = Vec::with_capacity(clients_axis.len());
            for &clients in clients_axis {
                let mut cfg = scale_cell(clients, shards);
                if scale == Scale::Smoke {
                    cfg.warmup = 50;
                    cfg.measured = 200;
                }
                // lint:allow(L3): the registry grid is valid by construction
                let m = run_scale(&cfg).unwrap_or_else(|e| panic!("fig_scale cell: {e}"));
                let x = clients as f64;
                points.push((x, m.response.mean(), 0.0));
                let t = m.tail.summary();
                tail_points.push(TailPoint {
                    x,
                    p50: t.p50,
                    p90: t.p90,
                    p99: t.p99,
                    p999: t.p999,
                    max: t.max,
                    count: t.count,
                });
            }
            series.push(Series {
                label: label.clone(),
                points,
            });
            tails.push(TailSeries {
                label,
                points: tail_points,
            });
        }
        FigureData {
            id: self.id.into(),
            title: "Response time vs number of clients per shard count, pr=0.6, \
                    20% multi-home, sharded scale-out"
                .into(),
            x_label: "number of clients".into(),
            y_label: "response time".into(),
            series,
            tails,
        }
    }
}

/// One `fig_scale` grid cell: Table-1-flavored workload at pr = 0.6,
/// link latency 10 (the PDES lookahead), and — beyond one shard — 20%
/// multi-home transactions over mildly skewed (θ = 0.5) shard
/// popularity.
pub fn scale_cell(clients: u32, shards: u32) -> ScaleCfg {
    let mut cfg = ScaleCfg::cell(clients, shards, 10, 0.6);
    if shards > 1 {
        cfg.profile.shard_mix = Some(ShardMix {
            cross_frac: 0.2,
            shard_theta: 0.5,
        });
    }
    cfg
}

// ---- the headline claim ----

/// The headline claim: "20–25% improvement in the response time of the
/// g-2PL protocol over that of the s-2PL protocol" in the presence of
/// updates. Computed over the WAN latencies of the fig-3 configuration
/// (pr = 0.6).
pub fn headline(scale: Scale) -> String {
    // lint:allow(L3): fig3 and its series names are registry constants, present by construction
    let fig = figure("fig3").expect("registered").build(scale);
    // lint:allow(L3): fig3 and its series names are registry constants, present by construction
    let g = fig.series("g-2PL").expect("g-2PL series");
    // lint:allow(L3): fig3 and its series names are registry constants, present by construction
    let s = fig.series("s-2PL").expect("s-2PL series");
    let mut out = String::new();
    let _ = writeln!(out, "### Headline — response-time improvement, pr=0.6");
    let _ = writeln!(out, "| latency | s-2PL | g-2PL | improvement |");
    let _ = writeln!(out, "|---|---|---|---|");
    let mut improvements = Vec::new();
    for &(x, sy, _) in &s.points {
        // lint:allow(L3): both series are built over the same x sweep
        let gy = g.y_at(x).expect("same sweep");
        let imp = 100.0 * (sy - gy) / sy;
        improvements.push(imp);
        let _ = writeln!(out, "| {x} | {sy:.0} | {gy:.0} | {imp:.1}% |");
    }
    let min = improvements.iter().copied().fold(f64::INFINITY, f64::min);
    let max = improvements
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let _ = writeln!(
        out,
        "\nobserved improvement range: {min:.1}%–{max:.1}% (paper: 19.50%–26.92%)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_params_grow() {
        let (w1, m1, r1) = Scale::Smoke.params();
        let (w2, m2, r2) = Scale::Full.params();
        assert!(w1 < w2 && m1 < m2 && r1 < r2);
    }

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert!(t1.contains("| Number of hot data items | 25 |"));
        let t2 = table2();
        assert!(t2.contains("ss-LAN"));
        assert!(t2.contains("| Large Wide Area Network | l-WAN | 750 |"));
    }

    #[test]
    fn fig1_reports_improvement() {
        let s = fig1();
        assert!(s.contains("g-2PL timeline"));
        assert!(s.contains("% reduction"), "{s}");
    }

    #[test]
    fn registry_ids_are_unique_and_listed() {
        let mut ids: Vec<&str> = FIGURES.iter().map(|f| f.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate figure id in the registry");
        let listing = list_figures();
        for f in FIGURES {
            assert!(listing.contains(f.id), "{} missing from list", f.id);
            assert!(
                listing.contains(f.blurb),
                "{} blurb missing from list",
                f.id
            );
        }
    }

    #[test]
    fn registry_covers_the_paper_figures() {
        for n in 2..=15 {
            let id = format!("fig{n}");
            assert!(figure(&id).is_some(), "{id} not registered");
        }
        assert!(figure("fig_faults").is_some());
        assert!(figure("fig_faults_aborts").is_some());
        assert!(figure("fig_server_faults").is_some());
        assert!(figure("fig_shard_faults").is_some());
        assert!(figure("fig_tail").is_some());
        assert!(figure("fig99").is_none());
    }

    #[test]
    fn loss_sweep_starts_fault_free() {
        // The x = 0 point of fig_faults must take the pristine code path,
        // anchoring the curve to the reliable-network figures.
        assert_eq!(LOSS_SWEEP[0], 0.0);
        let plan = FaultPlan::message_loss(LOSS_SWEEP[0]);
        assert!(!plan.is_active(), "zero-loss plan must be inert");
    }

    #[test]
    fn outage_sweep_starts_fault_free() {
        // The x = 0 point of fig_server_faults must take the pristine
        // code path: no server log, no leases, no crash schedule.
        assert_eq!(OUTAGE_SWEEP[0], 0);
        let plan = FaultPlan::server_outage(OUTAGE_SWEEP[0]);
        assert!(!plan.is_active(), "zero-outage plan must be inert");
        let active = FaultPlan::server_outage(OUTAGE_SWEEP[1]);
        assert!(active.has_server_crashes());
        assert!(active.validate().is_ok());
    }

    #[test]
    fn shard_fault_sweep_targets_the_highest_shard() {
        // The x = 0 point of every fig_shard_faults series must take the
        // pristine code path, and every crash must land on the last
        // fault domain of its series.
        for &shards in &SHARD_FAULT_SHARDS {
            assert_eq!(24 % shards, 0, "the 24-item hot set must partition evenly");
            let inert = FaultPlan::shard_outage(shards - 1, OUTAGE_SWEEP[0]);
            assert!(!inert.is_active(), "zero-outage plan must be inert");
            let active = FaultPlan::shard_outage(shards - 1, OUTAGE_SWEEP[1]);
            assert!(active.has_server_crashes());
            assert!(active.validate().is_ok());
            assert!(active.server_crashes.iter().all(|w| w.shard == shards - 1));
        }
    }
}
