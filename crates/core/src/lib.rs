//! # g2pl-core
//!
//! Public API and experiment harness of the g-2PL reproduction
//! ("Network Latency Optimizations in Distributed Database Systems",
//! Banerjee & Chrysanthis, ICDE 1998).
//!
//! The workspace layering:
//!
//! ```text
//! g2pl-core        ← you are here: replicated runs, experiments, verification
//! g2pl-protocols   ← s-2PL / g-2PL / c-2PL engines
//! g2pl-obs         ← critical-path spans, phase attribution, JSONL export
//! g2pl-fwdlist     ← forward lists, collection windows, precedence DAG
//! g2pl-lockmgr     ← lock table, wait-for graphs, victim policies
//! g2pl-workload    ← Table-1 transaction generation
//! g2pl-netmodel    ← latency models, Table-2 environments
//! g2pl-stats       ← Welford moments, Student-t CIs, warm-up filters
//! g2pl-simcore     ← deterministic event calendar, ids, RNG streams
//! ```
//!
//! # Quickstart
//!
//! ```
//! use g2pl_core::prelude::*;
//!
//! // The paper's Table-1 system: 25 hot items, think 1–3, idle 2–10.
//! let mut cfg = EngineConfig::table1(
//!     ProtocolKind::g2pl_paper(),
//!     /* clients */ 10,
//!     /* latency */ 250,
//!     /* read probability */ 0.25,
//! );
//! cfg.warmup_txns = 50;
//! cfg.measured_txns = 500;
//!
//! // Independent replications with a 95% confidence interval.
//! let result = run_replicated(&cfg, 3);
//! let ci = result.response_ci();
//! assert!(ci.mean > 0.0);
//! ```

pub mod experiments;
pub mod extensions;
pub mod figure;
pub mod runner;
pub mod scorecard;
pub mod tracecheck;
pub mod verify;

pub use figure::{FigureData, Series};
pub use runner::{
    run_grid, run_replicated, set_grid_workers, set_trace_out, set_verify, take_perf, trace_out,
    verify_enabled, PerfTotals, ReplicatedResult,
};
pub use tracecheck::{check_trace, check_trace_with, TraceCheckOpts};
pub use verify::check_serializable;

/// Convenient re-exports of the types most callers need.
pub mod prelude {
    pub use crate::experiments::{self, Scale};
    pub use crate::extensions;
    pub use crate::figure::{FigureData, Series};
    pub use crate::runner::{
        run_grid, run_replicated, set_grid_workers, set_trace_out, set_verify, take_perf,
        trace_out, verify_enabled, PerfTotals, ReplicatedResult,
    };
    pub use crate::scorecard::{self, run_scorecard};
    pub use crate::tracecheck::{check_trace, check_trace_with, TraceCheckOpts};
    pub use crate::verify::check_serializable;
    pub use g2pl_netmodel::NetworkEnv;
    pub use g2pl_protocols::{
        run, run_scale, run_scale_with_workers, AbortEffect, EngineConfig, G2plOpts, ItemSpace,
        LatencyCfg, ProtocolKind, RunMetrics, ScaleCfg, ScaleMetrics, ShardMix, Topology,
        TxnProfile,
    };
    pub use g2pl_simcore::SimTime;
    pub use g2pl_stats::ConfidenceInterval;
}
