//! Temporal validation of recorded event traces.
//!
//! The engines can record a [`g2pl_protocols::TraceEvent`] stream
//! (`trace_events: true`). This module checks protocol-level temporal
//! properties over such a stream, independently of the engine logic that
//! produced it — a second pair of eyes on the message choreography:
//!
//! * **P1 (causality)** — every grant is preceded by a matching request
//!   from the same transaction for the same item;
//! * **P2 (completeness)** — a committed transaction received exactly as
//!   many grants as it issued requests, all before its commit;
//! * **P3 (uniqueness)** — no transaction commits twice, aborts twice, or
//!   both commits and aborts;
//! * **P4 (possession)** — a forward of an item is preceded by that
//!   transaction's grant or data arrival for the item;
//! * **P5 (strictness)** — a committed transaction forwards data only at
//!   or after its commit instant.

use g2pl_protocols::{TraceEvent, TraceKind};
use g2pl_simcore::{ItemId, SimTime, TxnId};
use std::collections::{HashMap, HashSet};

/// Validate a trace; returns a description of the first violation.
pub fn check_trace(events: &[TraceEvent]) -> Result<(), String> {
    let mut requested: HashMap<(TxnId, ItemId), u64> = HashMap::new();
    let mut granted: HashMap<(TxnId, ItemId), u64> = HashMap::new();
    let mut arrived: HashSet<(TxnId, ItemId)> = HashSet::new();
    let mut req_count: HashMap<TxnId, u64> = HashMap::new();
    let mut grant_count: HashMap<TxnId, u64> = HashMap::new();
    let mut committed: HashMap<TxnId, SimTime> = HashMap::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    let mut last_t = SimTime::ZERO;

    for e in events {
        if e.at < last_t {
            return Err(format!("trace times go backwards at {e}"));
        }
        last_t = e.at;
        match e.kind {
            TraceKind::RequestSent => {
                let (txn, item) = ids(e)?;
                *requested.entry((txn, item)).or_insert(0) += 1;
                *req_count.entry(txn).or_insert(0) += 1;
            }
            TraceKind::DataArrived => {
                let (txn, item) = ids(e)?;
                arrived.insert((txn, item));
            }
            TraceKind::Granted => {
                let (txn, item) = ids(e)?;
                let reqs = requested.get(&(txn, item)).copied().unwrap_or(0);
                let grants = granted.entry((txn, item)).or_insert(0);
                *grants += 1;
                if *grants > reqs {
                    return Err(format!("P1: grant without request at {e}"));
                }
                *grant_count.entry(txn).or_insert(0) += 1;
                if committed.contains_key(&txn) {
                    return Err(format!("P2: grant after commit at {e}"));
                }
            }
            TraceKind::Committed => {
                let txn = e.txn.ok_or_else(|| format!("commit without txn: {e}"))?;
                if committed.insert(txn, e.at).is_some() {
                    return Err(format!("P3: double commit at {e}"));
                }
                if aborted.contains(&txn) {
                    return Err(format!("P3: commit after abort at {e}"));
                }
                let r = req_count.get(&txn).copied().unwrap_or(0);
                let g = grant_count.get(&txn).copied().unwrap_or(0);
                if r != g {
                    return Err(format!(
                        "P2: {txn} committed with {g} grants for {r} requests"
                    ));
                }
            }
            TraceKind::Aborted => {
                let txn = e.txn.ok_or_else(|| format!("abort without txn: {e}"))?;
                if !aborted.insert(txn) {
                    return Err(format!("P3: double abort at {e}"));
                }
                if committed.contains_key(&txn) {
                    return Err(format!("P3: abort after commit at {e}"));
                }
            }
            TraceKind::Forwarded => {
                let (txn, item) = ids(e)?;
                let has_grant = granted.get(&(txn, item)).copied().unwrap_or(0) > 0;
                if !has_grant && !arrived.contains(&(txn, item)) {
                    return Err(format!("P4: forward without possession at {e}"));
                }
                if let Some(&c) = committed.get(&txn) {
                    if e.at < c {
                        return Err(format!("P5: committed data forwarded early at {e}"));
                    }
                }
            }
            TraceKind::CacheHit => {
                let (txn, item) = ids(e)?;
                arrived.insert((txn, item));
            }
            TraceKind::Dispatched | TraceKind::ReleasedAtServer => {}
        }
    }
    Ok(())
}

fn ids(e: &TraceEvent) -> Result<(TxnId, ItemId), String> {
    match (e.txn, e.item) {
        (Some(t), Some(i)) => Ok((t, i)),
        _ => Err(format!("event missing txn/item: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g2pl_protocols::{run, EngineConfig, ProtocolKind};
    use g2pl_simcore::SiteId;

    fn ev(at: u64, kind: TraceKind, txn: u32, item: Option<u32>) -> TraceEvent {
        TraceEvent {
            at: SimTime::new(at),
            kind,
            txn: Some(TxnId::new(txn)),
            item: item.map(ItemId::new),
            site: SiteId::Server,
        }
    }

    #[test]
    fn engine_traces_validate() {
        for protocol in [
            ProtocolKind::S2pl,
            ProtocolKind::g2pl_paper(),
            ProtocolKind::C2pl,
        ] {
            let mut cfg = EngineConfig::table1(protocol, 8, 50, 0.4);
            cfg.warmup_txns = 0;
            cfg.measured_txns = 300;
            cfg.trace_events = true;
            cfg.drain = true;
            let m = run(&cfg);
            let label = m.protocol;
            check_trace(m.trace.as_ref().expect("trace on"))
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn c2pl_cache_hits_grant_without_request() {
        // Cache hits are local grants with no request — P1 must accept
        // them... they do not occur: c-2PL grants cached reads without a
        // RequestSent event, so the checker would flag them. Verify the
        // engine emits consistent traces anyway (covered above) and that
        // a hand-built grant-without-request is rejected:
        let trace = vec![ev(1, TraceKind::Granted, 1, Some(0))];
        assert!(check_trace(&trace).unwrap_err().contains("P1"));
    }

    #[test]
    fn rejects_double_commit() {
        let trace = vec![
            ev(1, TraceKind::Committed, 1, None),
            ev(2, TraceKind::Committed, 1, None),
        ];
        assert!(check_trace(&trace).unwrap_err().contains("P3"));
    }

    #[test]
    fn rejects_commit_after_abort() {
        let trace = vec![
            ev(1, TraceKind::Aborted, 1, None),
            ev(2, TraceKind::Committed, 1, None),
        ];
        assert!(check_trace(&trace).unwrap_err().contains("P3"));
    }

    #[test]
    fn rejects_unbalanced_commit() {
        let trace = vec![
            ev(0, TraceKind::RequestSent, 1, Some(0)),
            ev(2, TraceKind::RequestSent, 1, Some(1)),
            ev(3, TraceKind::Granted, 1, Some(0)),
            ev(4, TraceKind::Committed, 1, None),
        ];
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("P2"), "{err}");
    }

    #[test]
    fn rejects_forward_without_possession() {
        let trace = vec![ev(1, TraceKind::Forwarded, 1, Some(0))];
        assert!(check_trace(&trace).unwrap_err().contains("P4"));
    }

    #[test]
    fn rejects_time_regression() {
        let trace = vec![
            ev(5, TraceKind::RequestSent, 1, Some(0)),
            ev(3, TraceKind::RequestSent, 2, Some(1)),
        ];
        assert!(check_trace(&trace).unwrap_err().contains("backwards"));
    }

    #[test]
    fn accepts_well_formed_sequence() {
        let trace = vec![
            ev(0, TraceKind::RequestSent, 1, Some(0)),
            ev(2, TraceKind::Granted, 1, Some(0)),
            ev(4, TraceKind::Committed, 1, None),
            ev(4, TraceKind::Forwarded, 1, Some(0)),
        ];
        assert!(check_trace(&trace).is_ok());
    }
}
