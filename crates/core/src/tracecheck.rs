//! Temporal validation of recorded event traces.
//!
//! The engines can record a [`g2pl_protocols::TraceEvent`] stream
//! (`trace_events: true`). This module checks protocol-level temporal
//! properties over such a stream, independently of the engine logic that
//! produced it — a second pair of eyes on the message choreography:
//!
//! * **P1 (causality)** — every grant is preceded by a matching request
//!   from the same transaction for the same item;
//! * **P2 (completeness)** — a committed transaction received exactly as
//!   many grants as it issued requests, all before its commit;
//! * **P3 (uniqueness)** — no transaction commits twice, aborts twice, or
//!   both commits and aborts;
//! * **P4 (possession)** — a forward of an item is preceded by that
//!   transaction's grant or data arrival for the item;
//! * **P5 (strictness)** — a committed transaction forwards data only at
//!   or after its commit instant;
//! * **P6 (order consistency)** — g-2PL forward lists order any two
//!   transactions the same way in every list both appear in (the §3.3
//!   consistent-reordering guarantee; checked when the run used
//!   `ordering.consistent`);
//! * **P7 (window discipline)** — a forward list is mutated only at its
//!   window close; the sole exception is the `expand_reads` reader join,
//!   and only when the run enabled it;
//! * **P8 (fault masking)** — fault-injection runs only: every injected
//!   fault is masked or resolved — each `LeaseExpired` is followed by a
//!   `Redispatch` (matched by item when the expiry names one, else by
//!   transaction), and every transaction that ever sent a request reaches
//!   `Committed` or `Aborted` — nobody waits forever. P8 assumes a
//!   *drained* run (the fault experiments and tests all drain); fault
//!   events in a no-fault trace are themselves violations.
//! * **P9 (server crash recovery)** — fault-injection runs only: server
//!   crash windows are well-formed (`ServerCrashed` alternates with
//!   `ServerRecovered` *per server site*, `Reregister` reports appear
//!   only inside an open window, and every window closes before the
//!   trace ends), a crashed shard is silent while down — no dispatch,
//!   window-close, forward-list or lease activity attributed to that
//!   site between its crash and its recovery, so no grant can stem from
//!   pre-crash forward-list state; surviving shards stay live — and no
//!   acknowledged commit is ever lost: a transaction that committed
//!   before a crash must never abort after it. Like P8, any
//!   server-crash event in a no-fault trace is itself a violation.
//! * **P10 (cross-shard atomicity)** — fault-injection runs only: the
//!   two-phase commitment of multi-home transactions is atomic. A
//!   `Prepared` vote is durably logged at most once per (transaction,
//!   shard) and only for still-undecided transactions; a `CommitApplied`
//!   appears only at a shard that voted, only after the coordinator's
//!   `Committed`, and never for an aborted transaction; and on a drained
//!   run every prepared shard of a committed transaction eventually
//!   applies it — no acknowledged multi-home commit leaves a shard
//!   behind, and no prepared vote of a decided transaction dangles. An
//!   aborted transaction may leave voted shards unapplied (presumed
//!   abort retires those votes with unlogged-to-the-trace release
//!   records). Like P8/P9, any 2PC event in a no-fault trace is itself
//!   a violation.

use g2pl_protocols::{EngineConfig, ProtocolKind, TraceEvent, TraceKind};
use g2pl_simcore::{ItemId, SimTime, SiteId, TxnId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// What the checker may assume about the run that produced a trace.
///
/// P6 and P7 are properties of specific g-2PL option sets — a FIFO-ordered
/// run legitimately produces mutually inconsistent forward lists, and an
/// `expand_reads` run legitimately extends dispatched lists. Derive the
/// options from the run's config with [`TraceCheckOpts::for_config`].
#[derive(Clone, Copy, Debug)]
pub struct TraceCheckOpts {
    /// The run used consistent (DAG-respecting) window-close ordering, so
    /// pairwise forward-list order must agree across items (P6).
    pub fl_consistent: bool,
    /// The run used the read-expansion variant, so `FlExtended` events
    /// are legal (P7 still requires them to target a dispatched list).
    pub expand_reads: bool,
    /// The run had an active fault plan: fault/recovery events are legal
    /// and P8 (fault masking + eventual completion) is enforced. When
    /// false, any `FaultInjected`/`LeaseExpired`/`Redispatch` event is a
    /// violation — a reliable network must never take recovery actions.
    pub faults: bool,
}

impl Default for TraceCheckOpts {
    /// The paper's evaluated g-2PL: consistent reordering, no read
    /// expansion, reliable network. This is what bare [`check_trace`]
    /// assumes.
    fn default() -> Self {
        TraceCheckOpts {
            fl_consistent: true,
            expand_reads: false,
            faults: false,
        }
    }
}

impl TraceCheckOpts {
    /// The assumptions appropriate for a run of `cfg`.
    pub fn for_config(cfg: &EngineConfig) -> Self {
        let faults = cfg.active_faults().is_some();
        match &cfg.protocol {
            ProtocolKind::G2pl(o) => TraceCheckOpts {
                fl_consistent: o.ordering.consistent,
                expand_reads: o.expand_reads,
                faults,
            },
            // s-2PL / c-2PL emit no forward-list events; strict settings
            // make any that do appear a violation.
            ProtocolKind::S2pl | ProtocolKind::C2pl => TraceCheckOpts {
                fl_consistent: true,
                expand_reads: false,
                faults,
            },
        }
    }
}

/// Validate a trace under the default (paper g-2PL) assumptions; returns
/// a description of the first violation.
pub fn check_trace(events: &[TraceEvent]) -> Result<(), String> {
    check_trace_with(events, TraceCheckOpts::default())
}

/// Validate a trace; returns a description of the first violation.
pub fn check_trace_with(events: &[TraceEvent], opts: TraceCheckOpts) -> Result<(), String> {
    let mut requested: HashMap<(TxnId, ItemId), u64> = HashMap::new();
    let mut granted: HashMap<(TxnId, ItemId), u64> = HashMap::new();
    let mut arrived: HashSet<(TxnId, ItemId)> = HashSet::new();
    // BTreeMap: P8 iterates this to report a stuck transaction, and the
    // one it names must not depend on hash order.
    let mut req_count: BTreeMap<TxnId, u64> = BTreeMap::new();
    let mut grant_count: HashMap<TxnId, u64> = HashMap::new();
    let mut committed: HashMap<TxnId, SimTime> = HashMap::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    // Earliest forward per transaction, for the strictness check at commit.
    let mut first_forward: HashMap<TxnId, SimTime> = HashMap::new();
    // The most recently dispatched forward list of each item (P6/P7).
    let mut current_fl: HashMap<ItemId, Vec<TxnId>> = HashMap::new();
    // Item whose dispatch group (WindowClosed + FlOrdered run) is open.
    let mut open_group: Option<ItemId> = None;
    // Global pairwise order fixed by dispatched lists: (a, b) = a before b.
    let mut fl_order: HashSet<(TxnId, TxnId)> = HashSet::new();
    // Lease expiries not yet resolved by a redispatch (P8b).
    let mut open_expiries: Vec<(Option<TxnId>, Option<ItemId>, SimTime)> = Vec::new();
    // Server sites currently inside a crash window, each tracked
    // independently (P9): in a sharded space only the crashed shard must
    // fall silent — the surviving shards keep serving.
    let mut down_servers: HashSet<SiteId> = HashSet::new();
    // Whether any server crash has occurred yet (P9 lost-commit check).
    let mut server_crashed_once = false;
    // Outstanding prepared votes per transaction: shards that logged a
    // vote and have not yet applied the commit (P10). BTreeMap so the
    // end-of-trace report names a deterministic transaction.
    let mut prepared: BTreeMap<TxnId, HashSet<SiteId>> = BTreeMap::new();
    let mut last_t = SimTime::ZERO;

    for e in events {
        if e.at < last_t {
            return Err(format!("trace times go backwards at {e}"));
        }
        last_t = e.at;
        // A dispatch group is the WindowClosed event plus the FlOrdered
        // run that immediately follows it; any other event ends it.
        if !matches!(e.kind, TraceKind::FlOrdered) {
            open_group = None;
        }
        // A crashed server site is silent from crash to recovery: any
        // decision it records inside the window would have to stem from
        // pre-crash volatile state, which died with it. Events attributed
        // to a *live* shard are legal while another shard is down.
        // (`Dispatched` is absent from this set: committing clients keep
        // forwarding segments client-to-client while a server is down,
        // and those hops record `Dispatched` for each receiver.)
        if down_servers.contains(&e.site)
            && matches!(
                e.kind,
                TraceKind::WindowClosed
                    | TraceKind::FlOrdered
                    | TraceKind::FlExtended
                    | TraceKind::ReleasedAtServer
                    | TraceKind::LeaseExpired
                    | TraceKind::Redispatch
                    | TraceKind::Prepared
            )
        {
            // `CommitApplied` is deliberately absent from this set: a
            // recovering shard resolves in-doubt votes (and records the
            // apply) *inside* its crash window, before `ServerRecovered`.
            return Err(format!("P9: server activity inside a crash window at {e}"));
        }
        match e.kind {
            TraceKind::RequestSent => {
                let (txn, item) = ids(e)?;
                *requested.entry((txn, item)).or_insert(0) += 1;
                *req_count.entry(txn).or_insert(0) += 1;
            }
            TraceKind::DataArrived => {
                let (txn, item) = ids(e)?;
                arrived.insert((txn, item));
            }
            TraceKind::Granted => {
                let (txn, item) = ids(e)?;
                let reqs = requested.get(&(txn, item)).copied().unwrap_or(0);
                let grants = granted.entry((txn, item)).or_insert(0);
                *grants += 1;
                if *grants > reqs {
                    return Err(format!("P1: grant without request at {e}"));
                }
                *grant_count.entry(txn).or_insert(0) += 1;
                if committed.contains_key(&txn) {
                    return Err(format!("P2: grant after commit at {e}"));
                }
            }
            TraceKind::Committed => {
                let txn = e.txn.ok_or_else(|| format!("commit without txn: {e}"))?;
                if committed.insert(txn, e.at).is_some() {
                    return Err(format!("P3: double commit at {e}"));
                }
                if aborted.contains(&txn) {
                    return Err(format!("P3: commit after abort at {e}"));
                }
                let r = req_count.get(&txn).copied().unwrap_or(0);
                let g = grant_count.get(&txn).copied().unwrap_or(0);
                if r != g {
                    return Err(format!(
                        "P2: {txn} committed with {g} grants for {r} requests"
                    ));
                }
                if let Some(&f) = first_forward.get(&txn) {
                    if f < e.at {
                        return Err(format!(
                            "P5: {txn} forwarded data at t={} before committing at {e}",
                            f.units()
                        ));
                    }
                }
            }
            TraceKind::Aborted => {
                let txn = e.txn.ok_or_else(|| format!("abort without txn: {e}"))?;
                if !aborted.insert(txn) {
                    return Err(format!("P3: double abort at {e}"));
                }
                if committed.contains_key(&txn) {
                    // Across a server crash this is the recovery failure
                    // P9 exists to catch: an acknowledged commit undone.
                    if server_crashed_once {
                        return Err(format!(
                            "P9: acknowledged commit of {txn} lost across a server crash at {e}"
                        ));
                    }
                    return Err(format!("P3: abort after commit at {e}"));
                }
            }
            TraceKind::Forwarded => {
                let (txn, item) = ids(e)?;
                let has_grant = granted.get(&(txn, item)).copied().unwrap_or(0) > 0;
                if !has_grant && !arrived.contains(&(txn, item)) {
                    return Err(format!("P4: forward without possession at {e}"));
                }
                if let Some(&c) = committed.get(&txn) {
                    if e.at < c {
                        return Err(format!("P5: committed data forwarded early at {e}"));
                    }
                }
                first_forward.entry(txn).or_insert(e.at);
            }
            TraceKind::CacheHit => {
                let (txn, item) = ids(e)?;
                arrived.insert((txn, item));
            }
            TraceKind::WindowClosed => {
                let item = e
                    .item
                    .ok_or_else(|| format!("window close without item: {e}"))?;
                open_group = Some(item);
                current_fl.insert(item, Vec::new());
            }
            TraceKind::FlOrdered => {
                let (txn, item) = ids(e)?;
                if open_group != Some(item) {
                    return Err(format!(
                        "P7: forward-list entry outside its window close at {e}"
                    ));
                }
                // lint:allow(L3): WindowClosed inserted the list above
                let fl = current_fl.get_mut(&item).expect("open group has a list");
                if fl.contains(&txn) {
                    return Err(format!("P6: {txn} appears twice in the list at {e}"));
                }
                if opts.fl_consistent {
                    for &prior in fl.iter() {
                        if fl_order.contains(&(txn, prior)) {
                            return Err(format!(
                                "P6: {prior} ordered after {txn} at {e}, but an \
                                 earlier list fixed the opposite order"
                            ));
                        }
                        fl_order.insert((prior, txn));
                    }
                }
                fl.push(txn);
            }
            TraceKind::FlExtended => {
                let (txn, item) = ids(e)?;
                if !opts.expand_reads {
                    return Err(format!(
                        "P7: forward list mutated after window close at {e}"
                    ));
                }
                let Some(fl) = current_fl.get_mut(&item) else {
                    return Err(format!(
                        "P7: reader joined an item with no dispatched list at {e}"
                    ));
                };
                if fl.contains(&txn) {
                    return Err(format!("P6: {txn} appears twice in the list at {e}"));
                }
                // Joined readers share the final reader group, so their
                // position fixes no cross-item precedence — append without
                // recording P6 pairs.
                fl.push(txn);
            }
            TraceKind::FaultInjected => {
                if !opts.faults {
                    return Err(format!("P8: fault injected on a reliable network at {e}"));
                }
            }
            TraceKind::LeaseExpired => {
                if !opts.faults {
                    return Err(format!("P8: lease expired on a reliable network at {e}"));
                }
                open_expiries.push((e.txn, e.item, e.at));
            }
            TraceKind::Redispatch => {
                if !opts.faults {
                    return Err(format!("P8: redispatch on a reliable network at {e}"));
                }
                // Resolve the earliest matching expiry: by item when the
                // expiry names one (g-2PL per-checkout leases), else by
                // victim transaction (s-2PL/c-2PL per-txn leases).
                let matched = open_expiries.iter().position(|&(txn, item, _)| {
                    if item.is_some() {
                        item == e.item
                    } else {
                        txn == e.txn
                    }
                });
                match matched {
                    Some(i) => {
                        open_expiries.remove(i);
                    }
                    None => {
                        return Err(format!("P8: redispatch without a lease expiry at {e}"));
                    }
                }
            }
            TraceKind::ServerCrashed => {
                if !opts.faults {
                    return Err(format!("P9: server crash on a reliable network at {e}"));
                }
                if !down_servers.insert(e.site) {
                    return Err(format!("P9: server crashed while already down at {e}"));
                }
                server_crashed_once = true;
            }
            TraceKind::ServerRecovered => {
                if !opts.faults {
                    return Err(format!("P9: server recovery on a reliable network at {e}"));
                }
                if !down_servers.remove(&e.site) {
                    return Err(format!("P9: server recovered without a crash at {e}"));
                }
            }
            TraceKind::Reregister => {
                if !opts.faults {
                    return Err(format!("P9: re-registration on a reliable network at {e}"));
                }
                if down_servers.is_empty() {
                    return Err(format!(
                        "P9: re-registration outside a recovery window at {e}"
                    ));
                }
            }
            TraceKind::Prepared => {
                if !opts.faults {
                    return Err(format!("P10: prepare vote on a reliable network at {e}"));
                }
                let txn = e.txn.ok_or_else(|| format!("prepare without txn: {e}"))?;
                if committed.contains_key(&txn) || aborted.contains(&txn) {
                    return Err(format!(
                        "P10: prepare vote for a decided transaction at {e}"
                    ));
                }
                if !prepared.entry(txn).or_default().insert(e.site) {
                    return Err(format!("P10: shard voted twice at {e}"));
                }
            }
            TraceKind::CommitApplied => {
                if !opts.faults {
                    return Err(format!("P10: commit applied on a reliable network at {e}"));
                }
                let txn = e.txn.ok_or_else(|| format!("apply without txn: {e}"))?;
                if aborted.contains(&txn) {
                    return Err(format!(
                        "P10: commit applied for an aborted transaction at {e}"
                    ));
                }
                if !committed.contains_key(&txn) {
                    return Err(format!(
                        "P10: commit applied before the coordinator decided at {e}"
                    ));
                }
                if !prepared.get_mut(&txn).is_some_and(|s| s.remove(&e.site)) {
                    return Err(format!(
                        "P10: commit applied at a shard that never prepared at {e}"
                    ));
                }
            }
            TraceKind::Dispatched | TraceKind::ReleasedAtServer => {}
        }
    }
    if opts.faults {
        if !down_servers.is_empty() {
            return Err("P9: a server crashed but never recovered".to_string());
        }
        if let Some((txn, item, at)) = open_expiries.first() {
            return Err(format!(
                "P8: lease expiry at t={} (txn {txn:?}, item {item:?}) was never \
                 followed by a redispatch",
                at.units()
            ));
        }
        // Eventual completion: nobody who asked for anything waits
        // forever (assumes a drained run — see the module docs).
        for txn in req_count.keys() {
            if !committed.contains_key(txn) && !aborted.contains(txn) {
                return Err(format!(
                    "P8: {txn} sent requests but neither committed nor aborted"
                ));
            }
        }
        // Atomic commitment: a committed multi-home transaction must not
        // leave any voted shard unapplied; an aborted one may (its votes
        // are retired by release records the trace does not carry), but
        // an undecided one with outstanding votes blocks those shards
        // forever.
        for (txn, shards) in &prepared {
            if shards.is_empty() {
                continue;
            }
            if committed.contains_key(txn) {
                return Err(format!(
                    "P10: {txn} committed but a prepared shard never applied it"
                ));
            }
            if !aborted.contains(txn) {
                return Err(format!("P10: prepared vote of {txn} was never resolved"));
            }
        }
    }
    Ok(())
}

fn ids(e: &TraceEvent) -> Result<(TxnId, ItemId), String> {
    match (e.txn, e.item) {
        (Some(t), Some(i)) => Ok((t, i)),
        _ => Err(format!("event missing txn/item: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g2pl_protocols::{run, EngineConfig, ProtocolKind};
    use g2pl_simcore::SiteId;

    fn ev(at: u64, kind: TraceKind, txn: u32, item: Option<u32>) -> TraceEvent {
        TraceEvent {
            at: SimTime::new(at),
            kind,
            txn: Some(TxnId::new(txn)),
            item: item.map(ItemId::new),
            site: SiteId::SERVER0,
        }
    }

    fn traced_run(protocol: ProtocolKind) -> Vec<TraceEvent> {
        let mut cfg = EngineConfig::table1(protocol, 8, 50, 0.4);
        cfg.warmup_txns = 0;
        cfg.measured_txns = 300;
        cfg.trace_events = true;
        cfg.drain = true;
        run(&cfg).expect("valid config").trace.expect("trace on")
    }

    #[test]
    fn engine_traces_validate() {
        for protocol in [
            ProtocolKind::S2pl,
            ProtocolKind::g2pl_paper(),
            ProtocolKind::C2pl,
        ] {
            let label = format!("{protocol:?}");
            check_trace(&traced_run(protocol)).unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn g2pl_traces_contain_forward_list_events() {
        // P6/P7 must not be vacuous: the g-2PL engine really emits the
        // window-close choreography.
        let trace = traced_run(ProtocolKind::g2pl_paper());
        let closes = trace
            .iter()
            .filter(|e| e.kind == TraceKind::WindowClosed)
            .count();
        let entries = trace
            .iter()
            .filter(|e| e.kind == TraceKind::FlOrdered)
            .count();
        assert!(closes > 0, "no WindowClosed events recorded");
        assert!(entries >= closes, "every dispatch lists at least one entry");
    }

    #[test]
    fn fifo_engine_traces_validate_without_consistency() {
        // The FIFO ablation produces mutually inconsistent lists by
        // design; the checker must accept them under the right options
        // (and the structural P7 checks still apply).
        let opts = g2pl_protocols::G2plOpts {
            ordering: g2pl_fwdlist::OrderingRule::fifo(),
            ..g2pl_protocols::G2plOpts::default()
        };
        let trace = traced_run(ProtocolKind::G2pl(opts));
        let check_opts = TraceCheckOpts {
            fl_consistent: false,
            expand_reads: false,
            faults: false,
        };
        check_trace_with(&trace, check_opts).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn expanded_read_engine_traces_validate() {
        let opts = g2pl_protocols::G2plOpts {
            expand_reads: true,
            ..g2pl_protocols::G2plOpts::default()
        };
        let kind = ProtocolKind::G2pl(opts);
        let mut cfg = EngineConfig::table1(kind, 8, 50, 0.9);
        cfg.warmup_txns = 0;
        cfg.measured_txns = 300;
        cfg.trace_events = true;
        cfg.drain = true;
        let trace = run(&cfg).expect("valid config").trace.expect("trace on");
        let check_opts = TraceCheckOpts::for_config(&cfg);
        assert!(check_opts.expand_reads, "opts derive from the config");
        check_trace_with(&trace, check_opts).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn c2pl_cache_hits_grant_without_request() {
        // Cache hits are local grants with no request — P1 must accept
        // them... they do not occur: c-2PL grants cached reads without a
        // RequestSent event, so the checker would flag them. Verify the
        // engine emits consistent traces anyway (covered above) and that
        // a hand-built grant-without-request is rejected:
        let trace = vec![ev(1, TraceKind::Granted, 1, Some(0))];
        assert!(check_trace(&trace).unwrap_err().contains("P1"));
    }

    #[test]
    fn rejects_double_commit() {
        let trace = vec![
            ev(1, TraceKind::Committed, 1, None),
            ev(2, TraceKind::Committed, 1, None),
        ];
        assert!(check_trace(&trace).unwrap_err().contains("P3"));
    }

    #[test]
    fn rejects_commit_after_abort() {
        let trace = vec![
            ev(1, TraceKind::Aborted, 1, None),
            ev(2, TraceKind::Committed, 1, None),
        ];
        assert!(check_trace(&trace).unwrap_err().contains("P3"));
    }

    #[test]
    fn rejects_unbalanced_commit() {
        let trace = vec![
            ev(0, TraceKind::RequestSent, 1, Some(0)),
            ev(2, TraceKind::RequestSent, 1, Some(1)),
            ev(3, TraceKind::Granted, 1, Some(0)),
            ev(4, TraceKind::Committed, 1, None),
        ];
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("P2"), "{err}");
    }

    #[test]
    fn rejects_forward_without_possession() {
        let trace = vec![ev(1, TraceKind::Forwarded, 1, Some(0))];
        assert!(check_trace(&trace).unwrap_err().contains("P4"));
    }

    #[test]
    fn rejects_time_regression() {
        let trace = vec![
            ev(5, TraceKind::RequestSent, 1, Some(0)),
            ev(3, TraceKind::RequestSent, 2, Some(1)),
        ];
        assert!(check_trace(&trace).unwrap_err().contains("backwards"));
    }

    #[test]
    fn accepts_well_formed_sequence() {
        let trace = vec![
            ev(0, TraceKind::RequestSent, 1, Some(0)),
            ev(2, TraceKind::Granted, 1, Some(0)),
            ev(4, TraceKind::Committed, 1, None),
            ev(4, TraceKind::Forwarded, 1, Some(0)),
        ];
        assert!(check_trace(&trace).is_ok());
    }

    /// A `WindowClosed` event carrying no txn, only an item.
    fn close(at: u64, item: u32) -> TraceEvent {
        TraceEvent {
            at: SimTime::new(at),
            kind: TraceKind::WindowClosed,
            txn: None,
            item: Some(ItemId::new(item)),
            site: SiteId::SERVER0,
        }
    }

    #[test]
    fn rejects_forward_before_own_commit() {
        // Strictness (P5): the txn forwards its data at t=3 and only
        // commits at t=5 — a pre-commit leak of committed state.
        let trace = vec![
            ev(0, TraceKind::RequestSent, 1, Some(0)),
            ev(1, TraceKind::Granted, 1, Some(0)),
            ev(3, TraceKind::Forwarded, 1, Some(0)),
            ev(5, TraceKind::Committed, 1, None),
        ];
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("P5"), "{err}");
    }

    #[test]
    fn rejects_inconsistent_forward_list_orders() {
        // One list fixes T1 < T2 on item 0; a later list on item 1
        // reverses the pair — exactly the §3.3 inconsistency that causes
        // cross-item deadlocks.
        let trace = vec![
            close(0, 0),
            ev(0, TraceKind::FlOrdered, 1, Some(0)),
            ev(0, TraceKind::FlOrdered, 2, Some(0)),
            close(4, 1),
            ev(4, TraceKind::FlOrdered, 2, Some(1)),
            ev(4, TraceKind::FlOrdered, 1, Some(1)),
        ];
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("P6"), "{err}");
        // The FIFO ablation is allowed to do this.
        let lax = TraceCheckOpts {
            fl_consistent: false,
            expand_reads: false,
            faults: false,
        };
        assert!(check_trace_with(&trace, lax).is_ok());
    }

    #[test]
    fn rejects_duplicate_forward_list_entry() {
        let trace = vec![
            close(0, 0),
            ev(0, TraceKind::FlOrdered, 1, Some(0)),
            ev(0, TraceKind::FlOrdered, 1, Some(0)),
        ];
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("P6"), "{err}");
    }

    #[test]
    fn rejects_list_entry_outside_window_close() {
        // An FlOrdered entry with no preceding WindowClosed for its item
        // is a forward list mutated outside its window close.
        let trace = vec![ev(1, TraceKind::FlOrdered, 1, Some(0))];
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("P7"), "{err}");
        // ... including when a *different* item's group is open:
        let trace = vec![close(0, 1), ev(0, TraceKind::FlOrdered, 1, Some(0))];
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("P7"), "{err}");
    }

    #[test]
    fn rejects_extension_without_expand_reads() {
        let trace = vec![
            close(0, 0),
            ev(0, TraceKind::FlOrdered, 1, Some(0)),
            ev(3, TraceKind::FlExtended, 2, Some(0)),
        ];
        let err = check_trace(&trace).unwrap_err();
        assert!(err.contains("P7"), "{err}");
        // Legal when the run used the read-expansion variant.
        let lax = TraceCheckOpts {
            fl_consistent: true,
            expand_reads: true,
            faults: false,
        };
        assert!(check_trace_with(&trace, lax).is_ok());
    }

    #[test]
    fn rejects_extension_of_undispatched_item() {
        let lax = TraceCheckOpts {
            fl_consistent: true,
            expand_reads: true,
            faults: false,
        };
        let trace = vec![ev(1, TraceKind::FlExtended, 2, Some(0))];
        let err = check_trace_with(&trace, lax).unwrap_err();
        assert!(err.contains("P7"), "{err}");
    }

    fn faulty() -> TraceCheckOpts {
        TraceCheckOpts {
            faults: true,
            ..TraceCheckOpts::default()
        }
    }

    #[test]
    fn rejects_fault_events_on_reliable_network() {
        for kind in [
            TraceKind::FaultInjected,
            TraceKind::LeaseExpired,
            TraceKind::Redispatch,
        ] {
            let trace = vec![ev(1, kind, 1, None)];
            let err = check_trace(&trace).unwrap_err();
            assert!(err.contains("P8"), "{kind:?}: {err}");
        }
    }

    #[test]
    fn rejects_unresolved_lease_expiry() {
        // An expiry with no later redispatch = a checkout lost forever.
        let trace = vec![ev(1, TraceKind::LeaseExpired, 1, Some(3))];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("P8"), "{err}");
        // Resolving it by item makes the trace legal.
        let trace = vec![
            ev(1, TraceKind::LeaseExpired, 1, Some(3)),
            ev(1, TraceKind::Redispatch, 1, Some(3)),
        ];
        check_trace_with(&trace, faulty()).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn rejects_redispatch_without_expiry() {
        let trace = vec![ev(1, TraceKind::Redispatch, 1, Some(3))];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("P8"), "{err}");
    }

    #[test]
    fn rejects_eternally_waiting_txn_under_faults() {
        // T1 asked for item 0 and was never heard from again.
        let trace = vec![ev(0, TraceKind::RequestSent, 1, Some(0))];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("P8"), "{err}");
        // A reliable-network checker does not demand completion.
        assert!(check_trace(&trace).is_ok());
        // Abort resolves the wait.
        let trace = vec![
            ev(0, TraceKind::RequestSent, 1, Some(0)),
            ev(5, TraceKind::Aborted, 1, None),
        ];
        check_trace_with(&trace, faulty()).unwrap_or_else(|e| panic!("{e}"));
    }

    /// A server-side event carrying neither txn nor item.
    fn srv(at: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::new(at),
            kind,
            txn: None,
            item: None,
            site: SiteId::SERVER0,
        }
    }

    #[test]
    fn rejects_server_crash_events_on_reliable_network() {
        for kind in [
            TraceKind::ServerCrashed,
            TraceKind::ServerRecovered,
            TraceKind::Reregister,
        ] {
            let err = check_trace(&[srv(1, kind)]).unwrap_err();
            assert!(err.contains("P9"), "{kind:?}: {err}");
        }
    }

    #[test]
    fn rejects_lost_acknowledged_commit() {
        // T1's commit was acknowledged before the crash; aborting it
        // afterwards means recovery dropped durable state — the exact
        // failure P9 exists to catch, reported as P9, not P3.
        let trace = vec![
            ev(1, TraceKind::Committed, 1, None),
            srv(2, TraceKind::ServerCrashed),
            srv(4, TraceKind::ServerRecovered),
            ev(5, TraceKind::Aborted, 1, None),
        ];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("P9"), "{err}");
        assert!(err.contains("lost"), "{err}");
    }

    #[test]
    fn rejects_server_activity_inside_crash_window() {
        // A window close between crash and recovery could only come from
        // pre-crash volatile state — a grant from a stale forward list.
        for kind in [
            TraceKind::WindowClosed,
            TraceKind::FlOrdered,
            TraceKind::ReleasedAtServer,
            TraceKind::LeaseExpired,
            TraceKind::Redispatch,
        ] {
            let trace = vec![
                srv(1, TraceKind::ServerCrashed),
                ev(2, kind, 7, Some(0)),
                srv(3, TraceKind::ServerRecovered),
            ];
            let err = check_trace_with(&trace, faulty()).unwrap_err();
            assert!(err.contains("P9"), "{kind:?}: {err}");
        }
    }

    #[test]
    fn rejects_malformed_crash_windows() {
        // Recovery without a crash.
        let err = check_trace_with(&[srv(1, TraceKind::ServerRecovered)], faulty()).unwrap_err();
        assert!(err.contains("P9"), "{err}");
        // Double crash without an intervening recovery.
        let trace = vec![
            srv(1, TraceKind::ServerCrashed),
            srv(2, TraceKind::ServerCrashed),
        ];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("P9"), "{err}");
        // A crash the trace never recovers from.
        let err = check_trace_with(&[srv(1, TraceKind::ServerCrashed)], faulty()).unwrap_err();
        assert!(err.contains("never recovered"), "{err}");
        // Re-registration with no recovery in progress.
        let trace = vec![
            srv(1, TraceKind::ServerCrashed),
            srv(2, TraceKind::ServerRecovered),
            ev(3, TraceKind::Reregister, 1, None),
        ];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("P9"), "{err}");
    }

    #[test]
    fn accepts_well_formed_crash_window() {
        // Reports inside the window, server activity only after recovery.
        let trace = vec![
            srv(1, TraceKind::ServerCrashed),
            ev(2, TraceKind::Reregister, 1, None),
            srv(3, TraceKind::ServerRecovered),
            close(3, 0),
            ev(3, TraceKind::FlOrdered, 1, Some(0)),
        ];
        check_trace_with(&trace, faulty()).unwrap_or_else(|e| panic!("{e}"));
    }

    /// A 2PC event at a given server site.
    fn shard_ev(at: u64, kind: TraceKind, txn: u32, shard: u32) -> TraceEvent {
        TraceEvent {
            at: SimTime::new(at),
            kind,
            txn: Some(TxnId::new(txn)),
            item: None,
            site: SiteId::server(shard),
        }
    }

    #[test]
    fn rejects_p10_events_on_reliable_network() {
        for kind in [TraceKind::Prepared, TraceKind::CommitApplied] {
            let err = check_trace(&[shard_ev(1, kind, 1, 0)]).unwrap_err();
            assert!(err.contains("P10"), "{kind:?}: {err}");
        }
    }

    #[test]
    fn rejects_apply_without_prepare() {
        // Shard 1 voted; shard 2 applied without ever voting.
        let trace = vec![
            shard_ev(1, TraceKind::Prepared, 1, 1),
            ev(2, TraceKind::Committed, 1, None),
            shard_ev(3, TraceKind::CommitApplied, 1, 2),
        ];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("P10"), "{err}");
        assert!(err.contains("never prepared"), "{err}");
    }

    #[test]
    fn rejects_apply_for_undecided_or_aborted_txn() {
        // Applied before the coordinator decided.
        let trace = vec![
            shard_ev(1, TraceKind::Prepared, 1, 1),
            shard_ev(2, TraceKind::CommitApplied, 1, 1),
        ];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("P10"), "{err}");
        // Applied for a transaction that aborted.
        let trace = vec![
            shard_ev(1, TraceKind::Prepared, 1, 1),
            ev(2, TraceKind::Aborted, 1, None),
            shard_ev(3, TraceKind::CommitApplied, 1, 1),
        ];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("aborted"), "{err}");
    }

    #[test]
    fn rejects_double_vote_and_double_apply() {
        let trace = vec![
            shard_ev(1, TraceKind::Prepared, 1, 1),
            shard_ev(2, TraceKind::Prepared, 1, 1),
        ];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("voted twice"), "{err}");
        // A second apply at the same shard has no outstanding vote left.
        let trace = vec![
            shard_ev(1, TraceKind::Prepared, 1, 1),
            ev(2, TraceKind::Committed, 1, None),
            shard_ev(3, TraceKind::CommitApplied, 1, 1),
            shard_ev(4, TraceKind::CommitApplied, 1, 1),
        ];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("P10"), "{err}");
    }

    #[test]
    fn rejects_committed_txn_with_unapplied_vote() {
        // Both shards voted, the coordinator committed, but shard 2
        // never applied the decision — a drained run must not end here.
        let trace = vec![
            shard_ev(1, TraceKind::Prepared, 1, 1),
            shard_ev(1, TraceKind::Prepared, 1, 2),
            ev(2, TraceKind::Committed, 1, None),
            shard_ev(3, TraceKind::CommitApplied, 1, 1),
        ];
        let err = check_trace_with(&trace, faulty()).unwrap_err();
        assert!(err.contains("P10"), "{err}");
        assert!(err.contains("never applied"), "{err}");
    }

    #[test]
    fn accepts_atomic_two_phase_commitment() {
        // The happy path: vote everywhere, decide, apply everywhere —
        // and an aborted sibling may leave its vote to presumed abort.
        let trace = vec![
            shard_ev(1, TraceKind::Prepared, 1, 1),
            shard_ev(1, TraceKind::Prepared, 1, 2),
            ev(2, TraceKind::Committed, 1, None),
            shard_ev(3, TraceKind::CommitApplied, 1, 1),
            shard_ev(3, TraceKind::CommitApplied, 1, 2),
            shard_ev(4, TraceKind::Prepared, 2, 1),
            ev(5, TraceKind::Aborted, 2, None),
        ];
        check_trace_with(&trace, faulty()).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn sharded_crash_engine_traces_validate_under_p10() {
        use g2pl_faults::{FaultPlan, ServerCrashWindow};
        use g2pl_protocols::{ItemSpace, ShardMix};
        // Crash a non-zero shard mid-run with 30% multi-home commits in
        // flight: every engine must drain with P1-P10 intact, and the
        // trace must actually exercise the 2PC events (non-vacuous).
        for protocol in [
            ProtocolKind::S2pl,
            ProtocolKind::g2pl_paper(),
            ProtocolKind::C2pl,
        ] {
            let label = format!("{protocol:?}");
            let mut cfg = EngineConfig::table1(protocol, 8, 50, 0.4);
            cfg.warmup_txns = 0;
            cfg.measured_txns = 250;
            cfg.trace_events = true;
            cfg.drain = true;
            cfg.items = ItemSpace::sharded(4, 7);
            cfg.profile.shard_mix = Some(ShardMix {
                cross_frac: 0.3,
                shard_theta: 0.5,
            });
            cfg.faults = Some(FaultPlan {
                server_crashes: vec![ServerCrashWindow {
                    shard: 2,
                    at: 5_000,
                    down_for: 1_200,
                    jitter: 0,
                }],
                ..Default::default()
            });
            let m = run(&cfg).expect("valid config");
            assert_eq!(m.faults.server_crashes, 1, "{label}: crash executed");
            let trace = m.trace.expect("trace on");
            let prepares = trace
                .iter()
                .filter(|e| e.kind == TraceKind::Prepared)
                .count();
            assert!(prepares > 0, "{label}: no multi-home votes recorded");
            assert!(
                trace
                    .iter()
                    .any(|e| e.kind == TraceKind::ServerCrashed && e.site == SiteId::server(2)),
                "{label}: crash not attributed to shard 2"
            );
            check_trace_with(&trace, TraceCheckOpts::for_config(&cfg))
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn server_crash_engine_traces_validate_under_p9() {
        use g2pl_faults::{FaultPlan, ServerCrashWindow};
        for protocol in [
            ProtocolKind::S2pl,
            ProtocolKind::g2pl_paper(),
            ProtocolKind::C2pl,
        ] {
            let label = format!("{protocol:?}");
            let mut cfg = EngineConfig::table1(protocol, 8, 50, 0.4);
            cfg.warmup_txns = 0;
            cfg.measured_txns = 250;
            cfg.trace_events = true;
            cfg.drain = true;
            cfg.faults = Some(FaultPlan {
                server_crashes: vec![
                    ServerCrashWindow::fixed(4_000, 1_500),
                    ServerCrashWindow::fixed(15_000, 800),
                ],
                ..Default::default()
            });
            let m = run(&cfg).expect("valid config");
            assert_eq!(m.faults.server_crashes, 2, "{label}: crashes executed");
            let opts = TraceCheckOpts::for_config(&cfg);
            check_trace_with(&m.trace.expect("trace on"), opts)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn lossy_engine_traces_validate_under_p8() {
        use g2pl_faults::FaultPlan;
        for protocol in [
            ProtocolKind::S2pl,
            ProtocolKind::g2pl_paper(),
            ProtocolKind::C2pl,
        ] {
            let label = format!("{protocol:?}");
            let mut cfg = EngineConfig::table1(protocol, 8, 50, 0.4);
            cfg.warmup_txns = 0;
            cfg.measured_txns = 250;
            cfg.trace_events = true;
            cfg.drain = true;
            cfg.faults = Some(FaultPlan::message_loss(0.05));
            let m = run(&cfg).expect("valid config");
            assert!(m.faults.injected.total() > 0, "{label}: no faults injected");
            let opts = TraceCheckOpts::for_config(&cfg);
            assert!(opts.faults, "opts derive the fault plan from the config");
            check_trace_with(&m.trace.expect("trace on"), opts)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }
}
