//! Figure/table data containers and text rendering.
//!
//! Every experiment produces a [`FigureData`]: named series of
//! `(x, y, ci)` points, plus axis labels — enough to regenerate any plot
//! of the paper as a markdown table, a CSV file, or a quick ASCII chart.

use serde::Serialize;
use std::fmt::Write as _;

/// One plotted series (e.g. "g-2PL" or "s-2PL").
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y, ci_half_width)` triples in x order.
    pub points: Vec<(f64, f64, f64)>,
}

/// One point of a tail-quantile series: the pooled response-time
/// quantiles at one sweep position (ticks, from the merged sketch).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct TailPoint {
    /// Sweep x value.
    pub x: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
    /// Measured commits pooled into the sketch at this point.
    pub count: u64,
}

/// Per-series tail-quantile columns riding alongside the mean±CI series
/// of a figure. Rendered into a *separate* `<id>_tail.csv` so existing
/// figure CSVs stay byte-identical.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TailSeries {
    /// Legend label, matching the mean series it annotates.
    pub label: String,
    /// One entry per sweep x, in x order.
    pub points: Vec<TailPoint>,
}

impl Series {
    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.0 - x).abs() < 1e-9)
            .map(|p| p.1)
    }
}

/// The data behind one figure or table of the paper.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FigureData {
    /// Experiment id, e.g. "fig2".
    pub id: String,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series, in legend order.
    pub series: Vec<Series>,
    /// Tail-quantile columns per series (empty when the figure's metric
    /// has no per-observation sketch, e.g. abort percentages).
    pub tails: Vec<TailSeries>,
}

impl FigureData {
    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// All distinct x values, in order of first appearance.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _, _) in &s.points {
                if !xs.iter().any(|&v| (v - x).abs() < 1e-9) {
                    xs.push(x);
                }
            }
        }
        xs
    }

    /// Render as a GitHub-flavoured markdown table, one row per x, one
    /// column per series (`mean ± ci`).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} ({}) |", s.label, self.y_label);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for x in self.xs() {
            let _ = write!(out, "| {x} |");
            for s in &self.series {
                match s.points.iter().find(|p| (p.0 - x).abs() < 1e-9) {
                    Some(&(_, y, ci)) if ci > 0.0 => {
                        let _ = write!(out, " {y:.1} ± {ci:.1} |");
                    }
                    Some(&(_, y, _)) => {
                        let _ = write!(out, " {y:.1} |");
                    }
                    None => {
                        let _ = write!(out, " — |");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render as a quick ASCII chart (one glyph per series), for eyeball
    /// verification in a terminal. Linear axes, rows top-down from the
    /// maximum y.
    pub fn to_ascii(&self, width: usize, height: usize) -> String {
        assert!(width >= 8 && height >= 4, "chart too small to draw");
        let xs = self.xs();
        if xs.is_empty() {
            return format!("({}: no data)\n", self.id);
        }
        let (xmin, xmax) = (
            xs.iter().copied().fold(f64::INFINITY, f64::min),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        );
        let ymax = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .fold(f64::NEG_INFINITY, f64::max)
            .max(1e-12);
        let glyphs = ['*', '+', 'o', 'x', '#', '@'];
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = glyphs[si % glyphs.len()];
            for &(x, y, _) in &s.points {
                let col = if xmax > xmin {
                    ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize
                } else {
                    0
                };
                let row = ((1.0 - y / ymax) * (height - 1) as f64).round() as usize;
                let row = row.min(height - 1);
                let col = col.min(width - 1);
                grid[row][col] = glyph;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} — {} (ymax {:.3e})", self.id, self.title, ymax);
        for row in grid {
            let _ = writeln!(out, "|{}", row.into_iter().collect::<String>());
        }
        let _ = writeln!(out, "+{}", "-".repeat(width));
        let _ = writeln!(out, " x: {xmin} .. {xmax} ({})", self.x_label);
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "   {} {}", glyphs[si % glyphs.len()], s.label);
        }
        out
    }

    /// Render as CSV: `x,series,y,ci` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,series,y,ci\n");
        for s in &self.series {
            for &(x, y, ci) in &s.points {
                let _ = writeln!(out, "{x},{},{y},{ci}", s.label);
            }
        }
        out
    }

    /// Render the tail-quantile columns as CSV
    /// (`x,series,p50,p90,p99,p999,max,count`); `None` when the figure
    /// carries no tails, so callers skip the side file entirely.
    pub fn to_tail_csv(&self) -> Option<String> {
        if self.tails.is_empty() {
            return None;
        }
        let mut out = String::from("x,series,p50,p90,p99,p999,max,count\n");
        for s in &self.tails {
            for p in &s.points {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{}",
                    p.x, s.label, p.p50, p.p90, p.p99, p.p999, p.max, p.count
                );
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureData {
        FigureData {
            id: "figX".into(),
            title: "test figure".into(),
            x_label: "latency".into(),
            y_label: "resp".into(),
            tails: Vec::new(),
            series: vec![
                Series {
                    label: "g-2PL".into(),
                    points: vec![(1.0, 10.0, 0.5), (50.0, 100.0, 2.0)],
                },
                Series {
                    label: "s-2PL".into(),
                    points: vec![(1.0, 12.0, 0.0), (50.0, 130.0, 3.0)],
                },
            ],
        }
    }

    #[test]
    fn xs_collects_unique_in_order() {
        assert_eq!(fig().xs(), vec![1.0, 50.0]);
    }

    #[test]
    fn series_lookup() {
        let f = fig();
        assert!(f.series("g-2PL").is_some());
        assert!(f.series("nope").is_none());
        assert_eq!(f.series("s-2PL").unwrap().y_at(50.0), Some(130.0));
        assert_eq!(f.series("s-2PL").unwrap().y_at(2.0), None);
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = fig().to_markdown();
        assert!(md.contains("| latency |"));
        assert!(md.contains("10.0 ± 0.5"));
        assert!(md.contains("12.0 |"), "zero-ci cell printed bare: {md}");
        assert!(md.contains("130.0 ± 3.0"));
    }

    #[test]
    fn ascii_chart_renders_all_series() {
        let a = fig().to_ascii(40, 10);
        assert!(a.contains('*') && a.contains('+'), "{a}");
        assert!(a.contains("g-2PL"));
        assert!(a.contains("x: 1 .. 50"));
        assert_eq!(a.lines().filter(|l| l.starts_with('|')).count(), 10);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn ascii_chart_rejects_tiny_canvas() {
        fig().to_ascii(4, 2);
    }

    #[test]
    fn ascii_chart_handles_empty_figure() {
        let f = FigureData {
            id: "empty".into(),
            title: "".into(),
            x_label: "".into(),
            y_label: "".into(),
            tails: Vec::new(),
            series: vec![],
        };
        assert!(f.to_ascii(20, 5).contains("no data"));
    }

    #[test]
    fn tail_csv_is_none_without_tails_and_lists_quantiles_with() {
        let mut f = fig();
        assert_eq!(f.to_tail_csv(), None, "no side file without tails");
        f.tails = vec![TailSeries {
            label: "g-2PL".into(),
            points: vec![TailPoint {
                x: 50.0,
                p50: 90,
                p90: 140,
                p99: 200,
                p999: 260,
                max: 300,
                count: 5000,
            }],
        }];
        let csv = f.to_tail_csv().unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,series,p50,p90,p99,p999,max,count");
        assert_eq!(lines[1], "50,g-2PL,90,140,200,260,300,5000");
        // The mean CSV is unchanged by the presence of tails.
        assert_eq!(f.to_csv(), fig().to_csv());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = fig().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,series,y,ci");
        assert_eq!(lines.len(), 5);
        assert!(lines.contains(&"50,g-2PL,100,2"));
    }
}
