//! Offline serializability and strictness checking.
//!
//! Both s-2PL and g-2PL must produce strict, (conflict-)serializable
//! executions — that is the whole point of a locking protocol. The
//! engines optionally record, per committed transaction, the version of
//! every item it read and the version it installed for every item it
//! wrote; [`check_serializable`] rebuilds the version-order conflict
//! graph from that record and verifies it is acyclic.
//!
//! Conflict edges, per item:
//! * **ww**: the writer of version `v` precedes the writer of the next
//!   higher version;
//! * **wr**: the writer of version `v` precedes every reader of `v`;
//! * **rw**: every reader of version `v` precedes the writer of the next
//!   higher version.
//!
//! Versions install densely (1, 2, 3, …) per item, so the checker also
//! validates the write chain itself.

use g2pl_protocols::History;
use g2pl_simcore::{ItemId, TxnId, Version};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Check that a committed history is conflict-serializable and its
/// version chains are well-formed. Returns a description of the first
/// violation found.
pub fn check_serializable(history: &History) -> Result<(), String> {
    // Per item: version -> writer, and version -> readers.
    // BTreeMaps throughout: the checker reports the *first* violation it
    // finds, so which one that is must not depend on hash order.
    let mut writers: BTreeMap<ItemId, BTreeMap<Version, TxnId>> = BTreeMap::new();
    let mut readers: BTreeMap<ItemId, BTreeMap<Version, Vec<TxnId>>> = BTreeMap::new();

    for rec in history.records() {
        let mut seen: HashSet<ItemId> = HashSet::new();
        for acc in &rec.accesses {
            if !seen.insert(acc.item) {
                return Err(format!(
                    "{} accesses {} twice in one transaction",
                    rec.txn, acc.item
                ));
            }
            if acc.mode.is_write() {
                if acc.version == 0 {
                    return Err(format!(
                        "{} claims to have installed version 0 of {}",
                        rec.txn, acc.item
                    ));
                }
                if let Some(prev) = writers
                    .entry(acc.item)
                    .or_default()
                    .insert(acc.version, rec.txn)
                {
                    return Err(format!(
                        "two writers ({prev} and {}) installed version {} of {}",
                        rec.txn, acc.version, acc.item
                    ));
                }
            } else {
                readers
                    .entry(acc.item)
                    .or_default()
                    .entry(acc.version)
                    .or_default()
                    .push(rec.txn);
            }
        }
    }

    // Validate write chains: versions must be dense from 1.
    for (item, chain) in &writers {
        for (i, (&v, _)) in chain.iter().enumerate() {
            if v != (i + 1) as Version {
                return Err(format!(
                    "write chain of {item} has a gap: expected version {}, found {v}",
                    i + 1
                ));
            }
        }
    }

    // Validate reads observe existing versions.
    for (item, by_version) in &readers {
        let max_written = writers
            .get(item)
            .and_then(|c| c.keys().next_back().copied())
            .unwrap_or(0);
        for (&v, txns) in by_version {
            if v > max_written {
                return Err(format!(
                    "{txns:?} read version {v} of {item}, but only {max_written} were written"
                ));
            }
        }
    }

    // Build the conflict graph and check acyclicity with Kahn's
    // algorithm.
    let mut succ: BTreeMap<TxnId, BTreeSet<TxnId>> = BTreeMap::new();
    let mut add = |a: TxnId, b: TxnId| {
        if a != b {
            succ.entry(a).or_default().insert(b);
        }
    };
    for (item, chain) in &writers {
        let empty = BTreeMap::new();
        let item_readers = readers.get(item).unwrap_or(&empty);
        let versions: Vec<(Version, TxnId)> = chain.iter().map(|(&v, &t)| (v, t)).collect();
        for w in versions.windows(2) {
            add(w[0].1, w[1].1); // ww
        }
        for &(v, writer) in &versions {
            if let Some(rs) = item_readers.get(&v) {
                for &r in rs {
                    add(writer, r); // wr
                }
            }
            // Readers of the previous version precede this writer.
            if let Some(rs) = item_readers.get(&(v - 1)) {
                for &r in rs {
                    add(r, writer); // rw
                }
            }
        }
    }
    // Items that were only read never generate edges.

    let mut indeg: BTreeMap<TxnId, usize> = BTreeMap::new();
    let mut nodes: BTreeSet<TxnId> = BTreeSet::new();
    for (&n, ss) in &succ {
        nodes.insert(n);
        for &s in ss {
            nodes.insert(s);
            *indeg.entry(s).or_insert(0) += 1;
        }
    }
    let mut ready: Vec<TxnId> = nodes
        .iter()
        .copied()
        .filter(|n| indeg.get(n).copied().unwrap_or(0) == 0)
        .collect();
    let mut removed = 0usize;
    while let Some(n) = ready.pop() {
        removed += 1;
        if let Some(ss) = succ.get(&n) {
            for &s in ss {
                // lint:allow(L3): Kahn invariant: every edge target was given an indegree in the build loop above
                let d = indeg.get_mut(&s).expect("edge target has indegree");
                *d -= 1;
                if *d == 0 {
                    ready.push(s);
                }
            }
        }
    }
    if removed != nodes.len() {
        return Err(format!(
            "conflict graph has a cycle among {} of {} transactions",
            nodes.len() - removed,
            nodes.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use g2pl_protocols::history::AccessRecord;
    use g2pl_protocols::CommitRecord;
    use g2pl_simcore::SimTime;
    use g2pl_workload::AccessMode;

    fn rec(txn: u32, at: u64, accesses: &[(u32, AccessMode, Version)]) -> CommitRecord {
        CommitRecord {
            txn: TxnId::new(txn),
            at: SimTime::new(at),
            accesses: accesses
                .iter()
                .map(|&(i, mode, version)| AccessRecord {
                    item: ItemId::new(i),
                    mode,
                    version,
                })
                .collect(),
        }
    }

    use AccessMode::{Read, Write};

    #[test]
    fn empty_history_is_serializable() {
        assert!(check_serializable(&History::new()).is_ok());
    }

    #[test]
    fn serial_writes_pass() {
        let mut h = History::new();
        h.push(rec(1, 10, &[(0, Write, 1)]));
        h.push(rec(2, 20, &[(0, Write, 2)]));
        h.push(rec(3, 30, &[(0, Read, 2)]));
        assert!(check_serializable(&h).is_ok());
    }

    #[test]
    fn duplicate_version_fails() {
        let mut h = History::new();
        h.push(rec(1, 10, &[(0, Write, 1)]));
        h.push(rec(2, 20, &[(0, Write, 1)]));
        let err = check_serializable(&h).unwrap_err();
        assert!(err.contains("two writers"), "{err}");
    }

    #[test]
    fn version_gap_fails() {
        let mut h = History::new();
        h.push(rec(1, 10, &[(0, Write, 2)]));
        let err = check_serializable(&h).unwrap_err();
        assert!(err.contains("gap"), "{err}");
    }

    #[test]
    fn read_of_unwritten_version_fails() {
        let mut h = History::new();
        h.push(rec(1, 10, &[(0, Read, 3)]));
        let err = check_serializable(&h).unwrap_err();
        assert!(err.contains("read version 3"), "{err}");
    }

    #[test]
    fn nonserializable_cycle_fails() {
        // T1 reads x@0 and writes y@1; T2 reads y@0 and writes x@1.
        // rw edges: T1 -> T2 (T1 read x@0, T2 wrote x@1)
        //           T2 -> T1 (T2 read y@0, T1 wrote y@1) — a cycle.
        let mut h = History::new();
        h.push(rec(1, 10, &[(0, Read, 0), (1, Write, 1)]));
        h.push(rec(2, 20, &[(1, Read, 0), (0, Write, 1)]));
        let err = check_serializable(&h).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn concurrent_readers_are_fine() {
        let mut h = History::new();
        h.push(rec(1, 10, &[(0, Write, 1)]));
        h.push(rec(2, 20, &[(0, Read, 1)]));
        h.push(rec(3, 20, &[(0, Read, 1)]));
        h.push(rec(4, 30, &[(0, Write, 2)]));
        assert!(check_serializable(&h).is_ok());
    }

    #[test]
    fn double_access_in_one_txn_fails() {
        let mut h = History::new();
        h.push(rec(1, 10, &[(0, Read, 0), (0, Write, 1)]));
        let err = check_serializable(&h).unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn engine_histories_verify() {
        use g2pl_protocols::{run, EngineConfig, ProtocolKind};
        for protocol in [
            ProtocolKind::S2pl,
            ProtocolKind::g2pl_paper(),
            ProtocolKind::C2pl,
        ] {
            let mut cfg = EngineConfig::table1(protocol, 8, 50, 0.5);
            cfg.warmup_txns = 20;
            cfg.measured_txns = 300;
            cfg.record_history = true;
            let m = run(&cfg).expect("valid config");
            let label = m.protocol;
            check_serializable(m.history.as_ref().expect("history on"))
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }
}
