//! Machine-checked reproduction scorecard.
//!
//! The paper's evaluation makes a set of *qualitative claims* (who wins
//! where, which way curves move, where crossovers fall). This module
//! encodes each claim as data ([`Claim`]) and checks it against freshly
//! simulated results, producing a verdict table — the automated version
//! of EXPERIMENTS.md's scorecard. Run it via
//! `cargo run --release -p g2pl-bench --bin repro -- scorecard`.

use crate::experiments::{self, Scale};
use crate::figure::FigureData;
use std::fmt::Write as _;

/// One qualitative claim of the paper, boiled down to a predicate over a
/// regenerated figure.
pub struct Claim {
    /// Short id ("fig2-winner").
    pub id: &'static str,
    /// The paper's wording, paraphrased.
    pub statement: &'static str,
    /// Generates the data and judges it.
    check: Box<dyn Fn(Scale) -> Verdict>,
}

/// Outcome of checking one claim.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// The claim holds in our reproduction.
    Reproduced(String),
    /// The claim fails; the string explains how.
    Diverged(String),
}

impl Verdict {
    /// True for [`Verdict::Reproduced`].
    pub fn ok(&self) -> bool {
        matches!(self, Verdict::Reproduced(_))
    }

    /// The explanation carried either way.
    pub fn detail(&self) -> &str {
        match self {
            Verdict::Reproduced(s) | Verdict::Diverged(s) => s,
        }
    }
}

/// Mean improvement of series `a` over series `b` across shared x values,
/// in percent (positive = `a` is faster).
fn mean_improvement(fig: &FigureData, a: &str, b: &str) -> f64 {
    // lint:allow(L3): callers pass registry series names, present by construction
    let sa = fig.series(a).expect("series a");
    // lint:allow(L3): callers pass registry series names, present by construction
    let sb = fig.series(b).expect("series b");
    let mut imps = Vec::new();
    for &(x, ya, _) in &sa.points {
        if let Some(yb) = sb.y_at(x) {
            imps.push(100.0 * (yb - ya) / yb);
        }
    }
    imps.iter().sum::<f64>() / imps.len() as f64
}

/// All encoded claims of the paper's evaluation.
pub fn claims() -> Vec<Claim> {
    let mut v: Vec<Claim> = Vec::new();

    v.push(Claim {
        id: "headline",
        statement: "20-25% response-time improvement of g-2PL over s-2PL with updates",
        check: Box::new(|scale| {
            let fig = experiments::figure("fig3")
                // lint:allow(L3): fig3 is a registry constant, present by construction
                .expect("registered")
                .build(scale);
            let imp = mean_improvement(&fig, "g-2PL", "s-2PL");
            if (10.0..=35.0).contains(&imp) {
                Verdict::Reproduced(format!("mean improvement {imp:.1}%"))
            } else {
                Verdict::Diverged(format!("mean improvement {imp:.1}% out of band"))
            }
        }),
    });

    v.push(Claim {
        id: "fig2-winner",
        statement: "g-2PL below s-2PL at every latency for pure updates (Fig 2)",
        check: Box::new(|scale| {
            let fig = experiments::figure("fig2")
                // lint:allow(L3): fig2 is a registry constant, present by construction
                .expect("registered")
                .build(scale);
            // lint:allow(L3): series names are registry constants, present by construction
            let g = fig.series("g-2PL").expect("g");
            // lint:allow(L3): series names are registry constants, present by construction
            let s = fig.series("s-2PL").expect("s");
            let losses: Vec<f64> = g
                .points
                .iter()
                .filter(|&&(x, y, _)| s.y_at(x).is_some_and(|ys| y >= ys))
                .map(|&(x, _, _)| x)
                .collect();
            if losses.is_empty() {
                Verdict::Reproduced("g-2PL wins at every latency".into())
            } else {
                Verdict::Diverged(format!("g-2PL loses at latencies {losses:?}"))
            }
        }),
    });

    v.push(Claim {
        id: "fig4-winner",
        statement: "s-2PL better than g-2PL in read-only systems (Fig 4)",
        check: Box::new(|scale| {
            let fig = experiments::figure("fig4")
                // lint:allow(L3): fig4 is a registry constant, present by construction
                .expect("registered")
                .build(scale);
            // lint:allow(L3): series names are registry constants, present by construction
            let g = fig.series("g-2PL").expect("g");
            // lint:allow(L3): series names are registry constants, present by construction
            let s = fig.series("s-2PL").expect("s");
            let wins = g
                .points
                .iter()
                .filter(|&&(x, y, _)| s.y_at(x).is_some_and(|ys| ys < y))
                .count();
            if wins == g.points.len() {
                Verdict::Reproduced("s-2PL wins at every latency".into())
            } else {
                Verdict::Diverged(format!("s-2PL wins only {wins}/{} points", g.points.len()))
            }
        }),
    });

    v.push(Claim {
        id: "fig5-crossover",
        statement: "crossover around pr ≈ 0.85 in the ss-LAN (Fig 5)",
        check: Box::new(|scale| {
            let fig = experiments::figure("fig5")
                // lint:allow(L3): fig5 is a registry constant, present by construction
                .expect("registered")
                .build(scale);
            match crossover_pr(&fig) {
                Some(x) if (0.65..=0.95).contains(&x) => {
                    Verdict::Reproduced(format!("crossover near pr ≈ {x:.2}"))
                }
                Some(x) => Verdict::Diverged(format!("crossover at pr ≈ {x:.2}")),
                None => Verdict::Diverged("no crossover found".into()),
            }
        }),
    });

    v.push(Claim {
        id: "fig8-flat",
        statement: "abort percentage roughly constant in latency above the ss-LAN (Fig 8)",
        check: Box::new(|scale| {
            let fig = experiments::figure("fig8")
                // lint:allow(L3): fig8 is a registry constant, present by construction
                .expect("registered")
                .build(scale);
            // lint:allow(L3): series names are registry constants, present by construction
            let s = fig.series("g-2PL").expect("g");
            let ys: Vec<f64> = s.points.iter().skip(1).map(|p| p.1).collect();
            let spread = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - ys.iter().cloned().fold(f64::INFINITY, f64::min);
            if spread < 10.0 {
                Verdict::Reproduced(format!("spread {spread:.1} points across WAN range"))
            } else {
                Verdict::Diverged(format!("spread {spread:.1} points"))
            }
        }),
    });

    v.push(Claim {
        id: "fig11-trend",
        statement: "aborts fall as the forward-list length cap grows (Fig 11)",
        check: Box::new(|scale| {
            let fig = experiments::figure("fig11")
                // lint:allow(L3): fig11 is a registry constant, present by construction
                .expect("registered")
                .build(scale);
            let pts = &fig.series[0].points;
            // lint:allow(L3): every figure series has at least one point by construction
            let (first, last) = (pts.first().expect("pts").1, pts.last().expect("pts").1);
            if last < first {
                Verdict::Reproduced(format!("{first:.1}% at cap 1 → {last:.1}% at cap 10"))
            } else {
                Verdict::Diverged(format!("{first:.1}% → {last:.1}%"))
            }
        }),
    });

    v.push(Claim {
        id: "fig12-winner",
        statement: "g-2PL wins across client counts at pr=0.25 in the s-WAN (Fig 12)",
        check: Box::new(|scale| {
            let fig = experiments::figure("fig12")
                // lint:allow(L3): fig12 is a registry constant, present by construction
                .expect("registered")
                .build(scale);
            let imp = mean_improvement(&fig, "g-2PL", "s-2PL");
            if imp > 0.0 {
                Verdict::Reproduced(format!("mean improvement {imp:.1}%"))
            } else {
                Verdict::Diverged(format!("mean improvement {imp:.1}%"))
            }
        }),
    });

    v
}

/// The pr at which s-2PL first becomes faster, interpolated to the
/// midpoint of the bracketing sweep points.
fn crossover_pr(fig: &FigureData) -> Option<f64> {
    let g = fig.series("g-2PL")?;
    let s = fig.series("s-2PL")?;
    let mut prev: Option<(f64, bool)> = None;
    for &(x, y, _) in &g.points {
        let ys = s.y_at(x)?;
        let g_wins = y <= ys;
        if let Some((px, p_wins)) = prev {
            if p_wins && !g_wins {
                return Some((px + x) / 2.0);
            }
        }
        prev = Some((x, g_wins));
    }
    None
}

/// Run every claim at the given scale and render the verdict table.
pub fn run_scorecard(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### Scorecard — machine-checked paper claims");
    let _ = writeln!(out, "| claim | statement | verdict | detail |");
    let _ = writeln!(out, "|---|---|---|---|");
    let mut ok = 0;
    let all = claims();
    let total = all.len();
    for claim in all {
        let verdict = (claim.check)(scale);
        if verdict.ok() {
            ok += 1;
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            claim.id,
            claim.statement,
            if verdict.ok() { "✅" } else { "❌" },
            verdict.detail()
        );
    }
    let _ = writeln!(out, "\n{ok}/{total} claims reproduced");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure::Series;

    fn two_series(ga: &[(f64, f64)], sa: &[(f64, f64)]) -> FigureData {
        FigureData {
            id: "t".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            tails: Vec::new(),
            series: vec![
                Series {
                    label: "g-2PL".into(),
                    points: ga.iter().map(|&(x, y)| (x, y, 0.0)).collect(),
                },
                Series {
                    label: "s-2PL".into(),
                    points: sa.iter().map(|&(x, y)| (x, y, 0.0)).collect(),
                },
            ],
        }
    }

    #[test]
    fn mean_improvement_math() {
        let fig = two_series(&[(1.0, 80.0), (2.0, 60.0)], &[(1.0, 100.0), (2.0, 100.0)]);
        let imp = mean_improvement(&fig, "g-2PL", "s-2PL");
        assert!((imp - 30.0).abs() < 1e-9, "{imp}");
    }

    #[test]
    fn crossover_detection() {
        let fig = two_series(
            &[(0.0, 50.0), (0.5, 40.0), (1.0, 30.0)],
            &[(0.0, 60.0), (0.5, 45.0), (1.0, 10.0)],
        );
        let x = crossover_pr(&fig).expect("crossover");
        assert!((x - 0.75).abs() < 1e-9);
    }

    #[test]
    fn no_crossover_when_dominant() {
        let fig = two_series(&[(0.0, 1.0), (1.0, 1.0)], &[(0.0, 2.0), (1.0, 2.0)]);
        assert_eq!(crossover_pr(&fig), None);
    }

    #[test]
    fn claims_are_well_formed() {
        let cs = claims();
        assert!(cs.len() >= 7);
        let mut ids: Vec<&str> = cs.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cs.len(), "duplicate claim ids");
    }

    #[test]
    fn verdict_accessors() {
        let r = Verdict::Reproduced("yes".into());
        assert!(r.ok());
        assert_eq!(r.detail(), "yes");
        let d = Verdict::Diverged("no".into());
        assert!(!d.ok());
    }
}
