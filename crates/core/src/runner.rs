//! Replicated simulation runs.
//!
//! The paper computes every data point from 5 independent replications
//! with 95% confidence intervals (§5). [`run_replicated`] reproduces that
//! procedure, running replications on worker threads (the engines are
//! single-threaded and deterministic, so replications parallelise
//! trivially).

use crate::tracecheck::{check_trace_with, TraceCheckOpts};
use crate::verify::check_serializable;
use g2pl_protocols::{run, EngineConfig, RunMetrics};
use g2pl_stats::{ConfidenceInterval, Replications};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Whether [`run_replicated`] self-verifies (on by default).
static VERIFY: AtomicBool = AtomicBool::new(true);

/// Directory span traces are exported to, when set.
static TRACE_OUT: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Export replication 0 of every subsequent [`run_replicated`] call as a
/// JSONL span trace into `dir` (`None` turns exporting back off). The
/// files are the input of the `trace-explain` analyzer.
pub fn set_trace_out(dir: Option<PathBuf>) {
    *TRACE_OUT.lock().expect("trace-out mutex poisoned") = dir;
}

/// The configured span-trace export directory, if any.
pub fn trace_out() -> Option<PathBuf> {
    TRACE_OUT.lock().expect("trace-out mutex poisoned").clone()
}

/// Turn self-verification on or off process-wide.
///
/// When on (the default), every [`run_replicated`] call re-runs its first
/// replication with event tracing and history recording enabled, checks
/// the trace against protocol properties P1–P7 and the history against
/// conflict-serializability, and panics with diagnostics on any
/// violation. The verified run's metrics are reused as replication 0, so
/// the overhead is the recording and the checks, not an extra simulation.
pub fn set_verify(on: bool) {
    VERIFY.store(on, Ordering::SeqCst);
}

/// Whether self-verification is currently on.
pub fn verify_enabled() -> bool {
    VERIFY.load(Ordering::SeqCst)
}

/// Run one replication with recording on, check it, and return its
/// metrics stripped of the recordings.
fn run_verified(cfg: &EngineConfig) -> RunMetrics {
    let mut vc = cfg.clone();
    vc.trace_events = true;
    vc.record_history = true;
    let mut m = run(&vc);
    let diag = |what: &str, err: &str| -> String {
        format!(
            "{what} violation in a {} run (clients={}, latency={}, seed={}): {err}",
            m.protocol,
            vc.num_clients,
            vc.latency.nominal(),
            vc.seed
        )
    };
    if verify_enabled() {
        // A truncated trace is a prefix: "verifying" it would claim more
        // than was observed, so refuse outright.
        assert!(
            !m.trace_truncated(),
            "{}",
            diag(
                "trace completeness",
                &format!(
                    "the bounded trace log dropped {} events; shrink the run \
                     or raise the log cap before verifying",
                    m.trace_dropped
                )
            )
        );
        if let Some(trace) = &m.trace {
            if let Err(e) = check_trace_with(trace, TraceCheckOpts::for_config(&vc)) {
                panic!("{}", diag("trace property", &e));
            }
        }
        if let Some(history) = &m.history {
            if let Err(e) = check_serializable(history) {
                panic!("{}", diag("serializability", &e));
            }
        }
    }
    if let Some(dir) = trace_out() {
        export_spans(&dir, &vc, &m);
    }
    m.trace = None;
    m.history = None;
    m.spans = None;
    m
}

/// Write the run's span events to `DIR/<label>_c<n>_l<L>_pr<p>_s<seed>.jsonl`.
fn export_spans(dir: &std::path::Path, cfg: &EngineConfig, m: &RunMetrics) {
    let Some(spans) = &m.spans else { return };
    let meta = g2pl_obs::RunMeta {
        protocol: m.protocol.to_string(),
        clients: cfg.num_clients,
        latency: cfg.latency.nominal(),
        read_prob: cfg.profile.read_prob,
        seed: cfg.seed,
        committed: m.committed_total,
        aborted: m.aborted_total,
        measured: m.response.count(),
        mean_response: m.response.mean(),
        dropped: m.phases.spans_dropped,
    };
    let label: String = m
        .protocol
        .chars()
        .filter(|c| *c != '-')
        .collect::<String>()
        .to_lowercase();
    let file = format!(
        "{label}_c{}_l{}_pr{}_s{}.jsonl",
        cfg.num_clients,
        cfg.latency.nominal(),
        cfg.profile.read_prob,
        cfg.seed
    );
    if let Err(e) = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(dir.join(&file), g2pl_obs::write_jsonl(&meta, spans)))
    {
        eprintln!(
            "warning: span trace export to {} failed: {e}",
            dir.display()
        );
    }
}

/// The outcome of `n` independent replications of one configuration.
#[derive(Debug)]
pub struct ReplicatedResult {
    /// Per-replication metrics, in replication order.
    pub runs: Vec<RunMetrics>,
    response: Replications,
    abort_pct: Replications,
    msgs_per_completion: Replications,
}

impl ReplicatedResult {
    /// Across-replication mean response time with 95% CI.
    pub fn response_ci(&self) -> ConfidenceInterval {
        self.response.interval_95()
    }

    /// Across-replication abort percentage with 95% CI.
    pub fn abort_pct_ci(&self) -> ConfidenceInterval {
        self.abort_pct.interval_95()
    }

    /// Across-replication messages per completed transaction with 95% CI.
    pub fn msgs_per_completion_ci(&self) -> ConfidenceInterval {
        self.msgs_per_completion.interval_95()
    }

    /// Number of replications.
    pub fn reps(&self) -> usize {
        self.runs.len()
    }
}

/// Derive the replication seeds from a base seed. Exposed so tests can
/// reproduce an individual replication.
pub fn replication_seed(base: u64, rep: u32) -> u64 {
    base ^ (0x5851_f42d_4c95_7f2d_u64.wrapping_mul(u64::from(rep) + 1))
}

/// Run `reps` independent replications of `base` (differing only in
/// seed) and aggregate the paper's metrics.
///
/// Replications run on scoped worker threads; results are collected in
/// replication order so the aggregate is deterministic. Unless disabled
/// with [`set_verify`], replication 0 runs with recording on and is
/// checked against properties P1–P7 and conflict-serializability.
pub fn run_replicated(base: &EngineConfig, reps: u32) -> ReplicatedResult {
    assert!(reps > 0, "need at least one replication");
    let configs: Vec<EngineConfig> = (0..reps)
        .map(|r| {
            let mut c = base.clone();
            c.seed = replication_seed(base.seed, r);
            c
        })
        .collect();

    // Recording is passive — it perturbs no random draw and no event —
    // so the verified run's metrics stand in for replication 0 exactly.
    let first: Option<RunMetrics> =
        (verify_enabled() || trace_out().is_some()).then(|| run_verified(&configs[0]));
    let rest = if first.is_some() {
        &configs[1..]
    } else {
        &configs[..]
    };

    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZero::get)
        .min(rest.len().max(1));

    let tail: Vec<RunMetrics> = if threads <= 1 {
        rest.iter().map(run).collect()
    } else {
        let mut out: Vec<Option<RunMetrics>> = rest.iter().map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let out_mtx = std::sync::Mutex::new(&mut out);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if i >= rest.len() {
                        break;
                    }
                    let m = run(&rest[i]);
                    out_mtx.lock().expect("runner mutex poisoned")[i] = Some(m);
                });
            }
        });
        out.into_iter()
            .map(|m| m.expect("every replication ran"))
            .collect()
    };
    let runs: Vec<RunMetrics> = first.into_iter().chain(tail).collect();

    let response = Replications::from_values(
        &runs
            .iter()
            .map(g2pl_protocols::RunMetrics::mean_response)
            .collect::<Vec<_>>(),
    );
    let abort_pct = Replications::from_values(
        &runs
            .iter()
            .map(g2pl_protocols::RunMetrics::abort_pct)
            .collect::<Vec<_>>(),
    );
    let msgs_per_completion = Replications::from_values(
        &runs
            .iter()
            .map(g2pl_protocols::RunMetrics::msgs_per_completion)
            .collect::<Vec<_>>(),
    );
    ReplicatedResult {
        runs,
        response,
        abort_pct,
        msgs_per_completion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g2pl_protocols::ProtocolKind;

    fn cfg() -> EngineConfig {
        let mut c = EngineConfig::table1(ProtocolKind::S2pl, 5, 50, 0.5);
        c.warmup_txns = 20;
        c.measured_txns = 150;
        c
    }

    #[test]
    fn replications_differ_but_aggregate_deterministically() {
        let a = run_replicated(&cfg(), 3);
        let b = run_replicated(&cfg(), 3);
        assert_eq!(a.reps(), 3);
        // Same inputs => identical aggregate.
        assert_eq!(a.response_ci(), b.response_ci());
        assert_eq!(a.abort_pct_ci(), b.abort_pct_ci());
        // Different seeds => replications are not all identical.
        let means: Vec<f64> = a
            .runs
            .iter()
            .map(g2pl_protocols::RunMetrics::mean_response)
            .collect();
        assert!(means.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn replication_seeds_are_distinct() {
        let s: Vec<u64> = (0..10).map(|r| replication_seed(42, r)).collect();
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), s.len());
    }

    #[test]
    fn ci_half_width_is_finite_and_positive() {
        let r = run_replicated(&cfg(), 3);
        let ci = r.response_ci();
        assert!(ci.mean > 0.0);
        assert!(ci.half_width.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_reps_panics() {
        run_replicated(&cfg(), 0);
    }
}
