//! Replicated simulation runs and the grid scheduler.
//!
//! The paper computes every data point from 5 independent replications
//! with 95% confidence intervals (§5). [`run_replicated`] reproduces that
//! procedure; [`run_grid`] generalises it to a whole figure, flattening
//! every `(point, replication)` pair of a sweep onto one worker pool (the
//! engines are single-threaded and deterministic, so cells parallelise
//! trivially) while aggregating results in replication order, so a sweep
//! produces bit-identical output at any worker count.
//!
//! This module also owns the wall-clock instrumentation: the engine
//! crates are forbidden ambient time (lint rule L2), so runs are timed
//! *here* and the duration is stamped onto [`RunMetrics::wall_secs`]
//! after the engine returns. Process-wide totals accumulate in atomics
//! and are drained with [`take_perf`] for throughput reporting.

use crate::tracecheck::{check_trace_with, TraceCheckOpts};
use crate::verify::check_serializable;
use g2pl_protocols::{run, EngineConfig, RunMetrics};
use g2pl_stats::{ConfidenceInterval, Replications, TailSketch, TailSummary};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Whether [`run_replicated`] self-verifies (on by default).
static VERIFY: AtomicBool = AtomicBool::new(true);

/// Directory span traces are exported to, when set.
static TRACE_OUT: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Worker-count override for [`run_grid`] (0 = one per available core).
static GRID_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide engine-throughput accumulators, drained by [`take_perf`].
static PERF_RUNS: AtomicU64 = AtomicU64::new(0);
static PERF_EVENTS: AtomicU64 = AtomicU64::new(0);
static PERF_CPU_NANOS: AtomicU64 = AtomicU64::new(0);
static PERF_PEAK_CAL: AtomicU64 = AtomicU64::new(0);

/// Override how many worker threads [`run_grid`] uses (`None` restores
/// the default of one per available core). Worker count never affects
/// results — only scheduling — so this exists for benchmarking and for
/// the serial-vs-parallel determinism tests.
pub fn set_grid_workers(n: Option<usize>) {
    GRID_WORKERS.store(n.unwrap_or(0), Ordering::SeqCst);
}

fn grid_workers() -> usize {
    match GRID_WORKERS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        n => n,
    }
}

/// Engine-throughput totals accumulated since the last [`take_perf`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfTotals {
    /// Simulation runs timed.
    pub runs: u64,
    /// Simulation events processed across those runs.
    pub events: u64,
    /// Summed per-run wall-clock seconds. With parallel workers this is
    /// engine *CPU* time, which can exceed elapsed wall-clock.
    pub cpu_secs: f64,
    /// Largest calendar high-water mark seen in any run.
    pub peak_calendar: usize,
}

impl PerfTotals {
    /// Simulation events per engine-second (0 when nothing was timed).
    pub fn events_per_sec(&self) -> f64 {
        if self.cpu_secs > 0.0 {
            self.events as f64 / self.cpu_secs
        } else {
            0.0
        }
    }
}

/// Drain and reset the process-wide throughput accumulators.
pub fn take_perf() -> PerfTotals {
    PerfTotals {
        runs: PERF_RUNS.swap(0, Ordering::SeqCst),
        events: PERF_EVENTS.swap(0, Ordering::SeqCst),
        cpu_secs: PERF_CPU_NANOS.swap(0, Ordering::SeqCst) as f64 / 1e9,
        peak_calendar: PERF_PEAK_CAL.swap(0, Ordering::SeqCst) as usize,
    }
}

/// Stamp a run's duration onto its metrics and fold it into the
/// process-wide totals.
fn stamp(m: &mut RunMetrics, elapsed: std::time::Duration) {
    m.wall_secs = elapsed.as_secs_f64();
    PERF_RUNS.fetch_add(1, Ordering::SeqCst);
    PERF_EVENTS.fetch_add(m.events, Ordering::SeqCst);
    PERF_CPU_NANOS.fetch_add(
        u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        Ordering::SeqCst,
    );
    PERF_PEAK_CAL.fetch_max(m.peak_calendar as u64, Ordering::SeqCst);
}

/// Run one simulation, timing it (the engines themselves may not).
///
/// The runner's configs are composed programmatically (figure registry,
/// tests), so a [`ConfigError`](g2pl_protocols::ConfigError) here is a
/// caller bug and panics with the validator's diagnostic.
fn timed_run(cfg: &EngineConfig) -> RunMetrics {
    // lint:allow(L2): wall-clock stamps the host run duration into RunMetrics diagnostics
    let t = std::time::Instant::now();
    // lint:allow(L3): configs are composed programmatically; an invalid one is a caller bug (see fn docs)
    let mut m = run(cfg).unwrap_or_else(|e| panic!("invalid engine config: {e}"));
    stamp(&mut m, t.elapsed());
    m
}

/// Export replication 0 of every subsequent [`run_replicated`] call as a
/// JSONL span trace into `dir` (`None` turns exporting back off). The
/// files are the input of the `trace-explain` analyzer.
pub fn set_trace_out(dir: Option<PathBuf>) {
    // lint:allow(L3): a poisoned lock means a runner thread already panicked; propagate it
    *TRACE_OUT.lock().expect("trace-out mutex poisoned") = dir;
}

/// The configured span-trace export directory, if any.
pub fn trace_out() -> Option<PathBuf> {
    // lint:allow(L3): a poisoned lock means a runner thread already panicked; propagate it
    TRACE_OUT.lock().expect("trace-out mutex poisoned").clone()
}

/// Turn self-verification on or off process-wide.
///
/// When on (the default), every [`run_replicated`] call re-runs its first
/// replication with event tracing and history recording enabled, checks
/// the trace against protocol properties P1–P7 and the history against
/// conflict-serializability, and panics with diagnostics on any
/// violation. The verified run's metrics are reused as replication 0, so
/// the overhead is the recording and the checks, not an extra simulation.
pub fn set_verify(on: bool) {
    VERIFY.store(on, Ordering::SeqCst);
}

/// Whether self-verification is currently on.
pub fn verify_enabled() -> bool {
    VERIFY.load(Ordering::SeqCst)
}

/// Run one replication with recording on, check it, and return its
/// metrics stripped of the recordings.
fn run_verified(cfg: &EngineConfig) -> RunMetrics {
    let mut vc = cfg.clone();
    vc.trace_events = true;
    vc.record_history = true;
    // lint:allow(L2): wall-clock stamps the host run duration into RunMetrics diagnostics
    let t = std::time::Instant::now();
    // lint:allow(L3): configs are composed programmatically; an invalid one is a caller bug (see fn docs)
    let mut m = run(&vc).unwrap_or_else(|e| panic!("invalid engine config: {e}"));
    stamp(&mut m, t.elapsed());
    let diag = |what: &str, err: &str| -> String {
        format!(
            "{what} violation in a {} run (clients={}, latency={}, seed={}): {err}",
            m.protocol,
            vc.num_clients,
            vc.latency.nominal(),
            vc.seed
        )
    };
    if verify_enabled() {
        // A truncated trace is a prefix: "verifying" it would claim more
        // than was observed, so refuse outright.
        assert!(
            !m.trace_truncated(),
            "{}",
            diag(
                "trace completeness",
                &format!(
                    "the bounded trace log dropped {} events; shrink the run \
                     or raise the log cap before verifying",
                    m.trace_dropped
                )
            )
        );
        if let Some(trace) = &m.trace {
            if let Err(e) = check_trace_with(trace, TraceCheckOpts::for_config(&vc)) {
                // lint:allow(L3): a failed trace property is a simulator bug: abort loudly with the diagnostic
                panic!("{}", diag("trace property", &e));
            }
        }
        if let Some(history) = &m.history {
            if let Err(e) = check_serializable(history) {
                // lint:allow(L3): a failed serializability check is a simulator bug: abort loudly with the diagnostic
                panic!("{}", diag("serializability", &e));
            }
        }
    }
    if let Some(dir) = trace_out() {
        export_spans(&dir, &vc, &m);
    }
    m.trace = None;
    m.history = None;
    m.spans = None;
    m
}

/// Write the run's span events to `DIR/<label>_c<n>_l<L>_pr<p>_s<seed>.jsonl`.
fn export_spans(dir: &std::path::Path, cfg: &EngineConfig, m: &RunMetrics) {
    let Some(spans) = &m.spans else { return };
    let meta = g2pl_obs::RunMeta {
        protocol: m.protocol.to_string(),
        clients: cfg.num_clients,
        latency: cfg.latency.nominal(),
        read_prob: cfg.profile.read_prob,
        seed: cfg.seed,
        committed: m.committed_total,
        aborted: m.aborted_total,
        measured: m.response.count(),
        mean_response: m.response.mean(),
        dropped: m.phases.spans_dropped,
        lease_expiries: m.faults.lease_expiries,
        recovery_stall: m.faults.recovery_stall,
        server_crashes: m.faults.server_crashes,
        response_p99: m.response_tail.quantile(0.99).unwrap_or(0),
        response_p999: m.response_tail.quantile(0.999).unwrap_or(0),
    };
    let label: String = m
        .protocol
        .chars()
        .filter(|c| *c != '-')
        .collect::<String>()
        .to_lowercase();
    let file = format!(
        "{label}_c{}_l{}_pr{}_s{}.jsonl",
        cfg.num_clients,
        cfg.latency.nominal(),
        cfg.profile.read_prob,
        cfg.seed
    );
    // The flight-recorder markers ride at the end of the stream, after
    // the raw events, so replaying the prefix stays byte-compatible with
    // pre-tail traces.
    let mut text = g2pl_obs::write_jsonl(&meta, spans);
    for ev in g2pl_obs::flight_markers(&m.flight) {
        text.push_str(&g2pl_obs::event_to_json(&ev));
        text.push('\n');
    }
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(dir.join(&file), text))
    {
        eprintln!(
            "warning: span trace export to {} failed: {e}",
            dir.display()
        );
    }
}

/// The outcome of `n` independent replications of one configuration.
#[derive(Debug)]
pub struct ReplicatedResult {
    /// Per-replication metrics, in replication order.
    pub runs: Vec<RunMetrics>,
    response: Replications,
    abort_pct: Replications,
    msgs_per_completion: Replications,
}

impl ReplicatedResult {
    /// Across-replication mean response time with 95% CI.
    pub fn response_ci(&self) -> ConfidenceInterval {
        self.response.interval_95()
    }

    /// Across-replication abort percentage with 95% CI.
    pub fn abort_pct_ci(&self) -> ConfidenceInterval {
        self.abort_pct.interval_95()
    }

    /// Across-replication messages per completed transaction with 95% CI.
    pub fn msgs_per_completion_ci(&self) -> ConfidenceInterval {
        self.msgs_per_completion.interval_95()
    }

    /// The pooled response-time sketch: every replication's per-commit
    /// sketch merged, so quantiles weight each measured commit equally.
    /// Present for every aggregated point (the engines always sketch).
    pub fn response_tail(&self) -> &TailSketch {
        self.response
            .pooled_sketch()
            // lint:allow(L3): aggregate() absorbs one sketch per replication, and reps >= 1 is asserted by run_grid
            .expect("aggregate pooled every replication's sketch")
    }

    /// The pooled p50/p90/p99/p999/max response summary.
    pub fn tail_summary(&self) -> TailSummary {
        self.response_tail().summary()
    }

    /// Number of replications.
    pub fn reps(&self) -> usize {
        self.runs.len()
    }
}

/// Derive the replication seeds from a base seed. Exposed so tests can
/// reproduce an individual replication.
pub fn replication_seed(base: u64, rep: u32) -> u64 {
    base ^ (0x5851_f42d_4c95_7f2d_u64.wrapping_mul(u64::from(rep) + 1))
}

/// One schedulable cell of a grid: a concrete config plus whether this
/// cell is its point's verified replication.
struct GridTask {
    cfg: EngineConfig,
    verify: bool,
}

fn run_task(t: &GridTask) -> RunMetrics {
    if t.verify {
        run_verified(&t.cfg)
    } else {
        timed_run(&t.cfg)
    }
}

/// Aggregate one point's replications (in replication order) into the
/// paper's across-replication statistics.
fn aggregate(runs: Vec<RunMetrics>) -> ReplicatedResult {
    let mut response = Replications::from_values(
        &runs
            .iter()
            .map(g2pl_protocols::RunMetrics::mean_response)
            .collect::<Vec<_>>(),
    );
    // Pool the per-replication quantile sketches. Sketch merging is
    // commutative, but replication order is fixed here anyway, so the
    // pooled sketch is bit-identical at any worker count.
    for m in &runs {
        response.absorb_sketch(&m.response_tail);
    }
    let abort_pct = Replications::from_values(
        &runs
            .iter()
            .map(g2pl_protocols::RunMetrics::abort_pct)
            .collect::<Vec<_>>(),
    );
    let msgs_per_completion = Replications::from_values(
        &runs
            .iter()
            .map(g2pl_protocols::RunMetrics::msgs_per_completion)
            .collect::<Vec<_>>(),
    );
    ReplicatedResult {
        runs,
        response,
        abort_pct,
        msgs_per_completion,
    }
}

/// Run `reps` replications of every point in `points` on one worker pool
/// and aggregate each point's metrics, in point order.
///
/// This is the sweep engine behind every figure: rather than finishing
/// one data point before starting the next, all `points.len() × reps`
/// cells are flattened into one task list that worker threads drain, so
/// a slow cell (high latency, many clients) overlaps with cheap ones.
/// Results land in a slot per `(point, replication)` and are aggregated
/// in replication order, so the output is bit-identical at any worker
/// count — including 1 (see [`set_grid_workers`]).
///
/// Unless disabled with [`set_verify`], replication 0 of every point
/// runs with recording on and is checked against properties P1–P7 and
/// conflict-serializability. Recording is passive — it perturbs no
/// random draw and no event — so the verified run's metrics stand in
/// for replication 0 exactly.
pub fn run_grid(points: &[EngineConfig], reps: u32) -> Vec<ReplicatedResult> {
    assert!(reps > 0, "need at least one replication");
    let verify_first = verify_enabled() || trace_out().is_some();
    let tasks: Vec<GridTask> = points
        .iter()
        .flat_map(|base| {
            (0..reps).map(move |r| {
                let mut cfg = base.clone();
                cfg.seed = replication_seed(base.seed, r);
                GridTask {
                    cfg,
                    verify: verify_first && r == 0,
                }
            })
        })
        .collect();

    let workers = grid_workers().min(tasks.len().max(1));
    let mut slots: Vec<Option<RunMetrics>> = tasks.iter().map(|_| None).collect();
    if workers <= 1 {
        for (slot, t) in slots.iter_mut().zip(&tasks) {
            *slot = Some(run_task(t));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots_mtx = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= tasks.len() {
                        break;
                    }
                    let m = run_task(&tasks[i]);
                    // lint:allow(L3): a poisoned lock means a runner thread already panicked; propagate it
                    slots_mtx.lock().expect("runner mutex poisoned")[i] = Some(m);
                });
            }
        });
    }

    let mut results = Vec::with_capacity(points.len());
    let mut it = slots.into_iter();
    for _ in 0..points.len() {
        let runs: Vec<RunMetrics> = (0..reps)
            .map(|_| {
                it.next()
                    .flatten()
                    // lint:allow(L3): the pool drains every task before scope exit
                    .expect("every replication ran")
            })
            .collect();
        results.push(aggregate(runs));
    }
    results
}

/// Run `reps` independent replications of `base` (differing only in
/// seed) and aggregate the paper's metrics: a single-point [`run_grid`].
pub fn run_replicated(base: &EngineConfig, reps: u32) -> ReplicatedResult {
    run_grid(std::slice::from_ref(base), reps)
        .pop()
        // lint:allow(L3): one point in, one result out
        .expect("one result per point")
}

#[cfg(test)]
mod tests {
    use super::*;
    use g2pl_protocols::ProtocolKind;

    fn cfg() -> EngineConfig {
        let mut c = EngineConfig::table1(ProtocolKind::S2pl, 5, 50, 0.5);
        c.warmup_txns = 20;
        c.measured_txns = 150;
        c
    }

    #[test]
    fn replications_differ_but_aggregate_deterministically() {
        let a = run_replicated(&cfg(), 3);
        let b = run_replicated(&cfg(), 3);
        assert_eq!(a.reps(), 3);
        // Same inputs => identical aggregate.
        assert_eq!(a.response_ci(), b.response_ci());
        assert_eq!(a.abort_pct_ci(), b.abort_pct_ci());
        // Different seeds => replications are not all identical.
        let means: Vec<f64> = a
            .runs
            .iter()
            .map(g2pl_protocols::RunMetrics::mean_response)
            .collect();
        assert!(means.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn replication_seeds_are_distinct() {
        let s: Vec<u64> = (0..10).map(|r| replication_seed(42, r)).collect();
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), s.len());
    }

    #[test]
    fn ci_half_width_is_finite_and_positive() {
        let r = run_replicated(&cfg(), 3);
        let ci = r.response_ci();
        assert!(ci.mean > 0.0);
        assert!(ci.half_width.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_reps_panics() {
        run_replicated(&cfg(), 0);
    }

    #[test]
    fn grid_results_are_per_point_and_in_order() {
        let mut a = cfg();
        let mut b = cfg();
        b.num_clients = 8;
        a.seed = 7;
        b.seed = 9;
        let r = run_grid(&[a.clone(), b.clone()], 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].reps(), 2);
        // Each grid result equals the point run on its own.
        assert_eq!(r[0].response_ci(), run_replicated(&a, 2).response_ci());
        assert_eq!(r[1].response_ci(), run_replicated(&b, 2).response_ci());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let a = cfg();
        let mut b = cfg();
        b.num_clients = 9;
        let serial = {
            set_grid_workers(Some(1));
            run_grid(&[a.clone(), b.clone()], 3)
        };
        let parallel = {
            set_grid_workers(Some(4));
            run_grid(&[a, b], 3)
        };
        set_grid_workers(None);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.response_ci(), p.response_ci());
            assert_eq!(s.abort_pct_ci(), p.abort_pct_ci());
            assert_eq!(s.msgs_per_completion_ci(), p.msgs_per_completion_ci());
            assert_eq!(
                s.response_tail(),
                p.response_tail(),
                "pooled sketches must be identical at any worker count"
            );
            for (x, y) in s.runs.iter().zip(&p.runs) {
                assert_eq!(x.response.mean(), y.response.mean());
                assert_eq!(x.net.messages(), y.net.messages());
                assert_eq!(x.events, y.events);
                assert_eq!(x.response_tail, y.response_tail);
                assert_eq!(x.flight, y.flight);
            }
        }
    }

    #[test]
    fn pooled_sketch_counts_every_measured_commit() {
        let r = run_replicated(&cfg(), 3);
        let per_run: u64 = r.runs.iter().map(|m| m.response.count()).sum();
        let pooled = r.response_tail();
        assert_eq!(pooled.count(), per_run);
        let s = r.tail_summary();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
        assert!(s.p999 <= s.max);
        // The pooled max is the largest per-run max.
        let max = r
            .runs
            .iter()
            .filter_map(|m| m.response_tail.max())
            .max()
            .unwrap();
        assert_eq!(s.max, max);
    }

    #[test]
    fn timed_runs_report_throughput() {
        let _ = take_perf(); // reset whatever other tests accumulated
        let m = timed_run(&cfg());
        assert!(m.wall_secs > 0.0, "caller stamps wall-clock time");
        assert!(m.events > 0);
        assert!(m.peak_calendar > 0);
        assert!(m.events_per_sec() > 0.0);
        let p = take_perf();
        assert!(p.runs >= 1);
        assert!(p.events >= m.events);
        assert!(p.events_per_sec() > 0.0);
        assert_eq!(take_perf().runs, 0, "take_perf drains the totals");
    }
}
