//! End-to-end server crash-recovery checks across all three engines.
//!
//! Each test runs a drained simulation under a plan that kills the
//! server twice mid-run, then verifies the full contract: the run
//! completes (drain = recovery liveness), the trace passes P1–P9, the
//! history is conflict-serializable, the WAL drains to empty, the same
//! `(seed, plan)` replays bit-for-bit, and an *inert* plan leaves the
//! pristine code path byte-identical to having no plan at all.

use g2pl_core::{check_serializable, check_trace_with, TraceCheckOpts};
use g2pl_protocols::{run, EngineConfig, FaultPlan, ProtocolKind, RunMetrics, ServerCrashWindow};

fn engines() -> [ProtocolKind; 3] {
    [
        ProtocolKind::g2pl_paper(),
        ProtocolKind::S2pl,
        ProtocolKind::C2pl,
    ]
}

fn crash_cfg(protocol: ProtocolKind) -> EngineConfig {
    let mut cfg = EngineConfig::table1(protocol, 8, 50, 0.4);
    cfg.warmup_txns = 50;
    cfg.measured_txns = 300;
    cfg.drain = true;
    cfg.trace_events = true;
    cfg.record_history = true;
    cfg.enable_wal = true;
    cfg.faults = Some(FaultPlan {
        server_crashes: vec![
            ServerCrashWindow::fixed(4_000, 1_200),
            ServerCrashWindow::fixed(15_000, 800),
        ],
        ..FaultPlan::default()
    });
    cfg
}

fn run_checked(cfg: &EngineConfig) -> RunMetrics {
    let m = run(cfg).expect("valid config");
    assert!(!m.trace_truncated(), "trace truncated; cannot verify");
    m
}

#[test]
fn crash_recovery_verifies_end_to_end() {
    for protocol in engines() {
        let cfg = crash_cfg(protocol);
        let m = run_checked(&cfg);
        assert_eq!(
            m.faults.server_crashes, 2,
            "{}: both scheduled crashes must fire",
            m.protocol
        );
        assert!(
            m.faults.reregistrations > 0,
            "{}: recovery must hear from surviving clients",
            m.protocol
        );
        let trace = m.trace.as_ref().expect("trace enabled");
        if let Err(e) = check_trace_with(trace, TraceCheckOpts::for_config(&cfg)) {
            panic!("{}: P1-P9 violated under server crashes: {e}", m.protocol);
        }
        let history = m.history.as_ref().expect("history enabled");
        if let Err(e) = check_serializable(history) {
            panic!("{}: serializability violated: {e}", m.protocol);
        }
        let wal = m.wal.as_ref().expect("wal enabled");
        assert_eq!(
            wal.end_live_records, 0,
            "{}: WAL must drain after recovery (every version home)",
            m.protocol
        );
    }
}

#[test]
fn crash_recovery_replays_bit_for_bit() {
    for protocol in engines() {
        let cfg = crash_cfg(protocol);
        let a = run_checked(&cfg);
        let b = run_checked(&cfg);
        assert_eq!(a.trace, b.trace, "{}: trace diverged on replay", a.protocol);
        assert_eq!(a.committed_total, b.committed_total);
        assert_eq!(a.aborted_total, b.aborted_total);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.faults.server_crashes, b.faults.server_crashes);
        assert_eq!(a.faults.reregistrations, b.faults.reregistrations);
    }
}

#[test]
fn inert_plan_is_byte_identical_to_no_plan() {
    // A plan that schedules nothing must leave the engine on its
    // fault-free code path: same trace, same clock, same totals as a
    // run with no plan at all. This anchors the x = 0 point of
    // fig_server_faults to the reliable-network figures.
    for protocol in engines() {
        let mut pristine = crash_cfg(protocol);
        pristine.faults = None;
        let mut inert = pristine.clone();
        inert.faults = Some(FaultPlan::default());
        let a = run_checked(&pristine);
        let b = run_checked(&inert);
        assert_eq!(
            a.trace, b.trace,
            "{}: inert plan perturbed the run",
            a.protocol
        );
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.committed_total, b.committed_total);
        assert_eq!(a.faults.server_crashes, 0);
        assert_eq!(b.faults.server_crashes, 0);
    }
}

#[test]
fn crash_recovery_composes_with_message_loss() {
    // Loss, duplication and a client crash layered on top of the server
    // outages: the full fault surface at once, still fully verified.
    for protocol in engines() {
        let mut cfg = crash_cfg(protocol);
        let plan = cfg.faults.as_mut().expect("plan set");
        plan.drop_prob = 0.02;
        plan.dup_prob = 0.01;
        plan.crashes.push(g2pl_protocols::CrashWindow {
            client: 3,
            at: 8_000,
            down_for: 2_000,
        });
        let m = run_checked(&cfg);
        assert_eq!(m.faults.server_crashes, 2, "{}", m.protocol);
        let trace = m.trace.as_ref().expect("trace enabled");
        if let Err(e) = check_trace_with(trace, TraceCheckOpts::for_config(&cfg)) {
            panic!("{}: P1-P9 violated under combined faults: {e}", m.protocol);
        }
        let history = m.history.as_ref().expect("history enabled");
        if let Err(e) = check_serializable(history) {
            panic!("{}: serializability violated: {e}", m.protocol);
        }
    }
}
