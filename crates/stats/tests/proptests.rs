//! Property-based tests of the statistics toolkit.

use g2pl_stats::{Counter, Histogram, Replications, RunningStats, TailSketch, WarmupFilter};
use proptest::prelude::*;

fn naive_mean_var(data: &[f64]) -> (f64, f64) {
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = if data.len() < 2 {
        0.0
    } else {
        data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
    };
    (mean, var)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Welford matches the two-pass computation to floating tolerance.
    #[test]
    fn welford_matches_naive(data in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = RunningStats::new();
        for &v in &data {
            s.record(v);
        }
        let (mean, var) = naive_mean_var(&data);
        let scale = 1.0 + mean.abs() + var.abs();
        prop_assert!((s.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((s.variance() - var).abs() / (1.0 + var) < 1e-6);
        prop_assert_eq!(s.count(), data.len() as u64);
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), Some(min));
        prop_assert_eq!(s.max(), Some(max));
    }

    /// Merging any split equals processing the whole stream.
    #[test]
    fn merge_any_split(
        data in proptest::collection::vec(-1e4f64..1e4, 2..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((data.len() as f64 * cut_frac) as usize).min(data.len());
        let mut whole = RunningStats::new();
        for &v in &data {
            whole.record(v);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &v in &data[..cut] {
            a.record(v);
        }
        for &v in &data[cut..] {
            b.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
    }

    /// Confidence intervals cover the sample mean, shrink with more
    /// replications of the same spread, and are symmetric.
    #[test]
    fn ci_properties(values in proptest::collection::vec(0.0f64..1e5, 2..40)) {
        let r = Replications::from_values(&values);
        let ci = r.interval_95();
        let (mean, _) = naive_mean_var(&values);
        prop_assert!((ci.mean - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        prop_assert!(ci.half_width >= 0.0);
        prop_assert!(ci.contains(ci.mean));
    }

    /// The warm-up filter admits exactly `keep` observations.
    #[test]
    fn warmup_admits_exactly_keep(warmup in 0u64..50, keep in 1u64..50, total in 0u64..200) {
        let mut f = WarmupFilter::new(warmup, Some(keep));
        let admitted = (0..total).filter(|_| f.admit()).count() as u64;
        let expect = total.saturating_sub(warmup).min(keep);
        prop_assert_eq!(admitted, expect);
        prop_assert_eq!(f.measured(), expect);
        prop_assert_eq!(f.is_complete(), total >= warmup + keep);
    }

    /// Histogram totals are conserved and quantiles are monotone.
    #[test]
    fn histogram_conservation(data in proptest::collection::vec(0.0f64..1e4, 1..300)) {
        let mut h = Histogram::new(100.0, 50);
        for &v in &data {
            h.record(v);
        }
        prop_assert_eq!(h.total(), data.len() as u64);
        let in_buckets: u64 = h.counts().iter().sum();
        prop_assert_eq!(in_buckets + h.overflow(), h.total());
        let q = [0.1, 0.5, 0.9, 1.0].map(|q| h.quantile(q).unwrap());
        prop_assert!(q.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Merging per-partition sketches equals one sketch over the whole
    /// stream, for any chunking and in any merge order — the property
    /// `run_grid` relies on when pooling replications.
    #[test]
    fn sketch_merge_any_split_any_order(
        data in proptest::collection::vec(0u64..5_000_000, 1..300),
        chunk in 1usize..50,
    ) {
        let mut whole = TailSketch::new();
        for &v in &data {
            whole.record(v);
        }
        let parts: Vec<TailSketch> = data
            .chunks(chunk)
            .map(|c| {
                let mut s = TailSketch::new();
                for &v in c {
                    s.record(v);
                }
                s
            })
            .collect();
        let mut fwd = TailSketch::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = TailSketch::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(&fwd, &whole);
        prop_assert_eq!(&rev, &whole);
    }

    /// On the same integer stream, the sketch's quantiles agree with the
    /// fixed-width histogram's to within the two structures' combined
    /// bucketing error: both report a conservative upper edge for the
    /// same order statistic (same `ceil(q·n)` target rule), the
    /// histogram within one bucket width, the sketch within a 2^-6
    /// relative bound.
    #[test]
    fn sketch_quantiles_match_histogram_within_bucket_error(
        data in proptest::collection::vec(0u64..50_000, 1..300),
    ) {
        const WIDTH: f64 = 64.0;
        let mut h = Histogram::new(WIDTH, 800); // covers [0, 51200): no overflow
        let mut s = TailSketch::new();
        for &v in &data {
            h.record(v as f64);
            s.record(v);
        }
        for q in [0.5, 0.9, 0.99, 1.0] {
            let hq = h.quantile(q).unwrap();
            let sq = s.quantile(q).unwrap() as f64;
            let tol = WIDTH + sq / 64.0 + 1.0;
            prop_assert!(
                (hq - sq).abs() <= tol,
                "q={}: hist {} vs sketch {} (tol {})", q, hq, sq, tol
            );
        }
    }

    /// Counter fraction is always hits/trials.
    #[test]
    fn counter_fraction(outcomes in proptest::collection::vec(any::<bool>(), 0..300)) {
        let mut c = Counter::new();
        for &o in &outcomes {
            c.record(o);
        }
        let hits = outcomes.iter().filter(|&&o| o).count() as u64;
        prop_assert_eq!(c.hits(), hits);
        prop_assert_eq!(c.trials(), outcomes.len() as u64);
        if !outcomes.is_empty() {
            prop_assert!((c.fraction() - hits as f64 / outcomes.len() as f64).abs() < 1e-12);
        }
    }
}
