//! Batch-means analysis for single long runs.
//!
//! The paper computes confidence intervals across 5 independent
//! replications. The classical alternative for one long run is the
//! method of batch means: split the (autocorrelated) observation stream
//! into `b` contiguous batches, treat the batch averages as approximately
//! independent samples, and build a Student-t interval over them. This
//! module provides that, plus a lag-1 autocorrelation estimate to judge
//! whether the chosen batch size has decorrelated the batches.

use crate::replication::ConfidenceInterval;
use crate::running::RunningStats;
use crate::tdist::t_975;
use serde::{Deserialize, Serialize};

/// Streaming batch-means accumulator with a fixed batch size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_n: u64,
    batches: Vec<f64>,
}

impl BatchMeans {
    /// Accumulate batches of `batch_size` observations each.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batches: Vec::new(),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// Completed batch means, in order.
    pub fn batches(&self) -> &[f64] {
        &self.batches
    }

    /// Number of completed batches.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// Grand mean over completed batches (0.0 when none).
    pub fn mean(&self) -> f64 {
        if self.batches.is_empty() {
            0.0
        } else {
            self.batches.iter().sum::<f64>() / self.batches.len() as f64
        }
    }

    /// 95% Student-t interval over the batch means. With fewer than two
    /// completed batches the half-width is zero.
    pub fn interval_95(&self) -> ConfidenceInterval {
        let mut s = RunningStats::new();
        for &b in &self.batches {
            s.record(b);
        }
        if s.count() < 2 {
            return ConfidenceInterval {
                mean: s.mean(),
                half_width: 0.0,
            };
        }
        ConfidenceInterval {
            mean: s.mean(),
            half_width: t_975(s.count() - 1) * s.std_err(),
        }
    }

    /// Lag-1 autocorrelation of the batch means; near zero means the
    /// batch size has decorrelated the stream and the interval is
    /// trustworthy. `None` with fewer than 3 batches.
    pub fn lag1_autocorrelation(&self) -> Option<f64> {
        let n = self.batches.len();
        if n < 3 {
            return None;
        }
        let mean = self.mean();
        let var: f64 = self.batches.iter().map(|b| (b - mean).powi(2)).sum();
        if var == 0.0 {
            return Some(0.0);
        }
        let cov: f64 = self
            .batches
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        Some(cov / var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_form_at_exact_boundaries() {
        let mut bm = BatchMeans::new(4);
        for i in 0..10 {
            bm.record(i as f64);
        }
        // Two complete batches: mean(0..4)=1.5, mean(4..8)=5.5; 8,9 pending.
        assert_eq!(bm.batches(), &[1.5, 5.5]);
        assert_eq!(bm.batch_count(), 2);
        assert_eq!(bm.mean(), 3.5);
    }

    #[test]
    fn interval_covers_constant_stream() {
        let mut bm = BatchMeans::new(5);
        for _ in 0..50 {
            bm.record(7.0);
        }
        let ci = bm.interval_95();
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(bm.lag1_autocorrelation(), Some(0.0));
    }

    #[test]
    fn interval_shrinks_with_more_batches() {
        let noisy = |n: usize, batch: u64| {
            let mut bm = BatchMeans::new(batch);
            for i in 0..n {
                bm.record(((i * 37) % 11) as f64);
            }
            bm.interval_95().half_width
        };
        let few = noisy(100, 10);
        let many = noisy(2000, 10);
        assert!(many < few, "more batches should tighten the interval");
    }

    #[test]
    fn strong_correlation_is_detected() {
        // A slow ramp makes adjacent batch means highly correlated.
        let mut bm = BatchMeans::new(5);
        for i in 0..200 {
            bm.record(i as f64);
        }
        let rho = bm.lag1_autocorrelation().unwrap();
        assert!(rho > 0.8, "ramp should correlate, rho = {rho}");
    }

    #[test]
    fn too_few_batches_no_autocorrelation() {
        let mut bm = BatchMeans::new(10);
        for i in 0..20 {
            bm.record(i as f64);
        }
        assert_eq!(bm.batch_count(), 2);
        assert_eq!(bm.lag1_autocorrelation(), None);
        // Two batches allow a (wide) interval; one batch does not.
        assert!(bm.interval_95().half_width > 0.0);

        let mut one = BatchMeans::new(15);
        for i in 0..20 {
            one.record(i as f64);
        }
        assert_eq!(one.batch_count(), 1);
        assert_eq!(one.interval_95().half_width, 0.0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        BatchMeans::new(0);
    }
}
