//! Ratio counters: hits over trials, e.g. percentage of transactions
//! aborted (Figures 8–11, 13, 15 of the paper).

use serde::{Deserialize, Serialize};

/// Counts successes and failures and reports a percentage.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Counter {
    hits: u64,
    trials: u64,
}

impl Counter {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one trial with the given outcome.
    pub fn record(&mut self, hit: bool) {
        self.trials += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Record a hit (increments trials too).
    pub fn hit(&mut self) {
        self.record(true);
    }

    /// Record a miss (increments trials too).
    pub fn miss(&mut self) {
        self.record(false);
    }

    /// Number of hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total trials recorded.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Hit fraction in `[0, 1]`; 0.0 when no trials recorded.
    pub fn fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }

    /// Hit percentage in `[0, 100]`.
    pub fn percentage(&self) -> f64 {
        self.fraction() * 100.0
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.hits += other.hits;
        self.trials += other.trials;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counter_is_zero() {
        let c = Counter::new();
        assert_eq!(c.fraction(), 0.0);
        assert_eq!(c.percentage(), 0.0);
        assert_eq!(c.trials(), 0);
    }

    #[test]
    fn percentage_matches_counts() {
        let mut c = Counter::new();
        for i in 0..10 {
            c.record(i < 4);
        }
        assert_eq!(c.hits(), 4);
        assert_eq!(c.trials(), 10);
        assert!((c.percentage() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn hit_and_miss_shorthands() {
        let mut c = Counter::new();
        c.hit();
        c.miss();
        c.miss();
        assert_eq!(c.hits(), 1);
        assert_eq!(c.trials(), 3);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Counter::new();
        a.hit();
        let mut b = Counter::new();
        b.miss();
        b.hit();
        a.merge(&b);
        assert_eq!(a.hits(), 2);
        assert_eq!(a.trials(), 3);
    }
}
