//! Transient-phase (warm-up) elimination.
//!
//! The paper: "The transient phase of the simulation runs was eliminated.
//! In each simulation run, 50000 transactions (excluding the transient
//! phase) were generated." We implement the same policy: discard the first
//! `warmup` *completed* observations, then keep exactly the next `keep`
//! observations (or all of them when `keep` is `None`).

use serde::{Deserialize, Serialize};

/// MSER-y truncation-point detection (White's Marginal Standard Error
/// Rule): given a completed-observation series, pick the truncation point
/// that minimises the marginal standard error of the remaining mean.
///
/// The paper simply states "the transient phase … was eliminated" without
/// saying how; this gives the workspace a principled way to choose the
/// warm-up count instead of hard-coding one. `batch` groups observations
/// into batch means first (MSER-5 uses `batch = 5`), which smooths the
/// statistic; the returned index is in raw-observation units and is
/// capped at half the series, per the usual rule that a truncation point
/// in the latter half means "run longer".
pub fn mser_truncation(data: &[f64], batch: usize) -> usize {
    assert!(batch > 0, "batch size must be positive");
    let batches: Vec<f64> = data
        .chunks(batch)
        .filter(|c| c.len() == batch)
        .map(|c| c.iter().sum::<f64>() / batch as f64)
        .collect();
    let n = batches.len();
    if n < 4 {
        return 0;
    }
    // Suffix sums let each candidate truncation be evaluated in O(1).
    let mut suffix_sum = vec![0.0; n + 1];
    let mut suffix_sq = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix_sum[i] = suffix_sum[i + 1] + batches[i];
        suffix_sq[i] = suffix_sq[i + 1] + batches[i] * batches[i];
    }
    let mut best = (f64::INFINITY, 0usize);
    for d in 0..n / 2 {
        let m = (n - d) as f64;
        let mean = suffix_sum[d] / m;
        let var = (suffix_sq[d] / m - mean * mean).max(0.0);
        let mser = var / m; // marginal standard error squared
        if mser < best.0 {
            best = (mser, d);
        }
    }
    best.1 * batch
}

/// Decides, per completed observation, whether it falls in the measured
/// window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WarmupFilter {
    warmup: u64,
    keep: Option<u64>,
    seen: u64,
}

impl WarmupFilter {
    /// Discard the first `warmup` observations; measure the next `keep`
    /// (all the rest when `keep` is `None`).
    pub fn new(warmup: u64, keep: Option<u64>) -> Self {
        WarmupFilter {
            warmup,
            keep,
            seen: 0,
        }
    }

    /// Register the next observation; returns `true` iff it should be
    /// measured.
    pub fn admit(&mut self) -> bool {
        let i = self.seen;
        self.seen += 1;
        if i < self.warmup {
            return false;
        }
        match self.keep {
            None => true,
            Some(k) => i - self.warmup < k,
        }
    }

    /// True once `warmup + keep` observations have been seen (never true
    /// for an unbounded filter).
    pub fn is_complete(&self) -> bool {
        match self.keep {
            None => false,
            Some(k) => self.seen >= self.warmup + k,
        }
    }

    /// Observations seen so far (measured or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Observations measured so far.
    pub fn measured(&self) -> u64 {
        let past_warmup = self.seen.saturating_sub(self.warmup);
        match self.keep {
            None => past_warmup,
            Some(k) => past_warmup.min(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discards_warmup_then_keeps_window() {
        let mut f = WarmupFilter::new(3, Some(2));
        let admitted: Vec<bool> = (0..7).map(|_| f.admit()).collect();
        assert_eq!(
            admitted,
            vec![false, false, false, true, true, false, false]
        );
        assert!(f.is_complete());
        assert_eq!(f.measured(), 2);
        assert_eq!(f.seen(), 7);
    }

    #[test]
    fn unbounded_keep_admits_everything_after_warmup() {
        let mut f = WarmupFilter::new(2, None);
        assert!(!f.admit());
        assert!(!f.admit());
        for _ in 0..100 {
            assert!(f.admit());
        }
        assert!(!f.is_complete());
        assert_eq!(f.measured(), 100);
    }

    #[test]
    fn zero_warmup_admits_immediately() {
        let mut f = WarmupFilter::new(0, Some(1));
        assert!(f.admit());
        assert!(f.is_complete());
        assert!(!f.admit());
    }

    #[test]
    fn complete_exactly_at_boundary() {
        let mut f = WarmupFilter::new(1, Some(1));
        f.admit();
        assert!(!f.is_complete());
        f.admit();
        assert!(f.is_complete());
    }

    #[test]
    fn mser_finds_obvious_transient() {
        // 100 inflated start-up observations, then 400 at steady state.
        let data: Vec<f64> = (0..500)
            .map(|i| {
                if i < 100 {
                    100.0 - i as f64
                } else {
                    2.0 + ((i % 7) as f64) * 0.1
                }
            })
            .collect();
        let cut = mser_truncation(&data, 5);
        assert!(
            (80..=140).contains(&cut),
            "expected a cut near 100, got {cut}"
        );
    }

    #[test]
    fn mser_on_stationary_series_cuts_little() {
        let data: Vec<f64> = (0..400)
            .map(|i| 5.0 + ((i * 31) % 11) as f64 * 0.01)
            .collect();
        let cut = mser_truncation(&data, 5);
        assert!(
            cut <= 120,
            "stationary series should need no warm-up, got {cut}"
        );
    }

    #[test]
    fn mser_short_series_returns_zero() {
        assert_eq!(mser_truncation(&[1.0, 2.0, 3.0], 5), 0);
        assert_eq!(mser_truncation(&[], 5), 0);
    }

    #[test]
    fn mser_cap_at_half() {
        // Monotonically improving forever: the cut is capped below n/2.
        let data: Vec<f64> = (0..300).map(|i| 300.0 - i as f64).collect();
        let cut = mser_truncation(&data, 5);
        assert!(cut < 150, "cap violated: {cut}");
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn mser_zero_batch_panics() {
        mser_truncation(&[1.0], 0);
    }
}
