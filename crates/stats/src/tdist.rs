//! Two-sided Student-t critical values.
//!
//! The paper computes 95% confidence intervals from 5 independent
//! replications, i.e. t(0.975, df = 4) = 2.776. We table the small
//! degrees of freedom exactly and fall back to an asymptotic
//! approximation (Normal quantile plus the Cornish–Fisher t-correction)
//! for large df, which is accurate to <0.1% for df > 30.

/// t critical value for a two-sided 95% confidence interval with `df`
/// degrees of freedom.
///
/// # Panics
/// Panics if `df == 0`.
pub fn t_975(df: u64) -> f64 {
    // Standard table, df = 1..=30.
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    assert!(df > 0, "degrees of freedom must be positive");
    if df <= 30 {
        TABLE[(df - 1) as usize]
    } else {
        // z_{0.975} with the first-order 1/df expansion of the t quantile:
        // t = z + (z^3 + z) / (4 df).
        let z = 1.959_963_985;
        z + (z * z * z + z) / (4.0 * df as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_replications_use_df_four() {
        assert!((t_975(4) - 2.776).abs() < 1e-9);
    }

    #[test]
    fn table_boundaries() {
        assert!((t_975(1) - 12.706).abs() < 1e-9);
        assert!((t_975(30) - 2.042).abs() < 1e-9);
    }

    #[test]
    fn asymptotic_is_monotone_and_approaches_z() {
        let mut prev = t_975(31);
        for df in [40, 60, 120, 1000, 100_000] {
            let t = t_975(df);
            assert!(t < prev, "t should decrease with df");
            prev = t;
        }
        assert!((t_975(1_000_000) - 1.96).abs() < 1e-3);
    }

    #[test]
    fn continuity_at_table_edge() {
        // df=30 table value vs df=31 approximation should be close.
        assert!((t_975(30) - t_975(31)).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn zero_df_panics() {
        t_975(0);
    }
}
