//! Across-replication analysis.
//!
//! Each simulation data point in the paper is the average over 5
//! independent replications with a 95% Student-t confidence interval; the
//! relative precision (half-width / mean) "never exceeded 2% of the mean
//! values". [`Replications`] reproduces that analysis for any metric.

use crate::running::RunningStats;
use crate::sketch::TailSketch;
use crate::tdist::t_975;
use serde::{Deserialize, Serialize};

/// A symmetric confidence interval around a mean.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate: the across-replication mean.
    pub mean: f64,
    /// Half-width of the 95% interval; the interval is `mean ± half_width`.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Relative precision: half-width as a fraction of the mean
    /// (`f64::INFINITY` when the mean is zero but the half-width is not).
    pub fn relative_precision(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            (self.half_width / self.mean).abs()
        }
    }

    /// Whether `value` falls inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.half_width
    }
}

/// Collects one summary value per independent replication and produces the
/// across-replication mean and 95% confidence interval.
///
/// # Example
/// ```
/// use g2pl_stats::Replications;
/// let mut r = Replications::new();
/// for v in [10.0, 11.0, 9.5, 10.2, 10.3] {
///     r.record(v);
/// }
/// let ci = r.interval_95();
/// assert!(ci.contains(10.2));
/// assert!(ci.relative_precision() < 0.1);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Replications {
    stats: RunningStats,
    values: Vec<f64>,
    /// Pooled quantile sketch across replications, when the metric has
    /// one (response-time metrics do; ratio metrics don't). Lazily
    /// allocated so sketch-less metrics pay nothing.
    pooled: Option<TailSketch>,
}

impl Replications {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build directly from per-replication values.
    pub fn from_values(values: &[f64]) -> Self {
        let mut r = Self::new();
        for &v in values {
            r.record(v);
        }
        r
    }

    /// Record one replication's summary value.
    pub fn record(&mut self, value: f64) {
        self.stats.record(value);
        self.values.push(value);
    }

    /// Merge one replication's per-observation quantile sketch into the
    /// pooled across-replication sketch. Pooling is element-wise count
    /// addition, so — unlike the mean-of-means CI — the pooled quantiles
    /// weight every *observation* equally and are independent of the
    /// order replications arrive in.
    pub fn absorb_sketch(&mut self, sketch: &TailSketch) {
        self.pooled
            .get_or_insert_with(TailSketch::new)
            .merge(sketch);
    }

    /// The pooled across-replication sketch; `None` until the first
    /// [`absorb_sketch`](Self::absorb_sketch).
    pub fn pooled_sketch(&self) -> Option<&TailSketch> {
        self.pooled.as_ref()
    }

    /// Number of replications recorded.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Raw per-replication values, in recording order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Across-replication mean.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// 95% two-sided Student-t confidence interval.
    ///
    /// With fewer than 2 replications the half-width is 0 (a point
    /// estimate), matching how a single-run smoke test is reported.
    pub fn interval_95(&self) -> ConfidenceInterval {
        let n = self.stats.count();
        if n < 2 {
            return ConfidenceInterval {
                mean: self.stats.mean(),
                half_width: 0.0,
            };
        }
        let t = t_975(n - 1);
        ConfidenceInterval {
            mean: self.stats.mean(),
            half_width: t * self.stats.std_err(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_give_zero_width() {
        let r = Replications::from_values(&[5.0; 5]);
        let ci = r.interval_95();
        assert_eq!(ci.mean, 5.0);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.relative_precision(), 0.0);
    }

    #[test]
    fn five_reps_use_t_of_four() {
        let r = Replications::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let ci = r.interval_95();
        // std dev = sqrt(2.5), std err = sqrt(2.5/5) = sqrt(0.5)
        let expect = 2.776 * (0.5f64).sqrt();
        assert!((ci.half_width - expect).abs() < 1e-9);
        assert_eq!(ci.mean, 3.0);
    }

    #[test]
    fn single_rep_is_point_estimate() {
        let r = Replications::from_values(&[7.0]);
        let ci = r.interval_95();
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn pooled_sketch_weights_observations_not_replications() {
        let mut r = Replications::new();
        assert!(r.pooled_sketch().is_none());
        // Rep 1: 9 obs of 10; rep 2: 1 obs of 1000. Pooled p90 must see
        // a 10-obs stream (9 fast + 1 slow), not a 2-value mean stream.
        let mut a = TailSketch::new();
        for _ in 0..9 {
            a.record(10);
        }
        let mut b = TailSketch::new();
        b.record(1000);
        r.record(10.0);
        r.absorb_sketch(&a);
        r.record(1000.0);
        r.absorb_sketch(&b);
        let pooled = r.pooled_sketch().unwrap();
        assert_eq!(pooled.count(), 10);
        assert_eq!(pooled.quantile(0.9), Some(10));
        assert_eq!(pooled.quantile(1.0), Some(1000));
    }

    #[test]
    fn contains_is_symmetric() {
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
        };
        assert!(ci.contains(8.0));
        assert!(ci.contains(12.0));
        assert!(!ci.contains(12.1));
        assert!(!ci.contains(7.9));
    }

    #[test]
    fn relative_precision_of_zero_mean() {
        let ci = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
        };
        assert!(ci.relative_precision().is_infinite());
        let ci0 = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.0,
        };
        assert_eq!(ci0.relative_precision(), 0.0);
    }
}
