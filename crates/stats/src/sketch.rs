//! Deterministic, mergeable quantile sketch over integer simulation ticks.
//!
//! The paper reports means; the tail work (ROADMAP item 5) needs
//! p99/p999. A sampling-based sketch (GK, KLL, t-digest) would trade
//! determinism for memory, but the simulation clock is *integral*, so a
//! log-bucketed histogram in the style of HDR histograms gives exact,
//! order-independent behaviour with a hard relative-error bound:
//!
//! * every `record` maps a tick count to one of ~3.8k fixed buckets —
//!   no data-dependent splits, no randomness;
//! * `merge` is element-wise count addition, which is commutative and
//!   associative, so replication merges in `run_grid` produce identical
//!   sketches regardless of worker interleaving (the serial==parallel
//!   invariant of `tests/grid_determinism.rs` extends to quantiles);
//! * values below `2^(SUB_BITS+1)` are stored exactly; above that, each
//!   octave is split into `2^SUB_BITS` sub-buckets, bounding the
//!   relative quantile error by `2^-SUB_BITS` (1.5625% at the default
//!   `SUB_BITS = 6`).
//!
//! Reported quantiles are bucket *upper edges* clamped to the observed
//! maximum, so `quantile(1.0)` is the exact max and every estimate is a
//! conservative (never-understated) tail bound.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` buckets, so relative bucket width — and therefore the
/// worst-case relative quantile error — is `2^-SUB_BITS` ≈ 1.5625%.
pub const SUB_BITS: u32 = 6;

const SUB: u64 = 1 << SUB_BITS;
/// Octaves with exponent `e in SUB_BITS..=63` each contribute `SUB`
/// buckets, plus the exact region `[0, 2^SUB_BITS)` at the front.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// The five-number tail summary a sketch reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TailSummary {
    /// Observations summarised.
    pub count: u64,
    /// Median (ticks, conservative upper edge).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Exact maximum observation.
    pub max: u64,
}

/// Log-bucketed integer histogram with deterministic quantiles and
/// order-independent merge. See the module docs for the design.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TailSketch {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for TailSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value: exact below `SUB`, otherwise
/// `(msb - SUB_BITS + 1)` octaves in, sub-indexed by the `SUB_BITS`
/// bits below the leading one.
fn index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let sub = (v >> (e - SUB_BITS)) - SUB;
        (((e - SUB_BITS + 1) << SUB_BITS) + sub as u32) as usize
    }
}

/// Largest value mapping to bucket `i` (the reported quantile edge).
fn upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        i
    } else {
        let octave = i >> SUB_BITS; // = e - SUB_BITS + 1, ≥ 1
        let sub = i & (SUB - 1);
        let shift = (octave - 1) as u32; // = e - SUB_BITS
                                         // `((sub + SUB + 1) << shift) - 1`, written to avoid the u64
                                         // overflow in the very top bucket (where the edge is u64::MAX).
        ((sub + SUB) << shift) + ((1u64 << shift) - 1)
    }
}

impl TailSketch {
    /// Empty sketch (allocates the full fixed bucket array, ~30 KiB).
    pub fn new() -> Self {
        TailSketch {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
        }
    }

    /// Record one observation (in ticks).
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[index(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Total observations recorded (including via merges).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether the sketch has seen no observations.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact maximum observation; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Fold `other` into `self`: element-wise count addition. Commutative
    /// and associative, so any merge tree over the same multiset of
    /// observations yields an identical sketch.
    pub fn merge(&mut self, other: &TailSketch) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// `q`-quantile (0 ≤ q ≤ 1) as a bucket upper edge clamped to the
    /// observed max, so the estimate never understates the tail and
    /// `quantile(1.0)` is exact. `None` when empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(upper(i).min(self.max));
            }
        }
        // Unreachable: cumulative counts sum to `total >= target`.
        Some(self.max)
    }

    /// The p50/p90/p99/p999/max summary (all zeros when empty).
    pub fn summary(&self) -> TailSummary {
        TailSummary {
            count: self.total,
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            p999: self.quantile(0.999).unwrap_or(0),
            max: self.max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        // Everything below 2^(SUB_BITS+1) lands in a width-1 bucket.
        for v in 0..(2 * SUB) {
            let i = index(v);
            assert_eq!(upper(i), v, "value {v} not exact");
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Walking v upward never skips or reverses a bucket, and each
        // bucket's upper edge really is its largest member.
        let mut prev = 0;
        for v in 0..4096u64 {
            let i = index(v);
            assert!(i == prev || i == prev + 1, "gap at {v}: {prev} -> {i}");
            assert!(upper(i) >= v, "upper({i}) < {v}");
            if index(v + 1) != i {
                assert_eq!(upper(i), v, "upper edge of bucket {i}");
            }
            prev = i;
        }
        assert_eq!(index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        let bound = 1.0 / SUB as f64;
        for &v in &[1000u64, 12_345, 999_999, 1 << 40, u64::MAX / 3] {
            let u = upper(index(v));
            let err = (u - v) as f64 / v as f64;
            assert!(err <= bound, "value {v}: edge {u}, err {err}");
        }
    }

    #[test]
    fn golden_quantiles_uniform() {
        // 1..=10_000 uniform: q-quantile is q*10_000, within the bound.
        let mut s = TailSketch::new();
        for v in 1..=10_000u64 {
            s.record(v);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 10_000);
        assert_eq!(sum.max, 10_000);
        for (got, want) in [
            (sum.p50, 5_000.0),
            (sum.p90, 9_000.0),
            (sum.p99, 9_900.0),
            (sum.p999, 9_990.0),
        ] {
            assert!(got as f64 >= want, "conservative: {got} < {want}");
            assert!(
                got as f64 <= want * (1.0 + 1.0 / SUB as f64) + 1.0,
                "estimate {got} too far above {want}"
            );
        }
    }

    #[test]
    fn golden_quantiles_bimodal() {
        // 99% fast (10 ticks) + 1% slow (100_000 ticks): the p99 splits
        // the modes, p999 and max sit on the slow mode.
        let mut s = TailSketch::new();
        for _ in 0..990 {
            s.record(10);
        }
        for _ in 0..10 {
            s.record(100_000);
        }
        let sum = s.summary();
        assert_eq!(sum.p50, 10);
        assert_eq!(sum.p90, 10);
        assert_eq!(sum.p99, 10);
        assert!(sum.p999 >= 100_000 && sum.p999 <= 101_563);
        assert_eq!(sum.max, 100_000);
    }

    #[test]
    fn quantile_one_is_exact_max() {
        let mut s = TailSketch::new();
        for &v in &[3u64, 7, 12_345, 999] {
            s.record(v);
        }
        assert_eq!(s.quantile(1.0), Some(12_345));
        assert_eq!(s.max(), Some(12_345));
    }

    #[test]
    fn empty_sketch_reports_none() {
        let s = TailSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.summary(), TailSummary::default());
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = TailSketch::new();
        let mut a = TailSketch::new();
        let mut b = TailSketch::new();
        for v in 0..1000u64 {
            let x = v * v % 7919;
            all.record(x);
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all, "merge must equal the unsplit stream");
        assert_eq!(ba, all, "merge must be order-independent");
    }
}
