//! # g2pl-stats
//!
//! Output-analysis statistics for the g-2PL simulation study.
//!
//! The paper's methodology (§5): the transient phase of each run is
//! eliminated, 50 000 transactions are generated per run, and 95%
//! confidence intervals on the mean transaction response time are computed
//! from 5 independent replications, with relative precision never worse
//! than 2% of the mean. This crate provides exactly those tools:
//!
//! * [`RunningStats`] — numerically stable (Welford) streaming moments;
//! * [`tdist`] — two-sided Student-t critical values for small samples;
//! * [`Replications`] — across-replication mean / 95% CI / relative
//!   precision;
//! * [`Histogram`] — fixed-width histograms for response-time shapes;
//! * [`WarmupFilter`] — transient-phase elimination by observation count;
//! * [`Counter`] — ratio counters (e.g. percentage of transactions
//!   aborted);
//! * [`BatchMeans`] — single-run batch-means intervals with an
//!   autocorrelation diagnostic;
//! * [`TailSketch`] — deterministic, mergeable log-bucketed quantile
//!   sketch over integer ticks (p50/p90/p99/p999/max with a
//!   `2^-SUB_BITS` relative-error bound).

pub mod batch;
pub mod counter;
pub mod histogram;
pub mod replication;
pub mod running;
pub mod sketch;
pub mod tdist;
pub mod warmup;

pub use batch::BatchMeans;
pub use counter::Counter;
pub use histogram::Histogram;
pub use replication::{ConfidenceInterval, Replications};
pub use running::RunningStats;
pub use sketch::{TailSketch, TailSummary};
pub use warmup::WarmupFilter;
