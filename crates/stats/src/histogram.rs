//! Fixed-width histograms for response-time distributions.

use serde::{Deserialize, Serialize};

/// A fixed-bucket-width histogram over `[0, bucket_width * buckets)`, with
/// an overflow bucket for larger values.
///
/// Used to inspect response-time *shapes* (the paper only reports means,
/// but tails explain why g-2PL's grouping helps hot items).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Histogram with `buckets` buckets of width `bucket_width`.
    ///
    /// # Panics
    /// Panics if `bucket_width <= 0` or `buckets == 0`.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Record one (non-negative) observation.
    pub fn record(&mut self, value: f64) {
        debug_assert!(value >= 0.0, "histogram values must be non-negative");
        self.total += 1;
        let idx = (value / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of observations, including overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts (excluding overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fold `other` into `self` by element-wise count addition —
    /// commutative and associative, like [`crate::TailSketch::merge`],
    /// so merge order never matters.
    ///
    /// # Panics
    /// Panics if the two histograms have different bucket geometry
    /// (width or bucket count): their counts are not comparable.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.bucket_width == other.bucket_width && self.counts.len() == other.counts.len(),
            "histogram merge requires identical geometry: {}x{} vs {}x{}",
            self.counts.len(),
            self.bucket_width,
            other.counts.len(),
            other.bucket_width,
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) by bucket upper edge; `None`
    /// for an empty histogram. The overflow bucket reports `f64::INFINITY`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some((i + 1) as f64 * self.bucket_width);
            }
        }
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(10.0, 3);
        h.record(0.0);
        h.record(9.99);
        h.record(10.0);
        h.record(25.0);
        h.record(35.0); // overflow
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let q50 = h.quantile(0.5).unwrap();
        let q90 = h.quantile(0.9).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q50 <= q90 && q90 <= q99);
        assert!((q50 - 50.0).abs() <= 1.0);
        assert!((q90 - 90.0).abs() <= 1.0);
    }

    #[test]
    fn merge_adds_counts_and_overflow() {
        let mut a = Histogram::new(10.0, 3);
        let mut b = Histogram::new(10.0, 3);
        a.record(5.0);
        a.record(35.0); // overflow
        b.record(5.0);
        b.record(15.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1, 0]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "identical geometry")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(10.0, 3);
        let b = Histogram::new(5.0, 3);
        a.merge(&b);
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn overflow_quantile_is_infinite() {
        let mut h = Histogram::new(1.0, 2);
        h.record(100.0);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
    }
}
