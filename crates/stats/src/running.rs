//! Streaming sample moments (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Numerically stable running mean / variance / min / max.
///
/// # Example
/// ```
/// use g2pl_stats::RunningStats;
/// let mut s = RunningStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite observation: {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0.0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (divides by `n - 1`); 0.0 when `n < 2`.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_sane() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut s = RunningStats::new();
        for &v in &data {
            s.record(v);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &v in &data {
            whole.record(v);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &v in &data[..123] {
            a.record(v);
        }
        for &v in &data[123..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.record(1.0);
        a.record(2.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }
}
