//! Fixture: L3 violations — panicking calls in non-test engine code,
//! plus a malformed allow marker. Never compiled; scanned by
//! `tests/fixtures.rs`.

fn first_waiter(queue: &[u32]) -> u32 {
    // L3: unwrap in engine code.
    queue.first().copied().unwrap()
}

fn holder(map: &std::collections::BTreeMap<u32, u32>, k: u32) -> u32 {
    // L3: expect in engine code.
    *map.get(&k).expect("holder must exist")
}

fn reject(mode: u8) {
    if mode > 2 {
        // L3: panic! in engine code.
        panic!("bad mode {mode}");
    }
}

fn bad_marker(queue: &[u32]) -> u32 {
    // lint:allow(L3)
    queue.last().copied().unwrap()
}
