//! L6 fixture: write-ahead ordering. `broadcast_first` ships the grant
//! before the log append that records it (the seeded violation);
//! `log_then_send` appends first and must stay clean, as must the
//! send/append pair sitting on mutually exclusive match arms.

impl Server {
    pub fn broadcast_first(&mut self) {
        self.net.send(Msg::Grant); // seeded: send precedes the append below
        self.log.append(ServerRecord::Granted);
    }

    pub fn log_then_send(&mut self) {
        self.log.append(ServerRecord::Granted);
        self.net.send(Msg::Grant); // clean: the record is durable first
    }

    pub fn arm_isolated(&mut self, ev: Event) {
        match ev {
            Event::Persist => {
                self.log.append(LogRecord::Sealed);
            }
            Event::Ship => {
                // clean: the append above is on a mutually exclusive arm
                self.net.send(Msg::Grant);
            }
        }
    }
}
