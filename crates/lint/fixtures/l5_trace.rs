//! L5 fixture (driver): emits `TraceKind::Granted` (so that variant is
//! covered), drives the transaction state machine, and seeds a decision
//! function (`dispatch`) that records no trace event at all.

pub fn grant(obs: &mut Obs, txn: &mut Txn) {
    txn.set_status(TxnStatus::Active);
    obs.record(TraceKind::Granted); // clean: emission site for Granted
}

pub fn dispatch(queue: &mut Queue) {
    // seeded: protocol decision with no `.record(..)` / `.spans` touch
    queue.push_back(1);
}

pub fn inspect(k: &TraceKind) -> bool {
    // clean: consumers never count as emissions
    matches!(k, TraceKind::Ghost)
}
