//! Fixture: L1 violations — iteration over hashed collections in what
//! would be engine decision paths. Never compiled; scanned by
//! `tests/fixtures.rs`.

use std::collections::{HashMap, HashSet};

struct VictimTable {
    waiters: HashMap<u32, u64>,
    parked: HashSet<u32>,
}

impl VictimTable {
    fn pick_victim(&self) -> Option<u32> {
        // L1: iteration order decides the victim.
        self.waiters.keys().min().copied()
    }

    fn drain_parked(&mut self) -> Vec<u32> {
        // L1: drain order flows into the caller.
        self.parked.drain().collect()
    }

    fn sum_costs(&self) -> u64 {
        let mut total = 0;
        // L1: for-loop over a HashMap.
        for (_, cost) in &self.waiters {
            total += cost;
        }
        total
    }
}
