//! SM fixture: a transaction state machine with a seeded dead state.
//! `Wedged` is only ever entered from itself, so it is unreachable from
//! the initial `Active` — both the state and its self-transition must
//! be flagged. The `Active -> Committed` path is live and stays clean.

pub enum TxnStatus {
    Active,
    Wedged, // seeded: unreachable from Active
    Committed,
}

pub fn open(txn_id: u64) -> Txn {
    Txn {
        id: txn_id,
        status: TxnStatus::Active,
    }
}

impl Txn {
    pub fn seal(&mut self) {
        self.set_status(TxnStatus::Committed); // clean: implicit Active -> Committed
    }

    pub fn wedge_more(&mut self) {
        if self.status == TxnStatus::Wedged {
            self.set_status(TxnStatus::Wedged); // seeded: source state is dead
        }
    }
}
