//! L4 fixture: RNG-stream discipline. Seeds four violations — an
//! unnamed stream, a non-literal label, a duplicate literal, and a
//! literal that shadows an indexed family. The uniquely named streams
//! must stay clean.

pub struct Engine {
    rng: RngStream,
}

pub fn build(seed: u64, label: &str) -> Engine {
    let unnamed = RngStream::new(seed); // seeded: unnamed stream
    let opaque = RngStream::derive(seed, label); // seeded: non-literal label
    let first = RngStream::derive(seed, "net");
    let dup = RngStream::derive(seed, "net"); // seeded: duplicate of "net"
    let family = RngStream::derive_indexed(seed, "client", 7);
    let shadow = RngStream::derive(seed, "client-3"); // seeded: shadows client-<n>
    let unique = RngStream::derive(seed, "workload"); // clean: unique label
    let _ = (unnamed, opaque, first, dup, family, shadow, unique);
    Engine {
        rng: RngStream::derive(seed, "engine"),
    }
}
