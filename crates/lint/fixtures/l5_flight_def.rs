//! L5 fixture (definitions): the flight-recorder span vocabulary.
//! `SlowTxn` is the export-time marker the driver fixture emits in
//! expression position; `FlightGhost` is seeded as a variant nothing
//! ever emits (consumption via `matches!` must not count).

pub enum SpanKind {
    SlowTxn,
    FlightGhost, // seeded: never emitted anywhere
}
