//! Fixture: clean engine code — deterministic collections, no ambient
//! time or entropy, no panics outside tests, one justified allow.
//! Never compiled; scanned by `tests/fixtures.rs`.

use std::collections::{BTreeMap, HashMap};

struct LockTable {
    held: BTreeMap<u32, u32>,
    cache: HashMap<u32, u32>,
}

impl LockTable {
    fn holders_in_order(&self) -> Vec<u32> {
        // BTreeMap iterates in key order — deterministic.
        self.held.keys().copied().collect()
    }

    fn lookup(&self, k: u32) -> Option<u32> {
        // Point lookups on a HashMap are order-free and fine.
        self.cache.get(&k).copied()
    }

    fn must_hold(&self, k: u32) -> u32 {
        // lint:allow(L3): callers establish the hold one frame up
        *self.held.get(&k).expect("hold exists")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v: Vec<u32> = vec![1];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}
