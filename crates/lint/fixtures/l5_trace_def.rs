//! L5 fixture (definitions): the trace vocabulary. `Ghost` is seeded as
//! a variant no engine ever emits; `Granted` is emitted by the driver
//! fixture and must stay clean.

pub enum TraceKind {
    Granted,
    Ghost, // seeded: never emitted anywhere
}
