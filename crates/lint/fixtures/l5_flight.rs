//! L5 fixture (driver): appends `SpanKind::SlowTxn` markers at export
//! time — an expression-position emission outside the defining file,
//! the same shape as `g2pl_obs::export::flight_markers` — and consumes
//! `FlightGhost` without ever emitting it.

pub fn flight_markers(flight: &[TxnDetail]) -> Vec<SpanEvent> {
    let mut out = Vec::new();
    for (i, d) in flight.iter().enumerate() {
        let mut ev = SpanEvent::new(d.end, SpanKind::SlowTxn, Some(d.txn), None);
        ev.n = (i + 1) as u32;
        out.push(ev);
    }
    out
}

pub fn is_marker(k: &SpanKind) -> bool {
    // clean: consumers never count as emissions
    matches!(k, SpanKind::FlightGhost)
}
