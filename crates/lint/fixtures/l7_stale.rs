//! L7 fixture: allow-marker hygiene. Seeds a stale allow (the panic it
//! once excused is gone) and a malformed marker, and keeps one live
//! allow that must stay accepted.

pub fn stale_site(v: &[u64]) -> u64 {
    // lint:allow(L3): the slice is non-empty by construction
    v.first().copied().unwrap_or(0)
}

pub fn live_site(v: &[u64]) -> u64 {
    // lint:allow(L3): fixture models a justified invariant hold
    v.first().unwrap()
}

pub fn typo_site(v: &[u64]) -> u64 {
    // lint:allow(L9): no such lint family exists
    v.len() as u64
}
