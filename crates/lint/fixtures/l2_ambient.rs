//! Fixture: L2 violations — ambient time and entropy outside `simcore`.
//! Never compiled; scanned by `tests/fixtures.rs`.

use std::time::Instant;

fn stamp_request() -> u128 {
    // L2: wall-clock reads make runs irreproducible.
    Instant::now().elapsed().as_nanos()
}

fn wall_clock_seed() -> u64 {
    // L2: SystemTime as a seed source.
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn jitter() -> f64 {
    // L2: ambient entropy.
    rand::thread_rng().gen::<f64>()
}
