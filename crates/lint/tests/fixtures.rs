//! End-to-end fixture tests: each `fixtures/*.rs` file seeds the exact
//! violations its lint family must catch (and clean look-alikes the
//! family must NOT catch), and the tests pin the golden diagnostics —
//! file, line, lint tag, and the load-bearing part of the message.
//! Lines are located by searching for the seeded snippet, so editing a
//! fixture's doc comment cannot silently rot the expectations.

use g2pl_lint::{analyze_sources, lint_source, machine, Diagnostic, FileConfig, Lint, SourceFile};

fn findings(fixture: &str, source: &str) -> Vec<Diagnostic> {
    lint_source(fixture, source, FileConfig::default())
}

/// 1-based line of the first fixture line containing `needle`.
fn line_of(src: &str, needle: &str) -> usize {
    src.lines()
        .position(|l| l.contains(needle))
        .unwrap_or_else(|| panic!("fixture lost its seeded snippet {needle:?}"))
        + 1
}

fn source(path: &str, text: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        text: text.to_string(),
        config: FileConfig::default(),
    }
}

#[test]
fn l1_fixture_trips_only_l1() {
    let diags = findings(
        "fixtures/l1_hash_iteration.rs",
        include_str!("../fixtures/l1_hash_iteration.rs"),
    );
    assert!(
        diags.len() >= 3,
        "expected the 3 seeded violations: {diags:?}"
    );
    assert!(diags.iter().all(|d| d.lint == Lint::L1), "{diags:?}");
}

#[test]
fn l2_fixture_trips_only_l2() {
    let diags = findings(
        "fixtures/l2_ambient.rs",
        include_str!("../fixtures/l2_ambient.rs"),
    );
    assert!(diags.iter().any(|d| d.lint == Lint::L2), "{diags:?}");
    assert!(
        diags.iter().filter(|d| d.lint == Lint::L2).count() >= 3,
        "Instant::now, SystemTime::now and thread_rng must all trip: {diags:?}"
    );
}

#[test]
fn l3_fixture_trips_l3_and_audits_bad_marker() {
    let src = include_str!("../fixtures/l3_panics.rs");
    let diags = findings("fixtures/l3_panics.rs", src);
    let l3 = diags.iter().filter(|d| d.lint == Lint::L3).count();
    assert!(
        l3 >= 4,
        "unwrap, expect, panic! and the one under the reason-less allow: {diags:?}"
    );
    // The reason-less `lint:allow(L3)` is malformed, so it suppresses
    // nothing and is itself reported — as L7, the marker-hygiene family.
    let bad = diags
        .iter()
        .filter(|d| d.lint == Lint::L7)
        .collect::<Vec<_>>();
    assert_eq!(bad.len(), 1, "{diags:?}");
    assert_eq!(bad[0].line, line_of(src, "// lint:allow(L3)"));
    assert!(bad[0].message.contains("malformed"), "{}", bad[0]);
}

#[test]
fn l4_fixture_golden() {
    let src = include_str!("../fixtures/l4_rng.rs");
    let diags = findings("fixtures/l4_rng.rs", src);
    let want = [
        (line_of(src, "RngStream::new(seed)"), "unnamed stream"),
        (line_of(src, "seed, label"), "not a string literal"),
        (
            line_of(src, "duplicate of \"net\""),
            "duplicate RNG stream name",
        ),
        (
            line_of(src, "shadows client-<n>"),
            "collides with the indexed",
        ),
    ];
    assert_eq!(diags.len(), want.len(), "{diags:?}");
    for (d, (line, frag)) in diags.iter().zip(want) {
        assert_eq!((d.lint, d.line), (Lint::L4, line), "{d}");
        assert!(d.message.contains(frag), "{d}");
    }
}

#[test]
fn l5_fixture_golden() {
    let def = include_str!("../fixtures/l5_trace_def.rs");
    let drv = include_str!("../fixtures/l5_trace.rs");
    let diags = analyze_sources(&[
        source("fixtures/l5_trace_def.rs", def),
        source("fixtures/l5_trace.rs", drv),
    ])
    .diagnostics;
    assert_eq!(diags.len(), 2, "{diags:?}");
    // Sorted by path, so the driver file's finding comes first.
    assert_eq!(
        (diags[0].file.as_str(), diags[0].line, diags[0].lint),
        (
            "fixtures/l5_trace.rs",
            line_of(drv, "pub fn dispatch"),
            Lint::L5
        ),
        "{diags:?}"
    );
    assert!(diags[0].message.contains("decision function `dispatch`"));
    assert_eq!(
        (diags[1].file.as_str(), diags[1].line, diags[1].lint),
        ("fixtures/l5_trace_def.rs", line_of(def, "Ghost,"), Lint::L5),
        "{diags:?}"
    );
    assert!(diags[1]
        .message
        .contains("`TraceKind::Ghost` is never emitted"));
}

#[test]
fn l5_flight_fixture_golden() {
    // The flight-recorder marker shape: `SpanKind::SlowTxn` built in
    // expression position at export time counts as an emission, while
    // the seeded `FlightGhost` (only ever consumed) is flagged.
    let def = include_str!("../fixtures/l5_flight_def.rs");
    let drv = include_str!("../fixtures/l5_flight.rs");
    let diags = analyze_sources(&[
        source("fixtures/l5_flight_def.rs", def),
        source("fixtures/l5_flight.rs", drv),
    ])
    .diagnostics;
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(
        (diags[0].file.as_str(), diags[0].line, diags[0].lint),
        (
            "fixtures/l5_flight_def.rs",
            line_of(def, "FlightGhost,"),
            Lint::L5
        ),
        "{diags:?}"
    );
    assert!(diags[0]
        .message
        .contains("`SpanKind::FlightGhost` is never emitted"));
}

#[test]
fn l6_fixture_golden() {
    let src = include_str!("../fixtures/l6_wal.rs");
    let diags = findings("fixtures/l6_wal.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(
        (diags[0].lint, diags[0].line),
        (Lint::L6, line_of(src, "seeded: send precedes")),
        "{diags:?}"
    );
    assert!(
        diags[0].message.contains("`broadcast_first`"),
        "{}",
        diags[0]
    );
}

#[test]
fn l7_fixture_golden() {
    let src = include_str!("../fixtures/l7_stale.rs");
    let diags = findings("fixtures/l7_stale.rs", src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(
        (diags[0].lint, diags[0].line),
        (Lint::L7, line_of(src, "the slice is non-empty")),
        "{diags:?}"
    );
    assert!(
        diags[0].message.contains("stale lint:allow(L3)"),
        "{}",
        diags[0]
    );
    assert_eq!(
        (diags[1].lint, diags[1].line),
        (Lint::L7, line_of(src, "no such lint family")),
        "{diags:?}"
    );
    assert!(diags[1].message.contains("malformed"), "{}", diags[1]);
    // The live allow on `live_site` must keep suppressing its unwrap.
    assert!(diags.iter().all(|d| d.lint != Lint::L3), "{diags:?}");
}

#[test]
fn sm_fixture_golden() {
    let src = include_str!("../fixtures/sm_machine.rs");
    let analysis = analyze_sources(&[source("fixtures/sm_machine.rs", src)]);
    let diags = &analysis.diagnostics;
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(
        (diags[0].lint, diags[0].line),
        (Lint::SM, line_of(src, "Wedged, //")),
        "{diags:?}"
    );
    assert!(diags[0].message.contains("unreachable"), "{}", diags[0]);
    assert_eq!(
        (diags[1].lint, diags[1].line),
        (Lint::SM, line_of(src, "source state is dead")),
        "{diags:?}"
    );
    assert!(diags[1].message.contains("can never fire"), "{}", diags[1]);

    // The DOT render carries the same structure: Active is initial
    // (double circle), the untracked-context write shows as a dashed
    // implicit edge, the guarded self-loop as a solid one.
    let dot = machine::dot(&analysis.extraction);
    assert!(dot.contains("digraph sm_machine {"), "{dot}");
    assert!(dot.contains("\"Active\" [shape=doublecircle];"), "{dot}");
    assert!(
        dot.contains("\"Active\" -> \"Committed\" [style=dashed];"),
        "{dot}"
    );
    assert!(dot.contains("\"Wedged\" -> \"Wedged\";"), "{dot}");
}

#[test]
fn clean_fixture_passes() {
    let diags = findings("fixtures/clean.rs", include_str!("../fixtures/clean.rs"));
    assert!(
        diags.is_empty(),
        "clean fixture must produce no findings: {diags:?}"
    );
}

#[test]
fn diagnostics_point_into_the_fixture() {
    let src = include_str!("../fixtures/l1_hash_iteration.rs");
    let diags = findings("fixtures/l1_hash_iteration.rs", src);
    let lines: Vec<&str> = src.lines().collect();
    for d in &diags {
        assert_eq!(d.file, "fixtures/l1_hash_iteration.rs");
        assert!(d.line >= 1 && d.line <= lines.len(), "{d}");
    }
}

/// The self-test the CI gate leans on: the real workspace — every
/// member crate of the root manifest, minus explicit opt-outs — must
/// come back with zero findings, and the state-machine extractor must
/// actually see the protocol engines (an empty extraction would make
/// the reachability lints vacuously green).
#[test]
fn workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate sits two levels under the workspace root");
    let analysis = g2pl_lint::analyze_workspace(root).expect("workspace discovery");
    assert!(
        analysis.diagnostics.is_empty(),
        "workspace must lint clean:\n{}",
        analysis
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        !analysis.extraction.machines.is_empty(),
        "state-machine extraction must find the protocol engines"
    );
}
