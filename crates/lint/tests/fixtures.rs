//! End-to-end fixture tests: each `fixtures/*.rs` file either trips the
//! lints it is named for (with correct lint tags) or passes clean.

use g2pl_lint::{lint_source, FileConfig, Lint};

fn findings(fixture: &str, source: &str) -> Vec<g2pl_lint::Diagnostic> {
    lint_source(fixture, source, FileConfig::default())
}

#[test]
fn l1_fixture_trips_only_l1() {
    let diags = findings(
        "fixtures/l1_hash_iteration.rs",
        include_str!("../fixtures/l1_hash_iteration.rs"),
    );
    assert!(
        diags.len() >= 3,
        "expected the 3 seeded violations: {diags:?}"
    );
    assert!(diags.iter().all(|d| d.lint == Lint::L1), "{diags:?}");
}

#[test]
fn l2_fixture_trips_only_l2() {
    let diags = findings(
        "fixtures/l2_ambient.rs",
        include_str!("../fixtures/l2_ambient.rs"),
    );
    assert!(diags.iter().any(|d| d.lint == Lint::L2), "{diags:?}");
    assert!(
        diags.iter().filter(|d| d.lint == Lint::L2).count() >= 3,
        "Instant::now, SystemTime::now and thread_rng must all trip: {diags:?}"
    );
}

#[test]
fn l3_fixture_trips_l3_and_flags_bad_marker() {
    let src = include_str!("../fixtures/l3_panics.rs");
    let diags = findings("fixtures/l3_panics.rs", src);
    let l3 = diags.iter().filter(|d| d.lint == Lint::L3).count();
    assert!(
        l3 >= 4,
        "unwrap, expect, panic! and the reason-less allow: {diags:?}"
    );
}

#[test]
fn clean_fixture_passes() {
    let diags = findings("fixtures/clean.rs", include_str!("../fixtures/clean.rs"));
    assert!(
        diags.is_empty(),
        "clean fixture must produce no findings: {diags:?}"
    );
}

#[test]
fn diagnostics_point_into_the_fixture() {
    let src = include_str!("../fixtures/l1_hash_iteration.rs");
    let diags = findings("fixtures/l1_hash_iteration.rs", src);
    let lines: Vec<&str> = src.lines().collect();
    for d in &diags {
        assert_eq!(d.file, "fixtures/l1_hash_iteration.rs");
        assert!(d.line >= 1 && d.line <= lines.len(), "{d}");
    }
}
