//! Workspace-member discovery: lint coverage is *derived*, not declared.
//!
//! PR 1's hardcoded `ENGINE_CRATES` list silently missed every crate
//! added after it was written. The analyzer now walks the `members`
//! globs of the root `Cargo.toml`, so a new crate is covered the moment
//! it joins the workspace; exclusion is an explicit, justified entry in
//! [`OPT_OUT`], reviewed like any other code change.

use std::path::{Path, PathBuf};

/// Workspace members excluded from analysis, each with its standing
/// justification. Every entry is a path prefix relative to the root.
///
/// Keep this list *short* — the whole point of derived coverage is that
/// opting out is loud.
pub const OPT_OUT: [(&str, &str); 1] = [(
    "vendor/",
    "offline API stand-ins for external crates (proptest/criterion/serde); \
     they mirror foreign interfaces and never run inside a simulation",
)];

/// One covered workspace member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Member {
    /// Workspace-relative crate directory, e.g. `crates/protocols`.
    pub rel: String,
}

impl Member {
    /// Per-crate lint configuration, derived from the crate's role.
    pub fn config(&self) -> crate::FileConfig {
        crate::FileConfig {
            // simcore owns the simulated clock and the seeded RNG — it is
            // the one place allowed to define those abstractions (it still
            // must not *read* ambient sources, but its API mentions them).
            check_ambient: self.rel != "crates/simcore",
        }
    }
}

/// Parse the `members = [...]` globs out of the root `Cargo.toml` and
/// expand them against the filesystem. Errors are strings so the CLI can
/// print them without a panic path.
pub fn discover(root: &Path) -> Result<Vec<Member>, String> {
    let manifest = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    let globs = member_globs(&text)?;
    let mut members = Vec::new();
    for glob in &globs {
        for dir in expand_glob(root, glob)? {
            let rel = dir
                .strip_prefix(root)
                .unwrap_or(&dir)
                .to_string_lossy()
                .replace('\\', "/");
            if OPT_OUT
                .iter()
                .any(|(p, _)| rel.starts_with(p) || rel == p.trim_end_matches('/'))
            {
                continue;
            }
            if dir.join("Cargo.toml").is_file() {
                members.push(Member { rel });
            }
        }
    }
    members.sort_by(|a, b| a.rel.cmp(&b.rel));
    members.dedup();
    if members.is_empty() {
        return Err("workspace member discovery found no crates".to_string());
    }
    Ok(members)
}

/// Extract the `members` array entries from a `[workspace]` table. A
/// purpose-built scan, not a TOML parser: the root manifest is ours and
/// keeps the array literal on consecutive lines.
fn member_globs(manifest: &str) -> Result<Vec<String>, String> {
    let start = manifest
        .find("members")
        .ok_or("no `members` key in root Cargo.toml")?;
    let open = manifest[start..]
        .find('[')
        .ok_or("members key has no `[` array")?
        + start;
    let close = manifest[open..]
        .find(']')
        .ok_or("members array is unterminated")?
        + open;
    let mut globs = Vec::new();
    for part in manifest[open + 1..close].split(',') {
        let part = part.trim().trim_matches('"').trim();
        if !part.is_empty() {
            globs.push(part.to_string());
        }
    }
    if globs.is_empty() {
        return Err("members array is empty".to_string());
    }
    Ok(globs)
}

/// Expand one member glob (`crates/*` or a literal path) to directories.
fn expand_glob(root: &Path, glob: &str) -> Result<Vec<PathBuf>, String> {
    if let Some(prefix) = glob.strip_suffix("/*") {
        let base = root.join(prefix);
        let rd = std::fs::read_dir(&base)
            .map_err(|e| format!("cannot read member dir {}: {e}", base.display()))?;
        let mut out: Vec<PathBuf> = rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        out.sort();
        Ok(out)
    } else {
        Ok(vec![root.join(glob)])
    }
}

/// Recursively collect `.rs` files under a member's `src/` in sorted
/// order. Integration `tests/`, `benches/`, and fixture directories are
/// deliberately out of scope: test code is exempt from the lint families
/// by design (it may panic and use throwaway RNG seeds freely).
pub fn member_sources(root: &Path, member: &Member) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let src = root.join(&member.rel).join("src");
    if src.is_dir() {
        collect_rs(&src, &mut files)?;
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_globs_parse_the_root_manifest_shape() {
        let globs = member_globs("[workspace]\nmembers = [\"crates/*\", \"vendor/*\"]\n").unwrap();
        assert_eq!(globs, vec!["crates/*", "vendor/*"]);
    }

    #[test]
    fn missing_members_key_is_an_error() {
        assert!(member_globs("[package]\nname = \"x\"\n").is_err());
    }

    #[test]
    fn discovery_covers_every_crate_and_skips_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let members = discover(root).unwrap();
        let rels: Vec<&str> = members.iter().map(|m| m.rel.as_str()).collect();
        // The PR-1 coverage gap: these were silently unlinted before.
        for must in [
            "crates/core",
            "crates/stats",
            "crates/workload",
            "crates/bench",
            "crates/lint",
            "crates/protocols",
        ] {
            assert!(rels.contains(&must), "{must} missing from {rels:?}");
        }
        assert!(
            rels.iter().all(|r| !r.starts_with("vendor/")),
            "vendor stand-ins must stay opted out: {rels:?}"
        );
    }

    #[test]
    fn simcore_is_ambient_exempt_everyone_else_is_not() {
        let sim = Member {
            rel: "crates/simcore".into(),
        };
        let other = Member {
            rel: "crates/protocols".into(),
        };
        assert!(!sim.config().check_ambient);
        assert!(other.config().check_ambient);
    }
}
