//! Cross-file passes: L4 (RNG-stream discipline) and L5 (trace-event
//! completeness). Both need the whole workspace parsed at once — a
//! stream-name collision or a never-emitted enum variant is invisible
//! from inside any single file.

use crate::lex::{Tok, TokKind};
use crate::parse::ParsedFile;
use crate::passes::{flatten, non_test_fns};
use crate::{Diagnostic, Lint};
use std::collections::BTreeMap;

/// L4 — RNG-stream discipline.
///
/// Determinism rests on every consumer of randomness drawing from its
/// own named [`RngStream`]: two streams derived with the same label from
/// the same master seed produce *identical* draws, which silently
/// correlates whatever the two consumers decide. The rules:
///
/// * `RngStream::derive(seed, name)` — `name` must be a string literal,
///   and the literal must be unique across the workspace;
/// * `RngStream::derive_indexed(seed, prefix, n)` — `prefix` must be a
///   string literal, unique among prefixes, and no plain literal may
///   shadow `prefix-<digits>`;
/// * `RngStream::new(seed)` in non-test code is an unnamed stream —
///   label it with `derive` so collisions stay checkable.
///
/// [`RngStream`]: ../../g2pl_simcore/rng/struct.RngStream.html
pub fn l4_rng_streams(files: &[(ParsedFile, crate::FileConfig)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // label -> (file, line) of first sighting; duplicates diagnose both.
    let mut literals: BTreeMap<String, (String, usize)> = BTreeMap::new();
    let mut prefixes: BTreeMap<String, (String, usize)> = BTreeMap::new();

    struct Site {
        file: String,
        line: usize,
        kind: SiteKind,
    }
    enum SiteKind {
        Literal(String),
        Indexed(String),
        NonLiteral,
        Unnamed,
    }

    let mut sites: Vec<Site> = Vec::new();
    for (file, _) in files {
        non_test_fns(file, &mut |func| {
            for fs in flatten(&func.body) {
                let toks = fs.tokens;
                for i in 0..toks.len() {
                    if !(toks[i].is_ident("RngStream")
                        && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::PathSep))
                    {
                        continue;
                    }
                    let Some(method) = toks.get(i + 2) else {
                        continue;
                    };
                    let line = method.line;
                    if method.is_ident("new") {
                        sites.push(Site {
                            file: file.path.clone(),
                            line,
                            kind: SiteKind::Unnamed,
                        });
                    } else if method.is_ident("derive") || method.is_ident("derive_indexed") {
                        let indexed = method.is_ident("derive_indexed");
                        let args = call_args(toks, i + 3);
                        let label_arg = args.get(1);
                        match label_arg.and_then(|a| literal_of(a)) {
                            Some(lit) => sites.push(Site {
                                file: file.path.clone(),
                                line,
                                kind: if indexed {
                                    SiteKind::Indexed(lit)
                                } else {
                                    SiteKind::Literal(lit)
                                },
                            }),
                            None => sites.push(Site {
                                file: file.path.clone(),
                                line,
                                kind: SiteKind::NonLiteral,
                            }),
                        }
                    }
                }
            }
        });
    }

    for site in &sites {
        match &site.kind {
            SiteKind::Unnamed => diags.push(Diagnostic {
                file: site.file.clone(),
                line: site.line,
                lint: Lint::L4,
                message: "`RngStream::new` creates an unnamed stream: derive it from the \
                          master seed with a unique string-literal label instead"
                    .to_string(),
            }),
            SiteKind::NonLiteral => diags.push(Diagnostic {
                file: site.file.clone(),
                line: site.line,
                lint: Lint::L4,
                message: "RNG stream name is not a string literal, so uniqueness cannot be \
                          checked: use a literal label (or `derive_indexed` for per-entity \
                          streams)"
                    .to_string(),
            }),
            SiteKind::Literal(name) => {
                if let Some((f0, l0)) = literals.get(name) {
                    diags.push(Diagnostic {
                        file: site.file.clone(),
                        line: site.line,
                        lint: Lint::L4,
                        message: format!(
                            "duplicate RNG stream name {name:?} (first used at {f0}:{l0}): \
                             identical labels yield identical draws and silently correlate \
                             both consumers"
                        ),
                    });
                } else {
                    literals.insert(name.clone(), (site.file.clone(), site.line));
                }
            }
            SiteKind::Indexed(prefix) => {
                if let Some((f0, l0)) = prefixes.get(prefix) {
                    diags.push(Diagnostic {
                        file: site.file.clone(),
                        line: site.line,
                        lint: Lint::L4,
                        message: format!(
                            "duplicate indexed RNG stream prefix {prefix:?} (first used at \
                             {f0}:{l0}): two per-entity families would collide index by index"
                        ),
                    });
                } else {
                    prefixes.insert(prefix.clone(), (site.file.clone(), site.line));
                }
            }
        }
    }
    // A plain literal shadowing an indexed family (`"net-3"` vs
    // `derive_indexed(…, "net", i)`) collides for one index value.
    for (lit, (file, line)) in &literals {
        for (prefix, (f0, l0)) in &prefixes {
            let shadow = lit
                .strip_prefix(prefix)
                .and_then(|rest| rest.strip_prefix('-'))
                .is_some_and(|digits| {
                    !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())
                });
            if shadow || lit == prefix {
                diags.push(Diagnostic {
                    file: file.clone(),
                    line: *line,
                    lint: Lint::L4,
                    message: format!(
                        "RNG stream name {lit:?} collides with the indexed stream family \
                         {prefix:?}-<n> (declared at {f0}:{l0})"
                    ),
                });
            }
        }
    }
    diags
}

/// Split the top-level comma-separated argument token runs of a call,
/// with `toks[open]` expected to be `(`.
fn call_args(toks: &[Tok], open: usize) -> Vec<Vec<&Tok>> {
    let mut args: Vec<Vec<&Tok>> = Vec::new();
    if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
        return args;
    }
    let mut depth = 0i32;
    let mut cur: Vec<&Tok> = Vec::new();
    for t in &toks[open..] {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
            if depth == 1 {
                continue;
            }
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct(',') && depth == 1 {
            args.push(std::mem::take(&mut cur));
            continue;
        }
        if depth >= 1 {
            cur.push(t);
        }
    }
    if !cur.is_empty() {
        args.push(cur);
    }
    args
}

/// If an argument run is a (possibly `&`-prefixed) lone string literal,
/// its content.
fn literal_of(arg: &[&Tok]) -> Option<String> {
    let mut it = arg.iter().filter(|t| !t.is_punct('&'));
    let first = it.next()?;
    if it.next().is_some() || first.kind != TokKind::Str {
        return None;
    }
    Some(first.text.clone())
}

/// L5 — trace-event completeness.
///
/// The self-verification properties P1–P9 are only as strong as the
/// trace they read: a `TraceKind`/`SpanKind` variant nobody emits is a
/// blind spot that type-checks. The pass cross-references every variant
/// of those enums against *emission sites* — expression-position uses
/// outside the defining file, excluding match patterns, `matches!`,
/// `if let`/`while let` bindings, comparisons, and asserts (those are
/// consumers). It also requires the engines' protocol decision
/// functions (commit/abort/dispatch/recovery) to emit at least one
/// trace or span event, so a new decision path cannot silently bypass
/// observability.
pub fn l5_trace_completeness(files: &[(ParsedFile, crate::FileConfig)]) -> Vec<Diagnostic> {
    const ENUMS: [&str; 2] = ["TraceKind", "SpanKind"];
    /// Functions that *decide* protocol outcomes; each must emit.
    const DECISION_FNS: [&str; 7] = [
        "commit",
        "abort_victim",
        "finalize_abort",
        "dispatch",
        "close_window",
        "crash_server",
        "finish_recovery",
    ];

    let mut diags = Vec::new();
    // enum name -> (defining file, Vec<(variant, line)>)
    let mut defs: BTreeMap<String, (String, Vec<(String, usize)>)> = BTreeMap::new();
    for (file, _) in files {
        crate::parse::walk_enums(&file.items, &mut |e| {
            if ENUMS.contains(&e.name.as_str()) && !e.in_test {
                defs.insert(e.name.clone(), (file.path.clone(), e.variants.clone()));
            }
        });
    }
    if defs.is_empty() {
        return diags;
    }

    let mut emitted: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (file, _) in files {
        non_test_fns(file, &mut |func| {
            for fs in flatten(&func.body) {
                let toks = fs.tokens;
                // Consumer-shaped statements never count as emissions.
                let is_consumer = toks
                    .windows(2)
                    .any(|w| w[0].text.ends_with("matches") && w[1].is_punct('!'))
                    || toks.windows(2).any(|w| {
                        (w[0].is_ident("if") || w[0].is_ident("while")) && w[1].is_ident("let")
                    })
                    || toks.iter().any(|t| {
                        t.kind == TokKind::Ident
                            && (t.text == "assert_eq"
                                || t.text == "assert_ne"
                                || t.text == "debug_assert_eq"
                                || t.text == "debug_assert_ne"
                                || t.text == "assert"
                                || t.text == "debug_assert")
                    });
                if is_consumer {
                    continue;
                }
                for i in 0..toks.len() {
                    let t = &toks[i];
                    if !(t.kind == TokKind::Ident && ENUMS.contains(&t.text.as_str())) {
                        continue;
                    }
                    if defs
                        .get(&t.text)
                        .is_some_and(|(def_file, _)| def_file == &file.path)
                    {
                        continue; // the defining file names its own variants freely
                    }
                    if toks.get(i + 1).map(|x| x.kind) != Some(TokKind::PathSep) {
                        continue;
                    }
                    let Some(variant) = toks.get(i + 2) else {
                        continue;
                    };
                    if variant.kind != TokKind::Ident {
                        continue;
                    }
                    // Comparisons are consumption, not emission.
                    let before_eq = i >= 1 && toks[i - 1].is_punct('=');
                    let after = toks.get(i + 3);
                    let after_eq = after.is_some_and(|x| x.is_punct('='))
                        && toks.get(i + 4).is_some_and(|x| x.is_punct('='));
                    if before_eq || after_eq {
                        continue;
                    }
                    *emitted
                        .entry((t.text.clone(), variant.text.clone()))
                        .or_default() += 1;
                }
            }
        });
    }

    for (enum_name, (def_file, variants)) in &defs {
        for (variant, line) in variants {
            if !emitted.contains_key(&(enum_name.clone(), variant.clone())) {
                diags.push(Diagnostic {
                    file: def_file.clone(),
                    line: *line,
                    lint: Lint::L5,
                    message: format!(
                        "`{enum_name}::{variant}` is never emitted by any engine: either \
                         wire up the emission or retire the variant — an unemitted event \
                         is a verifier blind spot"
                    ),
                });
            }
        }
    }

    // Decision functions must emit. Scoped to files that drive the
    // transaction state machine (contain a `set_status` call).
    for (file, _) in files {
        let mut drives_machine = false;
        non_test_fns(file, &mut |func| {
            for fs in flatten(&func.body) {
                if fs
                    .tokens
                    .windows(2)
                    .any(|w| w[0].is_punct('.') && w[1].is_ident("set_status"))
                {
                    drives_machine = true;
                }
            }
        });
        if !drives_machine {
            continue;
        }
        non_test_fns(file, &mut |func| {
            if !DECISION_FNS.contains(&func.name.as_str()) {
                return;
            }
            let mut emits = false;
            for fs in flatten(&func.body) {
                let toks = fs.tokens;
                for i in 0..toks.len() {
                    if toks[i].is_punct('.')
                        && toks
                            .get(i + 1)
                            .is_some_and(|t| t.is_ident("record") || t.is_ident("spans"))
                    {
                        emits = true;
                    }
                }
            }
            if !emits {
                diags.push(Diagnostic {
                    file: file.path.clone(),
                    line: func.line,
                    lint: Lint::L5,
                    message: format!(
                        "protocol decision function `{}` emits no trace or span event: \
                         record the outcome (or justify why this decision is invisible)",
                        func.name
                    ),
                });
            }
        });
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::FileConfig;

    fn analyze(srcs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<(ParsedFile, FileConfig)> = srcs
            .iter()
            .map(|(p, s)| (parse(p, s), FileConfig::default()))
            .collect();
        let mut d = l4_rng_streams(&files);
        d.extend(l5_trace_completeness(&files));
        d
    }

    #[test]
    fn l4_duplicate_literal_flagged_once_at_second_site() {
        let d = analyze(&[
            (
                "a.rs",
                "fn a(s: u64) { let r = RngStream::derive(s, \"net\"); }",
            ),
            (
                "b.rs",
                "fn b(s: u64) { let r = RngStream::derive(s, \"net\"); }",
            ),
        ]);
        let l4: Vec<_> = d.iter().filter(|d| d.lint == Lint::L4).collect();
        assert_eq!(l4.len(), 1, "{d:?}");
        assert_eq!(l4[0].file, "b.rs");
        assert!(l4[0].message.contains("duplicate"));
    }

    #[test]
    fn l4_non_literal_and_unnamed_flagged() {
        let d = analyze(&[(
            "a.rs",
            "fn a(s: u64, i: u32) {\n\
             let r = RngStream::derive(s, &format!(\"c-{i}\"));\n\
             let q = RngStream::new(s);\n}",
        )]);
        assert!(
            d.iter().any(|d| d.lint == Lint::L4
                && d.line == 2
                && d.message.contains("not a string literal")),
            "{d:?}"
        );
        assert!(
            d.iter()
                .any(|d| d.lint == Lint::L4 && d.line == 3 && d.message.contains("unnamed")),
            "{d:?}"
        );
    }

    #[test]
    fn l4_indexed_family_and_shadowing() {
        let d = analyze(&[(
            "a.rs",
            "fn a(s: u64, i: u32) {\n\
             let r = RngStream::derive_indexed(s, \"client\", i);\n\
             let q = RngStream::derive(s, \"client-3\");\n}",
        )]);
        assert!(
            d.iter()
                .any(|d| d.lint == Lint::L4 && d.message.contains("collides with the indexed")),
            "{d:?}"
        );
    }

    #[test]
    fn l4_distinct_names_clean() {
        let d = analyze(&[(
            "a.rs",
            "fn a(s: u64, i: u32) {\n\
             let r = RngStream::derive(s, \"think\");\n\
             let q = RngStream::derive(s, \"idle\");\n\
             let z = RngStream::derive_indexed(s, \"client\", i);\n}",
        )]);
        assert!(d.iter().all(|d| d.lint != Lint::L4), "{d:?}");
    }

    #[test]
    fn l4_test_code_exempt() {
        let d = analyze(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests { fn t() { let a = RngStream::new(1); let b = RngStream::new(1); } }",
        )]);
        assert!(d.iter().all(|d| d.lint != Lint::L4), "{d:?}");
    }

    #[test]
    fn l5_unemitted_variant_flagged_at_definition() {
        let d = analyze(&[
            ("def.rs", "pub enum TraceKind {\nGranted,\nNeverUsed,\n}"),
            (
                "eng.rs",
                "fn f(&self) { self.trace.record(now, TraceKind::Granted, t, i, s); }",
            ),
        ]);
        let l5: Vec<_> = d.iter().filter(|d| d.lint == Lint::L5).collect();
        assert_eq!(l5.len(), 1, "{d:?}");
        assert_eq!((l5[0].file.as_str(), l5[0].line), ("def.rs", 3));
    }

    #[test]
    fn l5_match_consumption_is_not_emission() {
        let d = analyze(&[
            ("def.rs", "pub enum TraceKind { Granted }"),
            (
                "checker.rs",
                "fn check(k: TraceKind) { match k { TraceKind::Granted => {} }\n\
                 if let TraceKind::Granted = k {}\n\
                 let b = matches!(k, TraceKind::Granted);\n\
                 assert_eq!(k, TraceKind::Granted); }",
            ),
        ]);
        assert!(
            d.iter()
                .any(|d| d.lint == Lint::L5 && d.message.contains("Granted")),
            "pattern/comparison uses must not count as emissions: {d:?}"
        );
    }

    #[test]
    fn l5_decision_fn_without_emission_flagged() {
        let d = analyze(&[
            ("def.rs", "pub enum TraceKind { Granted }"),
            (
                "eng.rs",
                "impl E {\n\
                 fn commit(&mut self, t: TxnId) { self.table.set_status(t, TxnStatus::Committed); }\n\
                 fn dispatch(&mut self, t: TxnId) { self.table.set_status(t, TxnStatus::Active); self.trace.record(now, TraceKind::Granted, t); }\n\
                 }",
            ),
        ]);
        let l5: Vec<_> = d.iter().filter(|d| d.lint == Lint::L5).collect();
        assert_eq!(l5.len(), 1, "{d:?}");
        assert!(l5[0].message.contains("`commit`"));
    }
}
