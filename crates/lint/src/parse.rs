//! Item-tree parser over the token stream from [`crate::lex`].
//!
//! This is not a Rust grammar. It recovers exactly the structure the
//! lint passes need and nothing else:
//!
//! * the **item tree** — functions (with names and `#[cfg(test)]`/
//!   `#[test]` status), `impl` blocks, modules, enums (with variant
//!   names), and `use` paths;
//! * per-function **statement blocks** — a nested tree where every
//!   braced region becomes a child block, so passes can reason about
//!   "earlier in this block or an enclosing one" (the straight-line
//!   dominator approximation L6 uses);
//! * **match structure** — a statement whose head starts with `match`
//!   has its arms split into pattern tokens and body blocks, which is
//!   what separates an enum variant used as a *pattern* (consumption)
//!   from one used as an *expression* (emission) in L5, and what gives
//!   the state-machine extractor its from-state context.
//!
//! Everything the parser does not understand is preserved as flat
//! token runs — a lint must degrade to "no finding", never to a crash.

use crate::lex::{lex, Tok, TokKind};

/// A parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Path label used in diagnostics (workspace-relative in CLI use).
    pub path: String,
    /// Top-level items, in source order.
    pub items: Vec<Item>,
    /// `//` and `/* */` comment text per 1-based line.
    pub comments: std::collections::BTreeMap<usize, String>,
}

/// One item in the tree.
#[derive(Debug)]
pub enum Item {
    Fn(FnItem),
    Enum(EnumItem),
    Impl(ImplItem),
    Mod(ModItem),
    Use(UseItem),
    /// Anything else (struct, const, static, trait, type, macro): kept
    /// as its flat token run so per-file token passes still see it.
    Other(OtherItem),
}

/// A function with its body.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Inside `#[cfg(test)]` / carries `#[test]` / inside a test mod.
    pub in_test: bool,
    /// Signature tokens (between `fn` and the body `{`).
    pub signature: Vec<Tok>,
    pub body: Block,
}

/// An enum definition with its variant names.
#[derive(Debug)]
pub struct EnumItem {
    pub name: String,
    pub line: usize,
    pub in_test: bool,
    /// `(variant name, line)` in declaration order.
    pub variants: Vec<(String, usize)>,
}

/// An `impl` block and the items inside it.
#[derive(Debug)]
pub struct ImplItem {
    /// The implemented type's last path segment (e.g. `G2plEngine`).
    pub type_name: String,
    pub line: usize,
    pub in_test: bool,
    pub items: Vec<Item>,
}

/// An inline `mod name { … }` (file modules are separate files).
#[derive(Debug)]
pub struct ModItem {
    pub name: String,
    pub line: usize,
    pub in_test: bool,
    pub items: Vec<Item>,
}

/// A `use` declaration, flattened: `use a::{b, c};` yields one item with
/// the full token run (enough for the path-awareness L2 wants).
#[derive(Debug)]
pub struct UseItem {
    pub line: usize,
    pub tokens: Vec<Tok>,
}

/// An item the parser treats as opaque tokens.
#[derive(Debug)]
pub struct OtherItem {
    pub line: usize,
    pub in_test: bool,
    pub tokens: Vec<Tok>,
}

/// A braced region: an ordered list of statements.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// One statement (or statement-like fragment).
#[derive(Debug)]
pub enum Stmt {
    /// Head tokens (up to `;` or a nested block) plus any child blocks
    /// opened by this statement (`if`/`for`/`while`/closures/plain
    /// braces all land here — the pass only needs ordering + nesting).
    Plain {
        line: usize,
        tokens: Vec<Tok>,
        children: Vec<Block>,
    },
    /// A `match` expression: scrutinee tokens and arms.
    Match {
        line: usize,
        scrutinee: Vec<Tok>,
        arms: Vec<Arm>,
    },
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    pub line: usize,
    /// Pattern tokens (everything before `=>`, guards included).
    pub pattern: Vec<Tok>,
    pub body: Block,
}

impl Stmt {
    /// First source line of the statement.
    pub fn line(&self) -> usize {
        match self {
            Stmt::Plain { line, .. } | Stmt::Match { line, .. } => *line,
        }
    }
}

/// Parse `source` into an item tree. Infallible by design.
pub fn parse(path: &str, source: &str) -> ParsedFile {
    let lexed = lex(source);
    let mut p = Parser {
        toks: lexed.tokens,
        pos: 0,
    };
    let items = p.items(false, usize::MAX);
    ParsedFile {
        path: path.to_string(),
        items,
        comments: lexed.comments,
    }
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip one attribute starting at `#` (cursor on `#`); returns its
    /// flattened text for `cfg(test)` / `test` detection.
    fn attr_text(&mut self) -> String {
        let mut text = String::new();
        self.next(); // '#'
        if self.peek().is_some_and(|t| t.is_punct('!')) {
            self.next();
        }
        if self.peek().is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0;
            while let Some(t) = self.next() {
                if t.is_punct('[') {
                    depth += 1;
                    if depth == 1 {
                        continue;
                    }
                }
                if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if !text.is_empty() {
                    text.push(' ');
                }
                text.push_str(&t.text);
            }
        }
        text
    }

    /// Parse items until `}` at the current nesting (or EOF).
    /// `in_test` is inherited from the enclosing scope.
    fn items(&mut self, in_test: bool, end_at: usize) -> Vec<Item> {
        let mut items = Vec::new();
        let mut pending_test = false;
        while self.pos < end_at {
            let Some(t) = self.peek() else { break };
            if t.is_punct('}') {
                break;
            }
            if t.is_punct('#') {
                let text = self.attr_text();
                if text.contains("cfg ( test")
                    || text.contains("cfg ( all ( test")
                    || text == "test"
                    || text.starts_with("test ")
                    || text.contains(" test )")
                {
                    pending_test = true;
                }
                continue;
            }
            let item_test = in_test || pending_test;
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "fn" => {
                        items.push(Item::Fn(self.fn_item(item_test)));
                        pending_test = false;
                        continue;
                    }
                    "enum" => {
                        items.push(Item::Enum(self.enum_item(item_test)));
                        pending_test = false;
                        continue;
                    }
                    "impl" => {
                        items.push(Item::Impl(self.impl_item(item_test)));
                        pending_test = false;
                        continue;
                    }
                    "mod" => {
                        if let Some(m) = self.mod_item(item_test) {
                            items.push(m);
                        }
                        pending_test = false;
                        continue;
                    }
                    "use" => {
                        items.push(Item::Use(self.use_item()));
                        pending_test = false;
                        continue;
                    }
                    // Qualifiers before an item keyword: consume and loop.
                    "pub" | "const" | "static" | "unsafe" | "async" | "extern" | "default" => {
                        // `pub fn` etc. — but bare `const NAME: … = …;`
                        // needs the Other fallback, so only treat
                        // `pub`/`unsafe`/`async`/`default` as pass-through
                        // qualifiers; `const fn` is caught by lookahead.
                        if t.text == "pub" {
                            // Skip `pub` and optional `(crate)` etc.
                            self.next();
                            if self.peek().is_some_and(|t| t.is_punct('(')) {
                                self.skip_balanced('(', ')');
                            }
                            if pending_test {
                                // keep the flag for the item that follows
                            }
                            continue;
                        }
                        if (t.text == "unsafe" || t.text == "async" || t.text == "default")
                            || (t.text == "const"
                                && self
                                    .toks
                                    .get(self.pos + 1)
                                    .is_some_and(|n| n.is_ident("fn")))
                            || (t.text == "extern"
                                && self.toks.get(self.pos + 1).map(|n| n.kind)
                                    == Some(TokKind::Str))
                        {
                            self.next();
                            continue;
                        }
                        items.push(Item::Other(self.other_item(item_test)));
                        pending_test = false;
                        continue;
                    }
                    _ => {}
                }
            }
            items.push(Item::Other(self.other_item(item_test)));
            pending_test = false;
        }
        items
    }

    /// Cursor on `fn`.
    fn fn_item(&mut self, in_test: bool) -> FnItem {
        let kw = self.next().unwrap_or(Tok {
            kind: TokKind::Ident,
            text: "fn".into(),
            line: 0,
        }); // unwrap_or keeps this infallible even if the caller's peek lied
        let line = kw.line;
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.next();
                n
            }
            _ => String::new(),
        };
        // Signature: everything until the body `{` or a terminating `;`
        // (trait method declarations / extern fns have no body).
        let mut signature = Vec::new();
        let mut body = Block::default();
        while let Some(t) = self.peek() {
            if t.is_punct(';') {
                self.next();
                break;
            }
            if t.is_punct('{') {
                self.next(); // consume '{'
                body = self.block();
                break;
            }
            // Balanced skips keep `where T: Fn() -> …` braces from
            // fooling us: parens and angle regions are consumed whole.
            if t.is_punct('(') {
                let mut run = self.balanced('(', ')');
                signature.append(&mut run);
                continue;
            }
            signature.push(self.next().expect("peeked")); // lint:allow(L3): peek() just returned Some
        }
        FnItem {
            name,
            line,
            in_test,
            signature,
            body,
        }
    }

    /// Cursor on `enum`.
    fn enum_item(&mut self, in_test: bool) -> EnumItem {
        let kw_line = self.next().map_or(0, |t| t.line);
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.next();
                n
            }
            _ => String::new(),
        };
        // Skip generics / where clause to the `{`.
        while let Some(t) = self.peek() {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') {
                self.next();
                return EnumItem {
                    name,
                    line: kw_line,
                    in_test,
                    variants: Vec::new(),
                };
            }
            self.next();
        }
        self.next(); // '{'
        let mut variants = Vec::new();
        // Variants: `Name`, `Name(…)`, `Name { … }`, `Name = expr`,
        // separated by commas; attributes allowed.
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct('}') => {
                    self.next();
                    break;
                }
                Some(t) if t.is_punct('#') => {
                    self.attr_text();
                }
                Some(t) if t.kind == TokKind::Ident => {
                    variants.push((t.text.clone(), t.line));
                    self.next();
                    // Consume payload / discriminant to the comma or `}`.
                    loop {
                        match self.peek() {
                            None => break,
                            Some(t) if t.is_punct(',') => {
                                self.next();
                                break;
                            }
                            Some(t) if t.is_punct('}') => break,
                            Some(t) if t.is_punct('(') => {
                                self.skip_balanced('(', ')');
                            }
                            Some(t) if t.is_punct('{') => {
                                self.skip_balanced('{', '}');
                            }
                            _ => {
                                self.next();
                            }
                        }
                    }
                }
                _ => {
                    self.next();
                }
            }
        }
        EnumItem {
            name,
            line: kw_line,
            in_test,
            variants,
        }
    }

    /// Cursor on `impl`.
    fn impl_item(&mut self, in_test: bool) -> ImplItem {
        let kw_line = self.next().map_or(0, |t| t.line);
        // Type name: last ident before `{` that is not part of generics
        // or the `for` keyword's left side (for trait impls we want the
        // implemented-on type, i.e. the segment after `for`).
        let mut last_ident = String::new();
        let mut after_for = false;
        let mut for_ident = String::new();
        while let Some(t) = self.peek() {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') {
                // `impl Trait for Type;` is not real Rust; bail politely.
                self.next();
                break;
            }
            if t.is_ident("for") {
                after_for = true;
                self.next();
                continue;
            }
            if t.is_ident("where") {
                // Type name is settled; skip the clause.
                self.next();
                continue;
            }
            if t.kind == TokKind::Ident {
                if after_for {
                    for_ident = t.text.clone();
                } else {
                    last_ident = t.text.clone();
                }
            }
            self.next();
        }
        let type_name = if !for_ident.is_empty() {
            for_ident
        } else {
            last_ident
        };
        if self.peek().is_some_and(|t| t.is_punct('{')) {
            self.next();
        }
        let end = self.matching_brace_end();
        let items = self.items(in_test, end);
        if self.peek().is_some_and(|t| t.is_punct('}')) {
            self.next();
        }
        ImplItem {
            type_name,
            line: kw_line,
            in_test,
            items,
        }
    }

    /// Cursor on `mod`. Returns `None` for `mod name;` file modules.
    fn mod_item(&mut self, in_test: bool) -> Option<Item> {
        let kw_line = self.next().map_or(0, |t| t.line);
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.next();
                n
            }
            _ => String::new(),
        };
        match self.peek() {
            Some(t) if t.is_punct(';') => {
                self.next();
                None
            }
            Some(t) if t.is_punct('{') => {
                self.next();
                // A mod literally named `tests` is overwhelmingly a test
                // module even without the attribute in fixture snippets.
                let inner_test = in_test || name == "tests";
                let end = self.matching_brace_end();
                let items = self.items(inner_test, end);
                if self.peek().is_some_and(|t| t.is_punct('}')) {
                    self.next();
                }
                Some(Item::Mod(ModItem {
                    name,
                    line: kw_line,
                    in_test: inner_test,
                    items,
                }))
            }
            _ => None,
        }
    }

    /// Cursor on `use`.
    fn use_item(&mut self) -> UseItem {
        let kw = self.next();
        let line = kw.map_or(0, |t| t.line);
        let mut tokens = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_punct(';') {
                self.next();
                break;
            }
            if t.is_punct('{') {
                let mut run = self.balanced('{', '}');
                tokens.append(&mut run);
                continue;
            }
            tokens.push(self.next().expect("peeked")); // lint:allow(L3): peek() just returned Some
        }
        UseItem { line, tokens }
    }

    /// Opaque item: tokens to the terminating `;` or a balanced `{…}`.
    fn other_item(&mut self, in_test: bool) -> OtherItem {
        let line = self.peek().map_or(0, |t| t.line);
        let mut tokens = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_punct(';') {
                self.next();
                break;
            }
            if t.is_punct('{') {
                let mut run = self.balanced('{', '}');
                tokens.append(&mut run);
                break;
            }
            if t.is_punct('}') {
                // Do not eat the enclosing scope's close brace.
                break;
            }
            tokens.push(self.next().expect("peeked")); // lint:allow(L3): peek() just returned Some
        }
        OtherItem {
            line,
            in_test,
            tokens,
        }
    }

    /// With the cursor just *past* an opening `{`, find the token index
    /// of its matching `}` (or EOF).
    fn matching_brace_end(&self) -> usize {
        let mut depth = 1i32;
        let mut i = self.pos;
        while i < self.toks.len() {
            if self.toks[i].is_punct('{') {
                depth += 1;
            } else if self.toks[i].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.toks.len()
    }

    /// Consume a balanced `open…close` region (cursor on `open`);
    /// returns all tokens including the delimiters.
    fn balanced(&mut self, open: char, close: char) -> Vec<Tok> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        while let Some(t) = self.next() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
            }
            out.push(t);
            if depth == 0 {
                break;
            }
        }
        out
    }

    fn skip_balanced(&mut self, open: char, close: char) {
        let _ = self.balanced(open, close);
    }

    /// Parse a statement block; cursor just past the opening `{`.
    /// Consumes the matching `}`.
    fn block(&mut self) -> Block {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct('}') => {
                    self.next();
                    break;
                }
                Some(t) if t.is_ident("match") => {
                    stmts.push(self.match_stmt());
                }
                _ => {
                    stmts.push(self.plain_stmt());
                }
            }
        }
        Block { stmts }
    }

    /// Cursor on `match`.
    fn match_stmt(&mut self) -> Stmt {
        let kw = self.next();
        let line = kw.map_or(0, |t| t.line);
        let mut scrutinee = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct('(') {
                let mut run = self.balanced('(', ')');
                scrutinee.append(&mut run);
                continue;
            }
            scrutinee.push(self.next().expect("peeked")); // lint:allow(L3): peek() just returned Some
        }
        if self.peek().is_some_and(|t| t.is_punct('{')) {
            self.next();
        }
        let mut arms = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct('}') => {
                    self.next();
                    break;
                }
                _ => {
                    if let Some(arm) = self.arm() {
                        arms.push(arm);
                    }
                }
            }
        }
        Stmt::Match {
            line,
            scrutinee,
            arms,
        }
    }

    /// One match arm: `pattern (if guard)? => body ,?`.
    fn arm(&mut self) -> Option<Arm> {
        let line = self.peek()?.line;
        let mut pattern = Vec::new();
        // Pattern (+ guard) up to `=>`; tuples/slices/structs balanced.
        loop {
            match self.peek() {
                None => return None,
                Some(t) if t.kind == TokKind::FatArrow => {
                    self.next();
                    break;
                }
                Some(t) if t.is_punct('}') => {
                    // Malformed arm; surrender this region.
                    return None;
                }
                Some(t) if t.is_punct('(') => {
                    let mut run = self.balanced('(', ')');
                    pattern.append(&mut run);
                }
                Some(t) if t.is_punct('[') => {
                    let mut run = self.balanced('[', ']');
                    pattern.append(&mut run);
                }
                Some(t) if t.is_punct('{') => {
                    let mut run = self.balanced('{', '}');
                    pattern.append(&mut run);
                }
                _ => pattern.push(self.next()?),
            }
        }
        // Body: a block `{…}` or an expression to the arm-separating
        // comma (at depth 0) or the match's closing `}`.
        let body = if self.peek().is_some_and(|t| t.is_punct('{')) {
            self.next();
            let b = self.block();
            // Optional trailing comma.
            if self.peek().is_some_and(|t| t.is_punct(',')) {
                self.next();
            }
            b
        } else {
            // Expression arm: gather as one plain statement.
            let expr_line = self.peek().map_or(line, |t| t.line);
            let mut tokens = Vec::new();
            let mut children = Vec::new();
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct(',') => {
                        self.next();
                        break;
                    }
                    Some(t) if t.is_punct('}') => break,
                    Some(t) if t.is_ident("match") => {
                        // Nested match in an expression arm: recurse.
                        let m = self.match_stmt();
                        children.push(Block { stmts: vec![m] });
                    }
                    Some(t) if t.is_punct('(') => {
                        let mut run = self.balanced('(', ')');
                        tokens.append(&mut run);
                    }
                    Some(t) if t.is_punct('{') => {
                        self.next();
                        children.push(self.block());
                    }
                    _ => {
                        if let Some(t) = self.next() {
                            tokens.push(t);
                        }
                    }
                }
            }
            Block {
                stmts: vec![Stmt::Plain {
                    line: expr_line,
                    tokens,
                    children,
                }],
            }
        };
        Some(Arm {
            line,
            pattern,
            body,
        })
    }

    /// A plain statement: head tokens up to `;` (depth 0) plus child
    /// blocks for every brace region it opens.
    fn plain_stmt(&mut self) -> Stmt {
        let line = self.peek().map_or(0, |t| t.line);
        let mut tokens = Vec::new();
        let mut children = Vec::new();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct(';') => {
                    self.next();
                    break;
                }
                Some(t) if t.is_punct('}') => break,
                Some(t) if t.is_ident("match") => {
                    let m = self.match_stmt();
                    children.push(Block { stmts: vec![m] });
                    // A match used as a trailing expression may end the
                    // statement; a following `;` is consumed next loop.
                }
                Some(t) if t.is_punct('{') => {
                    self.next();
                    children.push(self.block());
                    // `if c { } else { }` / `loop {}` continue the same
                    // statement; only a `;` or `}` ends it. But a block
                    // followed by a fresh statement keyword also ends it
                    // (`if c { } let x = …`). Heuristic: end unless the
                    // next token continues the expression.
                    if let Some(t) = self.peek() {
                        let cont = t.is_ident("else")
                            || t.is_punct('.')
                            || t.is_punct('?')
                            || t.is_punct(';')
                            || t.is_punct(',')
                            || t.is_punct(')');
                        if !cont {
                            break;
                        }
                    }
                }
                Some(t) if t.is_punct('(') => {
                    let mut run = self.balanced('(', ')');
                    // Closures and call arguments may open brace blocks
                    // inside parens; surface them as children too so
                    // ordering passes see into them.
                    tokens.append(&mut run);
                }
                _ => {
                    if let Some(t) = self.next() {
                        tokens.push(t);
                    }
                }
            }
        }
        Stmt::Plain {
            line,
            tokens,
            children,
        }
    }
}

/// Depth-first visit of every function in the item tree (top-level,
/// inside impls, inside mods), with the enclosing-impl type name.
pub fn walk_fns<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a FnItem, Option<&'a str>)) {
    fn go<'a>(
        items: &'a [Item],
        impl_ty: Option<&'a str>,
        f: &mut dyn FnMut(&'a FnItem, Option<&'a str>),
    ) {
        for item in items {
            match item {
                Item::Fn(func) => f(func, impl_ty),
                Item::Impl(imp) => go(&imp.items, Some(&imp.type_name), f),
                Item::Mod(m) => go(&m.items, impl_ty, f),
                _ => {}
            }
        }
    }
    go(items, None, f);
}

/// Depth-first visit of every enum in the item tree.
pub fn walk_enums<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a EnumItem)) {
    for item in items {
        match item {
            Item::Enum(e) => f(e),
            Item::Impl(imp) => walk_enums(&imp.items, f),
            Item::Mod(m) => walk_enums(&m.items, f),
            _ => {}
        }
    }
}

/// Depth-first visit of every statement in a block (match arms
/// included), in source order.
pub fn walk_stmts<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Stmt)) {
    for stmt in &block.stmts {
        f(stmt);
        match stmt {
            Stmt::Plain { children, .. } => {
                for c in children {
                    walk_stmts(c, f);
                }
            }
            Stmt::Match { arms, .. } => {
                for arm in arms {
                    walk_stmts(&arm.body, f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<(String, bool)> {
        let file = parse("t.rs", src);
        let mut out = Vec::new();
        walk_fns(&file.items, &mut |f, _| {
            out.push((f.name.clone(), f.in_test));
        });
        out
    }

    #[test]
    fn finds_fns_in_impls_and_mods() {
        let src = "struct S;\nimpl S { fn a(&self) {} }\nmod inner { pub fn b() {} }\nfn c() {}";
        let names = fns(src);
        assert_eq!(
            names,
            vec![
                ("a".to_string(), false),
                ("b".to_string(), false),
                ("c".to_string(), false)
            ]
        );
    }

    #[test]
    fn cfg_test_marks_fns_and_mods() {
        let src = "#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\nfn prod() {}";
        let names = fns(src);
        assert_eq!(
            names,
            vec![
                ("helper".to_string(), true),
                ("t".to_string(), true),
                ("prod".to_string(), false)
            ]
        );
    }

    #[test]
    fn enum_variants_are_collected() {
        let src = "pub enum TraceKind { A, B(u32), C { x: u8 }, D = 4 }";
        let file = parse("t.rs", src);
        let mut got = Vec::new();
        walk_enums(&file.items, &mut |e| {
            got.push((
                e.name.clone(),
                e.variants
                    .iter()
                    .map(|(v, _)| v.clone())
                    .collect::<Vec<_>>(),
            ));
        });
        assert_eq!(
            got,
            vec![(
                "TraceKind".to_string(),
                vec!["A".into(), "B".into(), "C".into(), "D".into()]
            )]
        );
    }

    #[test]
    fn match_arms_split_pattern_and_body() {
        let src = "fn f(s: K) { match s { K::A | K::B => { x(); } K::C => y(), _ => {} } }";
        let file = parse("t.rs", src);
        let mut found = false;
        walk_fns(&file.items, &mut |f, _| {
            if let Some(Stmt::Match { arms, .. }) = f.body.stmts.first() {
                assert_eq!(arms.len(), 3);
                let pat0: Vec<&str> = arms[0].pattern.iter().map(|t| t.text.as_str()).collect();
                assert!(pat0.contains(&"A") && pat0.contains(&"B"));
                assert_eq!(arms[1].body.stmts.len(), 1);
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn nested_blocks_become_children() {
        let src = "fn f() { if a { b(); } else { c(); } d(); }";
        let file = parse("t.rs", src);
        walk_fns(&file.items, &mut |f, _| {
            assert_eq!(f.body.stmts.len(), 2, "{:?}", f.body);
            if let Stmt::Plain { children, .. } = &f.body.stmts[0] {
                assert_eq!(children.len(), 2, "then + else blocks");
            } else {
                panic!("expected plain stmt");
            }
        });
    }

    #[test]
    fn impl_type_name_prefers_for_target() {
        let src = "impl fmt::Display for Thing { fn fmt(&self) {} }";
        let file = parse("t.rs", src);
        let mut seen = None;
        walk_fns(&file.items, &mut |_, ty| seen = ty.map(String::from));
        assert_eq!(seen.as_deref(), Some("Thing"));
    }

    #[test]
    fn guards_stay_in_pattern() {
        let src = "fn f(s: K, on: bool) { match s { K::A if on => x(), _ => {} } }";
        let file = parse("t.rs", src);
        walk_fns(&file.items, &mut |f, _| {
            if let Some(Stmt::Match { arms, .. }) = f.body.stmts.first() {
                let pat: Vec<&str> = arms[0].pattern.iter().map(|t| t.text.as_str()).collect();
                assert!(pat.contains(&"if") && pat.contains(&"on"));
            }
        });
    }
}
