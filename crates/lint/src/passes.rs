//! Per-file lint passes over the parsed item tree: L1 (unordered-map
//! iteration), L2 (ambient time/entropy), L3 (panic discipline), and
//! L6 (WAL write-ahead ordering).
//!
//! All passes work on tokens, not lines, so strings/comments can never
//! trip them, and test code is excluded at item granularity (a
//! `#[cfg(test)]` module, a `#[test]` fn) rather than by brace-counting.

use crate::lex::{Tok, TokKind};
use crate::parse::{Arm, Block, FnItem, Item, ParsedFile, Stmt};
use crate::{Diagnostic, FileConfig, Lint};

/// Methods whose call on a `HashMap`/`HashSet` receiver iterates it.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
    "into_values",
];

/// One flattened statement with enough context to reason about order:
/// its head tokens and the chain of `(match, arm)` choices above it.
pub struct FlatStmt<'a> {
    pub line: usize,
    pub tokens: &'a [Tok],
    /// `(match-id, arm-index)` for every enclosing match arm. Two
    /// statements whose chains disagree on the arm of a shared match id
    /// are on mutually exclusive paths.
    pub arm_chain: Vec<(usize, usize)>,
}

/// Flatten a function body into statements in source order.
pub fn flatten<'a>(body: &'a Block) -> Vec<FlatStmt<'a>> {
    let mut out = Vec::new();
    let mut next_match_id = 0usize;
    fn go<'a>(
        block: &'a Block,
        chain: &[(usize, usize)],
        next: &mut usize,
        out: &mut Vec<FlatStmt<'a>>,
    ) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Plain {
                    line,
                    tokens,
                    children,
                } => {
                    out.push(FlatStmt {
                        line: *line,
                        tokens,
                        arm_chain: chain.to_vec(),
                    });
                    for c in children {
                        go(c, chain, next, out);
                    }
                }
                Stmt::Match {
                    line,
                    scrutinee,
                    arms,
                } => {
                    let id = *next;
                    *next += 1;
                    out.push(FlatStmt {
                        line: *line,
                        tokens: scrutinee,
                        arm_chain: chain.to_vec(),
                    });
                    for (ai, arm) in arms.iter().enumerate() {
                        let mut inner = chain.to_vec();
                        inner.push((id, ai));
                        go(&arm.body, &inner, next, out);
                    }
                }
            }
        }
    }
    go(body, &[], &mut next_match_id, &mut out);
    out
}

/// Whether two arm chains are on mutually exclusive control paths.
pub fn diverging(a: &[(usize, usize)], b: &[(usize, usize)]) -> bool {
    for (ma, aa) in a {
        for (mb, ab) in b {
            if ma == mb && aa != ab {
                return true;
            }
        }
    }
    false
}

/// Does `toks[i..]` start the token sequence `seq` (idents / `::` / `!`
/// / single punct, matched by text)?
pub fn seq_at(toks: &[Tok], i: usize, seq: &[&str]) -> bool {
    if i + seq.len() > toks.len() {
        return false;
    }
    seq.iter()
        .enumerate()
        .all(|(j, want)| toks[i + j].text == *want && toks[i + j].kind != TokKind::Str)
}

/// All start indices where `seq` occurs in `toks`.
pub fn find_seq(toks: &[Tok], seq: &[&str]) -> Vec<usize> {
    (0..toks.len()).filter(|&i| seq_at(toks, i, seq)).collect()
}

/// Collect every token of an item (signature + body + patterns),
/// skipping items marked as test code.
fn item_tokens<'a>(item: &'a Item, out: &mut Vec<&'a Tok>) {
    match item {
        Item::Fn(f) => {
            if f.in_test {
                return;
            }
            out.extend(f.signature.iter());
            block_tokens(&f.body, out);
        }
        Item::Impl(imp) => {
            if imp.in_test {
                return;
            }
            for i in &imp.items {
                item_tokens(i, out);
            }
        }
        Item::Mod(m) => {
            if m.in_test {
                return;
            }
            for i in &m.items {
                item_tokens(i, out);
            }
        }
        Item::Use(u) => out.extend(u.tokens.iter()),
        Item::Enum(_) => {}
        Item::Other(o) => {
            if !o.in_test {
                out.extend(o.tokens.iter());
            }
        }
    }
}

fn block_tokens<'a>(block: &'a Block, out: &mut Vec<&'a Tok>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Plain {
                tokens, children, ..
            } => {
                out.extend(tokens.iter());
                for c in children {
                    block_tokens(c, out);
                }
            }
            Stmt::Match {
                scrutinee, arms, ..
            } => {
                out.extend(scrutinee.iter());
                for Arm { pattern, body, .. } in arms {
                    out.extend(pattern.iter());
                    block_tokens(body, out);
                }
            }
        }
    }
}

/// The set of source lines holding non-test code tokens. The stale-allow
/// audit (L7) only judges markers attached to lines the passes actually
/// scan — a marker inside `#[cfg(test)]` code can never be "stale"
/// because test code is exempt by design.
pub fn non_test_token_lines(file: &ParsedFile) -> std::collections::BTreeSet<usize> {
    let mut toks = Vec::new();
    for item in &file.items {
        item_tokens(item, &mut toks);
    }
    let mut lines: std::collections::BTreeSet<usize> = toks.iter().map(|t| t.line).collect();
    // Enum bodies are not in item_tokens; their variant lines still count.
    crate::parse::walk_enums(&file.items, &mut |e| {
        if !e.in_test {
            lines.insert(e.line);
            lines.extend(e.variants.iter().map(|(_, l)| *l));
        }
    });
    lines
}

/// Visit every non-test function (recursing through impls and mods).
pub fn non_test_fns<'a>(file: &'a ParsedFile, f: &mut dyn FnMut(&'a FnItem)) {
    crate::parse::walk_fns(&file.items, &mut |func, _| {
        if !func.in_test {
            f(func);
        }
    });
}

/// Run L1/L2/L3/L6 over one parsed file, returning *raw* diagnostics
/// (allow markers are applied by the caller, so the stale-allow audit
/// can see what each marker actually suppresses).
pub fn file_passes(file: &ParsedFile, config: FileConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    l1_unordered_iteration(file, &mut diags);
    if config.check_ambient {
        l2_ambient(file, &mut diags);
    }
    l3_panics(file, &mut diags);
    l6_wal_ordering(file, &mut diags);
    diags
}

/// L1 — iteration over `HashMap`/`HashSet`.
fn l1_unordered_iteration(file: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    // Pass 1: names declared with an unordered-map type anywhere in the
    // file (struct fields, parameters, annotated or inferred lets).
    let mut all: Vec<&Tok> = Vec::new();
    for item in &file.items {
        item_tokens(item, &mut all);
    }
    let mut unordered: Vec<String> = Vec::new();
    for (i, t) in all.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Skip a `std :: collections ::`-style path prefix backwards.
        let mut j = i;
        while j >= 2 && all[j - 1].kind == TokKind::PathSep && all[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        // `name : [& mut]* HashMap`
        let mut k = j - 1;
        while k > 0
            && (all[k].is_punct('&') || all[k].is_ident("mut") || all[k].kind == TokKind::Lifetime)
        {
            k -= 1;
        }
        if all[k].is_punct(':') && k > 0 && all[k - 1].kind == TokKind::Ident {
            unordered.push(all[k - 1].text.clone());
            continue;
        }
        // `let [mut] name = HashMap…`
        if all[j - 1].is_punct('=')
            && j >= 3
            && all[j - 2].kind == TokKind::Ident
            && (all[j - 3].is_ident("let")
                || (all[j - 3].is_ident("mut") && j >= 4 && all[j - 4].is_ident("let")))
        {
            unordered.push(all[j - 2].text.clone());
        }
    }
    unordered.sort();
    unordered.dedup();
    if unordered.is_empty() {
        return;
    }

    // Pass 2: iterating calls and for-loops over those names.
    non_test_fns(file, &mut |func| {
        for fs in flatten(&func.body) {
            let toks = fs.tokens;
            for i in 0..toks.len() {
                if !toks[i].is_punct('.') {
                    continue;
                }
                let Some(m) = toks.get(i + 1) else { continue };
                let is_iter = ITER_METHODS.iter().any(|im| m.is_ident(im));
                if !is_iter || !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                    continue;
                }
                if i == 0 {
                    continue;
                }
                let recv = &toks[i - 1];
                if recv.kind == TokKind::Ident && unordered.contains(&recv.text) {
                    diags.push(Diagnostic {
                        file: file.path.clone(),
                        line: m.line,
                        lint: Lint::L1,
                        message: format!(
                            "iteration over unordered container `{}` (`.{}()`): order is \
                             nondeterministic; use BTreeMap/BTreeSet or sort first",
                            recv.text, m.text
                        ),
                    });
                }
            }
            // `for pat in [&][mut] [self .] name` ending the loop head.
            if toks.first().is_some_and(|t| t.is_ident("for")) {
                if let Some(in_idx) = toks.iter().position(|t| t.is_ident("in")) {
                    let mut j = in_idx + 1;
                    while j < toks.len() && (toks[j].is_punct('&') || toks[j].is_ident("mut")) {
                        j += 1;
                    }
                    if j + 1 < toks.len() && toks[j].is_ident("self") && toks[j + 1].is_punct('.') {
                        j += 2;
                    }
                    if j < toks.len()
                        && j == toks.len() - 1
                        && toks[j].kind == TokKind::Ident
                        && unordered.contains(&toks[j].text)
                    {
                        diags.push(Diagnostic {
                            file: file.path.clone(),
                            line: toks[j].line,
                            lint: Lint::L1,
                            message: format!(
                                "`for` loop over unordered container `{}`: order is \
                                 nondeterministic; use BTreeMap/BTreeSet or sort first",
                                toks[j].text
                            ),
                        });
                    }
                }
            }
        }
    });
}

/// L2 — ambient time or entropy.
fn l2_ambient(file: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    const NEEDLES: [(&[&str], &str); 7] = [
        (&["std", "::", "time", "::", "Instant"], "wall-clock time"),
        (
            &["std", "::", "time", "::", "SystemTime"],
            "wall-clock time",
        ),
        (&["Instant", "::", "now"], "wall-clock time"),
        (&["SystemTime", "::", "now"], "wall-clock time"),
        (&["thread_rng"], "OS entropy"),
        (&["rand", "::", "random"], "OS entropy"),
        (&["RandomState", "::", "new"], "hasher entropy"),
    ];
    let mut all: Vec<&Tok> = Vec::new();
    for item in &file.items {
        item_tokens(item, &mut all);
    }
    let owned: Vec<Tok> = all.into_iter().cloned().collect();
    let mut hit_lines: Vec<(usize, String)> = Vec::new();
    for (seq, what) in NEEDLES {
        for idx in find_seq(&owned, seq) {
            // `std::time::Instant::now` would double-report: suppress the
            // short needle when the long one matched at the same spot.
            if seq.len() == 3 && idx >= 4 && seq_at(&owned, idx - 4, &["std", "::", "time", "::"]) {
                continue;
            }
            hit_lines.push((
                owned[idx].line,
                format!(
                    "`{}` reads {what}: engine code must use the simulated clock / seeded \
                     RngStream",
                    seq.join("")
                ),
            ));
        }
    }
    hit_lines.sort();
    hit_lines.dedup();
    for (line, message) in hit_lines {
        diags.push(Diagnostic {
            file: file.path.clone(),
            line,
            lint: Lint::L2,
            message,
        });
    }
}

/// L3 — panicking calls in non-test code.
fn l3_panics(file: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    non_test_fns(file, &mut |func| {
        let mut toks: Vec<&Tok> = Vec::new();
        block_tokens(&func.body, &mut toks);
        for i in 0..toks.len() {
            let desc = if toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                Some(("`.unwrap()`", toks[i + 1].line))
            } else if toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_ident("expect"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                Some(("`.expect(..)`", toks[i + 1].line))
            } else if toks[i].is_ident("panic") && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                Some(("`panic!`", toks[i].line))
            } else {
                None
            };
            if let Some((what, line)) = desc {
                diags.push(Diagnostic {
                    file: file.path.clone(),
                    line,
                    lint: Lint::L3,
                    message: format!(
                        "{what} in engine code: return an error or justify with \
                         `// lint:allow(L3): <invariant>`"
                    ),
                });
            }
        }
    });
}

/// L6 — WAL write-ahead ordering.
///
/// Within a function that both appends durable records
/// (`…append(ServerRecord::…)` / `…append(LogRecord::…)`) and ships
/// messages (`….send(…)` / `….send_with_delay(…)` on a `net` receiver,
/// or a `send_segment*` dispatch helper), a send that has a durable
/// append *after* it on the same straight-line path but none *before*
/// it violates write-ahead: the message would promise state the log
/// does not yet hold. Sends and appends on mutually exclusive match
/// arms are unrelated and never pair up.
fn l6_wal_ordering(file: &ParsedFile, diags: &mut Vec<Diagnostic>) {
    non_test_fns(file, &mut |func| {
        let flat = flatten(&func.body);
        let mut appends: Vec<&FlatStmt> = Vec::new();
        let mut sends: Vec<&FlatStmt> = Vec::new();
        for fs in &flat {
            let toks = fs.tokens;
            let has_append = find_seq(toks, &["append"]).iter().any(|&i| {
                toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct('.'))
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            }) && (!find_seq(toks, &["ServerRecord", "::"]).is_empty()
                || !find_seq(toks, &["LogRecord", "::"]).is_empty());
            if has_append {
                appends.push(fs);
            }
            let is_send = (0..toks.len()).any(|i| {
                (toks[i].is_ident("send") || toks[i].is_ident("send_with_delay"))
                    && i >= 2
                    && toks[i - 1].is_punct('.')
                    && toks[i - 2].is_ident("net")
            }) || toks
                .iter()
                .any(|t| t.is_ident("send_segment") || t.is_ident("send_segment_delayed"));
            if is_send {
                sends.push(fs);
            }
        }
        if appends.is_empty() {
            return;
        }
        for s in &sends {
            let before = appends
                .iter()
                .any(|a| a.line <= s.line && !diverging(&a.arm_chain, &s.arm_chain));
            let after = appends
                .iter()
                .any(|a| a.line > s.line && !diverging(&a.arm_chain, &s.arm_chain));
            if after && !before {
                diags.push(Diagnostic {
                    file: file.path.clone(),
                    line: s.line,
                    lint: Lint::L6,
                    message: format!(
                        "message send in `{}` precedes the durable WAL append on the same \
                         path: force the ServerLog/SiteLog record before shipping the \
                         message it promises",
                        func.name
                    ),
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn run(src: &str) -> Vec<Diagnostic> {
        file_passes(&parse("t.rs", src), FileConfig::default())
    }

    #[test]
    fn l1_struct_field_iteration_flagged() {
        let src = "struct S { holds: HashMap<u32, u64> }\n\
                   impl S { fn f(&self) { for x in self.holds.values() { let _ = x; } } }\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.lint == Lint::L1 && d.line == 2), "{d:?}");
    }

    #[test]
    fn l1_for_loop_over_set_flagged() {
        let src =
            "fn f() { let seen: HashSet<u32> = HashSet::new();\nfor x in &seen { let _ = x; } }\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.lint == Lint::L1 && d.line == 2), "{d:?}");
    }

    #[test]
    fn l1_btreemap_and_point_lookup_clean() {
        let src = "struct S { holds: BTreeMap<u32, u64>, m: HashMap<u32, u64> }\n\
                   impl S { fn f(&self) -> Option<&u64> { for x in self.holds.values() { let _ = x; } self.m.get(&1) } }\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn l2_ambient_time_and_entropy_flagged() {
        let src = "fn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }\n";
        let d = run(src);
        assert!(
            d.iter().filter(|d| d.lint == Lint::L2).count() >= 2,
            "{d:?}"
        );
    }

    #[test]
    fn l3_unwrap_expect_panic_flagged_not_in_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { let a = x.unwrap(); let b = x.expect(\"n\"); panic!(\"b\") }\n\
                   #[cfg(test)]\nmod tests { #[test] fn t() { None::<u32>.unwrap(); panic!(\"ok\"); } }\n";
        let d = run(src);
        assert_eq!(d.iter().filter(|d| d.lint == Lint::L3).count(), 3, "{d:?}");
    }

    #[test]
    fn l3_strings_and_comments_do_not_trip() {
        let src = "fn f() -> &'static str {\n// panic!( and .unwrap() in a comment\n\"std::time::Instant, panic!(x.unwrap())\"\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn l6_send_before_append_same_path_flagged() {
        let src = "impl S { fn ack(&mut self) {\n\
                   self.net.send(a, b, c);\n\
                   self.slog.append(ServerRecord::Committed { txn });\n\
                   } }\n";
        let d = run(src);
        assert!(d.iter().any(|d| d.lint == Lint::L6 && d.line == 2), "{d:?}");
    }

    #[test]
    fn l6_append_before_send_clean() {
        let src = "impl S { fn ack(&mut self) {\n\
                   self.slog.append(ServerRecord::Committed { txn });\n\
                   self.net.send(a, b, c);\n\
                   } }\n";
        assert!(run(src).iter().all(|d| d.lint != Lint::L6));
    }

    #[test]
    fn l6_cross_arm_send_and_append_unrelated() {
        let src = "impl S { fn h(&mut self, m: M) {\n\
                   match m {\n\
                   M::A => { self.net.send(x, y, z); }\n\
                   M::B => { self.slog.append(ServerRecord::Home { item, version }); }\n\
                   }\n\
                   } }\n";
        assert!(
            run(src).iter().all(|d| d.lint != Lint::L6),
            "{:?}",
            run(src)
        );
    }

    #[test]
    fn l6_send_only_function_unchecked() {
        let src = "impl S { fn relay(&mut self) { self.net.send(a, b, c); } }\n";
        assert!(run(src).is_empty());
    }
}
