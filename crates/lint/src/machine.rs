//! Transaction state-machine extractor.
//!
//! The three engines drive a shared `TxnStatus` machine through
//! `set_status` calls scattered across thousands of lines; no single
//! file shows the whole graph. This pass rebuilds it: states from the
//! `TxnStatus` enum, the initial state from the struct-literal
//! initialiser, and one edge per `set_status` call with its *source*
//! state recovered from context — the enclosing `match status` arm, a
//! preceding `debug_assert_eq!(status, …)`, an `if status == …` guard,
//! or the fall-through set of a filtering match (arms that `return`
//! cannot reach the call). A call with no recoverable source is an
//! *implicit* edge from the initial state.
//!
//! Reachability over the union graph then makes dead protocol paths a
//! lint finding: a state no edge reaches is dead, and a transition out
//! of a dead state can never fire.

use crate::lex::Tok;
use crate::parse::{walk_enums, Arm, Block, ParsedFile, Stmt};
use crate::passes::non_test_fns;
use crate::{Diagnostic, Lint};
use std::collections::{BTreeMap, BTreeSet};

/// The status enum the extractor reconstructs.
pub const STATUS_ENUM: &str = "TxnStatus";
/// The setter whose calls are the machine's edges.
const SETTER: &str = "set_status";

/// One extracted transition.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub from: String,
    pub to: String,
    /// Line of the `set_status` call.
    pub line: usize,
    /// No source-state context was recoverable; `from` is the initial
    /// state by assumption, not by proof.
    pub implicit: bool,
}

/// The machine extracted from one engine file.
#[derive(Debug)]
pub struct Machine {
    /// Engine label: the file stem (`g2pl`, `s2pl`, `c2pl`).
    pub name: String,
    pub file: String,
    pub edges: Vec<Edge>,
}

/// The full extraction result.
#[derive(Debug, Default)]
pub struct Extraction {
    /// `(variant, line)` of the status enum, declaration order.
    pub states: Vec<(String, usize)>,
    /// File defining the status enum.
    pub def_file: String,
    pub initial: Option<String>,
    pub machines: Vec<Machine>,
}

/// Extract the status machine from the parsed workspace.
pub fn extract(files: &[(ParsedFile, crate::FileConfig)]) -> Extraction {
    let mut ext = Extraction::default();
    for (file, _) in files {
        walk_enums(&file.items, &mut |e| {
            if e.name == STATUS_ENUM && !e.in_test && ext.states.is_empty() {
                ext.states = e.variants.clone();
                ext.def_file = file.path.clone();
            }
        });
    }
    if ext.states.is_empty() {
        return ext;
    }

    // Initial state: the struct-literal field init `status: TxnStatus::X`.
    for (file, _) in files {
        non_test_fns(file, &mut |func| {
            crate::parse::walk_stmts(&func.body, &mut |stmt| {
                let toks = stmt_tokens(stmt);
                for i in 0..toks.len() {
                    if toks[i].is_ident("status")
                        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                        && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    {
                        if let Some(st) = variant_at(&toks, i + 2) {
                            ext.initial.get_or_insert(st);
                        }
                    }
                }
            });
        });
    }

    for (file, _) in files {
        let mut edges: Vec<Edge> = Vec::new();
        non_test_fns(file, &mut |func| {
            walk_block(&func.body, &[], &ext, &mut edges);
        });
        if !edges.is_empty() {
            edges.sort();
            edges.dedup();
            let name = file
                .path
                .rsplit('/')
                .next()
                .unwrap_or(&file.path)
                .trim_end_matches(".rs")
                .to_string();
            ext.machines.push(Machine {
                name,
                file: file.path.clone(),
                edges,
            });
        }
    }
    ext.machines.sort_by(|a, b| a.name.cmp(&b.name));
    ext
}

fn stmt_tokens(stmt: &Stmt) -> Vec<Tok> {
    match stmt {
        Stmt::Plain { tokens, .. } => tokens.clone(),
        Stmt::Match { scrutinee, .. } => scrutinee.clone(),
    }
}

/// `TxnStatus :: Variant` starting at token `i`? Returns the variant.
fn variant_at(toks: &[Tok], i: usize) -> Option<String> {
    if toks.get(i)?.is_ident(STATUS_ENUM)
        && toks.get(i + 1)?.kind == crate::lex::TokKind::PathSep
        && toks.get(i + 2)?.kind == crate::lex::TokKind::Ident
    {
        Some(toks[i + 2].text.clone())
    } else {
        None
    }
}

/// Every `TxnStatus::X` variant named in a token run (for `A | B` arm
/// patterns and assert arguments).
fn variants_in(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if let Some(v) = variant_at(toks, i) {
            out.push(v);
        }
    }
    out
}

fn mentions_status(toks: &[Tok]) -> bool {
    toks.iter().any(|t| t.is_ident("status"))
}

/// Does this arm body escape the enclosing function (so control cannot
/// fall through past the match)?
fn arm_escapes(arm: &Arm) -> bool {
    arm.body.stmts.iter().any(|s| {
        let toks = stmt_tokens(s);
        toks.first()
            .is_some_and(|t| t.is_ident("return") || t.is_ident("continue") || t.is_ident("break"))
    })
}

/// Walk one block with `ctx` = the set of states the status variable is
/// known to hold here (empty = unknown). Appends discovered edges.
fn walk_block(block: &Block, ctx: &[String], ext: &Extraction, edges: &mut Vec<Edge>) {
    let mut ctx: Vec<String> = ctx.to_vec();
    for stmt in &block.stmts {
        match stmt {
            Stmt::Match {
                scrutinee, arms, ..
            } if mentions_status(scrutinee) => {
                // Inside each arm the state is the arm's pattern set.
                let mut fallthrough: Vec<String> = Vec::new();
                for arm in arms {
                    let states = variants_in(&arm.pattern);
                    walk_block(&arm.body, &states, ext, edges);
                    if !arm_escapes(arm) {
                        fallthrough.extend(states);
                    }
                }
                // After a filtering match, only fall-through arms' states
                // survive (g2pl `on_abort_notice` shape). If any arm had
                // no recognisable state (wildcard), knowledge is lost.
                let complete = arms
                    .iter()
                    .all(|a| !variants_in(&a.pattern).is_empty() || arm_escapes(a));
                ctx = if complete { fallthrough } else { Vec::new() };
                ctx.sort();
                ctx.dedup();
            }
            Stmt::Match { arms, .. } => {
                for arm in arms {
                    walk_block(&arm.body, &ctx, ext, edges);
                }
            }
            Stmt::Plain {
                tokens, children, ..
            } => {
                let is_assert = tokens
                    .first()
                    .is_some_and(|t| t.is_ident("debug_assert_eq") || t.is_ident("assert_eq"));
                if is_assert && mentions_status(tokens) {
                    // debug_assert_eq!(status(..), TxnStatus::X) pins the
                    // state for the rest of this block.
                    let vs = variants_in(tokens);
                    if vs.len() == 1 {
                        ctx = vs;
                    }
                    continue;
                }
                // set_status(.., TxnStatus::X): one edge per known source
                // state, or an implicit edge from the initial state.
                for i in 0..tokens.len() {
                    if tokens[i].is_punct('.')
                        && tokens.get(i + 1).is_some_and(|t| t.is_ident(SETTER))
                    {
                        if let Some(to) = variants_in(&tokens[i + 2..]).into_iter().next() {
                            if ctx.is_empty() {
                                if let Some(init) = &ext.initial {
                                    edges.push(Edge {
                                        from: init.clone(),
                                        to: to.clone(),
                                        line: tokens[i + 1].line,
                                        implicit: true,
                                    });
                                }
                            } else {
                                for from in &ctx {
                                    edges.push(Edge {
                                        from: from.clone(),
                                        to: to.clone(),
                                        line: tokens[i + 1].line,
                                        implicit: false,
                                    });
                                }
                            }
                            // The write itself is the strongest context.
                            ctx = vec![to];
                        }
                    }
                }
                // `if status == TxnStatus::X { … }` guards the first child
                // block — but only when the comparison is the whole
                // condition (no `||` escape hatch).
                let has_or = tokens
                    .windows(2)
                    .any(|w| w[0].is_punct('|') && w[1].is_punct('|'));
                let guard = if tokens.first().is_some_and(|t| t.is_ident("if"))
                    && mentions_status(tokens)
                    && !has_or
                    && tokens
                        .windows(2)
                        .any(|w| w[0].is_punct('=') && w[1].is_punct('='))
                {
                    variants_in(tokens)
                } else {
                    Vec::new()
                };
                for (ci, child) in children.iter().enumerate() {
                    if ci == 0 && guard.len() == 1 {
                        walk_block(child, &guard, ext, edges);
                    } else {
                        walk_block(child, &ctx, ext, edges);
                    }
                }
                // A child block may have changed the state unpredictably.
                if !children.is_empty() && tokens.iter().any(|t| t.is_ident(SETTER)) {
                    ctx = Vec::new();
                }
            }
        }
    }
}

/// Reachability findings over the union of all machines' edges.
pub fn findings(ext: &Extraction) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if ext.states.is_empty() || ext.machines.is_empty() {
        return diags;
    }
    let Some(initial) = &ext.initial else {
        diags.push(Diagnostic {
            file: ext.def_file.clone(),
            line: ext.states.first().map_or(1, |(_, l)| *l),
            lint: Lint::SM,
            message: format!(
                "`{STATUS_ENUM}` has transitions but no recognisable initial state \
                 (expected a `status: {STATUS_ENUM}::X` field initialiser)"
            ),
        });
        return diags;
    };

    let mut out: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for m in &ext.machines {
        for e in &m.edges {
            out.entry(&e.from).or_default().insert(&e.to);
        }
    }
    let mut reach: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![initial.as_str()];
    while let Some(s) = stack.pop() {
        if reach.insert(s) {
            if let Some(next) = out.get(s) {
                stack.extend(next.iter().copied());
            }
        }
    }
    for (state, line) in &ext.states {
        if !reach.contains(state.as_str()) {
            diags.push(Diagnostic {
                file: ext.def_file.clone(),
                line: *line,
                lint: Lint::SM,
                message: format!(
                    "state `{STATUS_ENUM}::{state}` is unreachable from the initial state \
                     `{initial}` in every engine: dead protocol state"
                ),
            });
        }
    }
    for m in &ext.machines {
        for e in &m.edges {
            if !reach.contains(e.from.as_str()) {
                diags.push(Diagnostic {
                    file: m.file.clone(),
                    line: e.line,
                    lint: Lint::SM,
                    message: format!(
                        "transition `{}` -> `{}` can never fire: its source state is \
                         unreachable from `{initial}`",
                        e.from, e.to
                    ),
                });
            }
        }
    }
    diags
}

/// Render the extraction as Graphviz DOT: one digraph per engine,
/// initial state double-circled, implicit edges dashed.
pub fn dot(ext: &Extraction) -> String {
    let mut s = String::new();
    for m in &ext.machines {
        s.push_str(&format!("digraph {} {{\n", m.name));
        s.push_str("  rankdir=LR;\n  node [shape=circle];\n");
        if let Some(init) = &ext.initial {
            s.push_str(&format!("  \"{init}\" [shape=doublecircle];\n"));
        }
        for (state, _) in &ext.states {
            s.push_str(&format!("  \"{state}\";\n"));
        }
        let mut seen: BTreeSet<(String, String, bool)> = BTreeSet::new();
        for e in &m.edges {
            if !seen.insert((e.from.clone(), e.to.clone(), e.implicit)) {
                continue;
            }
            let style = if e.implicit { " [style=dashed]" } else { "" };
            s.push_str(&format!("  \"{}\" -> \"{}\"{style};\n", e.from, e.to));
        }
        s.push_str("}\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::FileConfig;

    fn extract_src(srcs: &[(&str, &str)]) -> Extraction {
        let files: Vec<(ParsedFile, FileConfig)> = srcs
            .iter()
            .map(|(p, s)| (parse(p, s), FileConfig::default()))
            .collect();
        extract(&files)
    }

    const DEF: &str = "pub enum TxnStatus { Active, Aborting, Committed, Aborted }\n\
                       fn create() -> Txn { Txn { status: TxnStatus::Active } }";

    #[test]
    fn implicit_edge_from_initial() {
        let ext = extract_src(&[
            ("def.rs", DEF),
            ("eng.rs", "fn commit(&mut self, t: TxnId) { self.table.set_status(t, TxnStatus::Committed); }"),
        ]);
        assert_eq!(ext.initial.as_deref(), Some("Active"));
        let m = &ext.machines[0];
        assert_eq!(m.edges.len(), 1);
        assert_eq!(
            (
                m.edges[0].from.as_str(),
                m.edges[0].to.as_str(),
                m.edges[0].implicit
            ),
            ("Active", "Committed", true)
        );
    }

    #[test]
    fn assert_guard_pins_source_state() {
        let ext = extract_src(&[
            ("def.rs", DEF),
            (
                "eng.rs",
                "fn abort_victim(&mut self, v: TxnId) {\n\
                 debug_assert_eq!(self.table.status(v), TxnStatus::Active);\n\
                 self.table.set_status(v, TxnStatus::Aborting);\n}",
            ),
        ]);
        let e = &ext.machines[0].edges[0];
        assert_eq!(
            (e.from.as_str(), e.to.as_str(), e.implicit),
            ("Active", "Aborting", false)
        );
    }

    #[test]
    fn filtering_match_yields_fallthrough_sources() {
        let ext = extract_src(&[
            ("def.rs", DEF),
            (
                "eng.rs",
                "fn on_abort_notice(&mut self, t: TxnId) {\n\
                 match self.table.status(t) {\n\
                 TxnStatus::Committed => return,\n\
                 TxnStatus::Aborted => return,\n\
                 TxnStatus::Active | TxnStatus::Aborting => {}\n\
                 }\n\
                 self.table.set_status(t, TxnStatus::Aborted);\n}",
            ),
        ]);
        let edges = &ext.machines[0].edges;
        let pairs: Vec<(&str, &str)> = edges
            .iter()
            .map(|e| (e.from.as_str(), e.to.as_str()))
            .collect();
        assert!(pairs.contains(&("Active", "Aborted")), "{edges:?}");
        assert!(pairs.contains(&("Aborting", "Aborted")), "{edges:?}");
        assert!(edges.iter().all(|e| !e.implicit), "{edges:?}");
    }

    #[test]
    fn match_arm_context_and_dead_state_finding() {
        // `Frozen` is never a set_status target and not initial: dead.
        let ext = extract_src(&[
            (
                "def.rs",
                "pub enum TxnStatus { Active, Frozen, Committed }\n\
                        fn create() -> Txn { Txn { status: TxnStatus::Active } }",
            ),
            (
                "eng.rs",
                "fn tick(&mut self, t: TxnId) {\n\
                 match self.table.status(t) {\n\
                 TxnStatus::Active => { self.table.set_status(t, TxnStatus::Committed); }\n\
                 TxnStatus::Frozen => { self.table.set_status(t, TxnStatus::Active); }\n\
                 TxnStatus::Committed => {}\n\
                 }\n}",
            ),
        ]);
        let found = findings(&ext);
        assert!(
            found
                .iter()
                .any(|d| d.lint == Lint::SM && d.message.contains("`TxnStatus::Frozen`")),
            "{found:?}"
        );
        // The Frozen -> Active transition is dead too.
        assert!(
            found.iter().any(|d| d.message.contains("can never fire")),
            "{found:?}"
        );
    }

    #[test]
    fn healthy_machine_has_no_findings_and_dot_renders() {
        let ext = extract_src(&[
            ("def.rs", DEF),
            (
                "g2pl.rs",
                "fn commit(&mut self, t: TxnId) { self.table.set_status(t, TxnStatus::Committed); }\n\
                 fn abort_victim(&mut self, v: TxnId) {\n\
                 debug_assert_eq!(self.table.status(v), TxnStatus::Active);\n\
                 self.table.set_status(v, TxnStatus::Aborting);\n}\n\
                 fn finalize(&mut self, t: TxnId) {\n\
                 match self.table.status(t) {\n\
                 TxnStatus::Aborting => { self.table.set_status(t, TxnStatus::Aborted); }\n\
                 _ => {}\n\
                 }\n}",
            ),
        ]);
        assert!(findings(&ext).is_empty(), "{:?}", findings(&ext));
        let d = dot(&ext);
        assert!(d.contains("digraph g2pl"), "{d}");
        assert!(d.contains("\"Active\" [shape=doublecircle]"), "{d}");
        assert!(
            d.contains("\"Active\" -> \"Committed\" [style=dashed]"),
            "{d}"
        );
        assert!(d.contains("\"Aborting\" -> \"Aborted\";"), "{d}");
    }
}
