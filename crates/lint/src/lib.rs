//! Workspace-wide determinism & protocol-invariant analyzer.
//!
//! The simulator's headline guarantee is that a run's seed fully
//! determines its trace. This crate enforces the source-level rules that
//! guarantee rests on, mechanically, over *every* workspace member (the
//! covered set is derived from the root `Cargo.toml` — see
//! [`workspace`]). It is a real lexer + item-tree parser built on
//! nothing outside `std` ([`lex`], [`parse`]): enough structure to tell
//! a match pattern from an expression and test code from engine code,
//! with no pretension to a full Rust grammar.
//!
//! Lint families:
//!
//! * **L1 — unordered-map iteration.** Iterating a `HashMap`/`HashSet`
//!   yields an arbitrary order that varies across runs and toolchains.
//!   In a decision path that is a nondeterminism bug even when every
//!   element is visited; use `BTreeMap`/`BTreeSet` or sort first.
//! * **L2 — ambient time or entropy.** `std::time::{Instant,
//!   SystemTime}`, `rand::thread_rng`, and hashing's `RandomState` read
//!   wall-clock or OS entropy. All time must come from the simulated
//!   clock, all randomness from seeded [`RngStream`]s; only `simcore`
//!   (which owns those abstractions) is exempt.
//! * **L3 — panicking calls.** `unwrap`/`expect`/`panic!` outside test
//!   code turn recoverable conditions into crashes. Deliberate invariant
//!   assertions are allowed with a justification (see below).
//! * **L4 — RNG-stream discipline.** Every RNG stream must be derived
//!   with a unique string-literal label (or a `derive_indexed` literal
//!   prefix); duplicate labels silently correlate two consumers' draws,
//!   and non-literal labels make uniqueness uncheckable ([`crossfile`]).
//! * **L5 — trace-event completeness.** Every `TraceKind`/`SpanKind`
//!   variant must have at least one engine emission site, and protocol
//!   decision functions must emit: an unemitted event is a verifier
//!   blind spot that type-checks ([`crossfile`]).
//! * **L6 — WAL write-ahead ordering.** Within a function, a commit
//!   acknowledgement send must not precede the log append that makes it
//!   durable ([`passes`]).
//! * **L7 — allow hygiene.** `lint:allow` markers must carry a reason
//!   and must still suppress something: a stale allow is a disabled
//!   check nobody remembers disabling.
//! * **SM — state-machine reachability.** The `TxnStatus` transition
//!   graph is extracted from the engines' `set_status` sites; states and
//!   transitions unreachable from the initial state are findings
//!   ([`machine`], rendered with `g2pl-lint --dot`).
//!
//! A finding on line *n* is suppressed by `// lint:allow(Lx): reason`
//! on line *n* or *n − 1*. The reason is mandatory — an allow without
//! one is itself an L7 finding, as is one that no longer fires.
//!
//! [`RngStream`]: ../g2pl_simcore/rng/struct.RngStream.html

pub mod crossfile;
pub mod lex;
pub mod machine;
pub mod parse;
pub mod passes;
pub mod workspace;

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// Which lint a diagnostic belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Iteration over `HashMap`/`HashSet`.
    L1,
    /// Ambient time or entropy.
    L2,
    /// `unwrap`/`expect`/`panic!` in non-test engine code.
    L3,
    /// RNG-stream naming discipline.
    L4,
    /// Trace/span event completeness.
    L5,
    /// WAL write-ahead ordering.
    L6,
    /// Allow-marker hygiene (malformed or stale `lint:allow`).
    L7,
    /// State-machine reachability.
    SM,
}

impl Lint {
    fn as_str(self) -> &'static str {
        match self {
            Lint::L1 => "L1",
            Lint::L2 => "L2",
            Lint::L3 => "L3",
            Lint::L4 => "L4",
            Lint::L5 => "L5",
            Lint::L6 => "L6",
            Lint::L7 => "L7",
            Lint::SM => "SM",
        }
    }

    /// Tags a `lint:allow(..)` marker may name. L7 is deliberately
    /// absent: allowing the allow-auditor is a contradiction.
    const ALLOWABLE: [(&'static str, Lint); 7] = [
        ("L1", Lint::L1),
        ("L2", Lint::L2),
        ("L3", Lint::L3),
        ("L4", Lint::L4),
        ("L5", Lint::L5),
        ("L6", Lint::L6),
        ("SM", Lint::SM),
    ];
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a lint violated at a source location.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path as given to the analyzer (workspace-relative in CLI use).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated lint.
    pub lint: Lint,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Per-file lint configuration.
#[derive(Clone, Copy, Debug)]
pub struct FileConfig {
    /// Apply L2 (false for `simcore`, which owns the clock and RNG).
    pub check_ambient: bool,
}

impl Default for FileConfig {
    fn default() -> Self {
        FileConfig {
            check_ambient: true,
        }
    }
}

/// One source file handed to [`analyze_sources`].
#[derive(Clone, Debug)]
pub struct SourceFile {
    pub path: String,
    pub text: String,
    pub config: FileConfig,
}

/// The full analysis result.
#[derive(Debug)]
pub struct Analysis {
    /// Findings after allow-marker suppression, sorted by location.
    pub diagnostics: Vec<Diagnostic>,
    /// The extracted transaction state machine (for `--dot`).
    pub extraction: machine::Extraction,
}

/// A `lint:allow` marker found in a comment.
#[derive(Debug)]
struct AllowMarker {
    line: usize,
    /// `None` = malformed (unknown tag or missing reason).
    lint: Option<Lint>,
}

fn parse_markers(file: &parse::ParsedFile) -> Vec<AllowMarker> {
    let mut markers = Vec::new();
    for (&line, comment) in &file.comments {
        // Doc comments are documentation: a rustdoc paragraph quoting the
        // marker syntax is not a suppression request.
        if comment.starts_with("///")
            || comment.starts_with("//!")
            || comment.starts_with("/**")
            || comment.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = comment.find("lint:allow(") else {
            continue;
        };
        let after = &comment[pos + "lint:allow(".len()..];
        let lint = Lint::ALLOWABLE.iter().find_map(|(tag, l)| {
            after.strip_prefix(tag).and_then(|rest| {
                let rest = rest.strip_prefix(')')?.trim_start();
                let reason = rest.strip_prefix(':')?.trim();
                (reason.len() >= 3).then_some(*l)
            })
        });
        markers.push(AllowMarker { line, lint });
    }
    markers
}

/// Analyze a set of source files together. Cross-file passes (L4, L5,
/// SM) see the whole set; allow markers are resolved per file and
/// audited for staleness (L7) against the *raw* findings.
#[must_use]
pub fn analyze_sources(sources: &[SourceFile]) -> Analysis {
    let files: Vec<(parse::ParsedFile, FileConfig)> = sources
        .iter()
        .map(|s| (parse::parse(&s.path, &s.text), s.config))
        .collect();

    let mut raw: Vec<Diagnostic> = Vec::new();
    for (file, config) in &files {
        raw.extend(passes::file_passes(file, *config));
    }
    raw.extend(crossfile::l4_rng_streams(&files));
    raw.extend(crossfile::l5_trace_completeness(&files));
    let extraction = machine::extract(&files);
    raw.extend(machine::findings(&extraction));

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for (file, _) in &files {
        let markers = parse_markers(file);
        let covered = passes::non_test_token_lines(file);
        let raw_here: Vec<&Diagnostic> = raw.iter().filter(|d| d.file == file.path).collect();

        // Suppression: a well-formed marker on the finding line or the
        // line above it.
        let suppressed = |d: &Diagnostic| {
            markers
                .iter()
                .any(|m| m.lint == Some(d.lint) && (m.line == d.line || m.line + 1 == d.line))
        };
        diagnostics.extend(
            raw_here
                .iter()
                .filter(|d| !suppressed(d))
                .map(|d| (*d).clone()),
        );

        for m in &markers {
            match m.lint {
                None => {
                    // Malformed markers are audited wherever they appear —
                    // a typo'd tag in test code still reads as a promise.
                    diagnostics.push(Diagnostic {
                        file: file.path.clone(),
                        line: m.line,
                        lint: Lint::L7,
                        message: "malformed lint:allow — use `lint:allow(Lx): reason` \
                                  (reason mandatory, tag one of L1-L6/SM)"
                            .to_string(),
                    });
                }
                Some(lint) => {
                    let used = raw_here
                        .iter()
                        .any(|d| d.lint == lint && (d.line == m.line || d.line == m.line + 1));
                    let on_code = covered.contains(&m.line) || covered.contains(&(m.line + 1));
                    if !used && on_code {
                        diagnostics.push(Diagnostic {
                            file: file.path.clone(),
                            line: m.line,
                            lint: Lint::L7,
                            message: format!(
                                "stale lint:allow({lint}) — no {lint} finding fires on this \
                                 line anymore; remove the marker"
                            ),
                        });
                    }
                }
            }
        }
    }

    diagnostics.sort();
    diagnostics.dedup();
    Analysis {
        diagnostics,
        extraction,
    }
}

/// Scan one file in isolation. Cross-file passes run over the single
/// file (so fixtures can seed L4/L5/SM bugs self-contained).
#[must_use]
pub fn lint_source(file: &str, source: &str, config: FileConfig) -> Vec<Diagnostic> {
    analyze_sources(&[SourceFile {
        path: file.to_string(),
        text: source.to_string(),
        config,
    }])
    .diagnostics
}

/// Analyze every covered workspace member under `root`. Coverage is
/// derived from the root `Cargo.toml` (see [`workspace::discover`]);
/// diagnostics carry workspace-relative paths.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let members = workspace::discover(root)?;
    let mut sources = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for member in &members {
        let config = member.config();
        let files = workspace::member_sources(root, member)
            .map_err(|e| format!("reading {}: {e}", member.rel))?;
        for path in files {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if seen.insert(label.clone()) {
                sources.push(SourceFile {
                    path: label,
                    text,
                    config,
                });
            }
        }
    }
    Ok(analyze_sources(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source("test.rs", src, FileConfig::default())
    }

    #[test]
    fn flags_hashmap_iteration() {
        let src = "struct S { holds: HashMap<u32, u64> }\n\
                   impl S { fn f(&self) { for x in self.holds.values() { let _ = x; } } }\n";
        let d = lint(src);
        assert!(d.iter().any(|d| d.lint == Lint::L1 && d.line == 2), "{d:?}");
    }

    #[test]
    fn flags_for_loop_over_set() {
        let src =
            "fn f() { let seen: HashSet<u32> = HashSet::new();\nfor x in &seen { let _ = x; } }\n";
        let d = lint(src);
        assert!(d.iter().any(|d| d.lint == Lint::L1 && d.line == 2), "{d:?}");
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "struct S { holds: BTreeMap<u32, u64> }\n\
                   impl S { fn f(&self) { for x in self.holds.values() { let _ = x; } } }\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn point_lookups_on_hashmap_are_fine() {
        let src = "struct S { holds: HashMap<u32, u64> }\n\
                   impl S { fn f(&self) -> Option<&u64> { self.holds.get(&1) } }\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn flags_ambient_time_and_entropy() {
        let src = "fn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }\n";
        let d = lint(src);
        assert!(
            d.iter().filter(|d| d.lint == Lint::L2).count() >= 2,
            "{d:?}"
        );
    }

    #[test]
    fn simcore_config_skips_ambient() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let d = lint_source(
            "test.rs",
            src,
            FileConfig {
                check_ambient: false,
            },
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let src = "fn f(x: Option<u32>) -> u32 { let a = x.unwrap(); let b = x.expect(\"no\"); panic!(\"boom\"); }\n";
        let d = lint(src);
        assert_eq!(d.iter().filter(|d| d.lint == Lint::L3).count(), 3, "{d:?}");
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // lint:allow(L3): invariant — x checked above\n\
                   x.unwrap()\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
        let same_line = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(L3): checked\n";
        assert!(lint(same_line).is_empty(), "{:?}", lint(same_line));
    }

    #[test]
    fn allow_without_reason_is_l7() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(L3)\n";
        let d = lint(src);
        assert!(
            d.iter()
                .any(|d| d.lint == Lint::L7 && d.message.contains("malformed")),
            "{d:?}"
        );
        // The unsuppressed L3 still fires.
        assert!(d.iter().any(|d| d.lint == Lint::L3), "{d:?}");
    }

    #[test]
    fn stale_allow_is_l7() {
        let src = "fn f(x: u32) -> u32 {\n\
                   // lint:allow(L3): this used to unwrap\n\
                   x + 1\n}\n";
        let d = lint(src);
        assert!(
            d.iter()
                .any(|d| d.lint == Lint::L7 && d.line == 2 && d.message.contains("stale")),
            "{d:?}"
        );
    }

    #[test]
    fn allow_in_test_code_is_never_stale() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn t(x: Option<u32>) -> u32 {\n\
                   // lint:allow(L3): test-only helper\n\
                   x.unwrap()\n}\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "fn prod(x: Option<u32>) { let _ = x; }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[test]\n\
                   fn t() { panic!(\"fine in tests\"); }\n\
                   }\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        let src = "fn f() -> &'static str {\n\
                   // mention of panic!( and .unwrap() in a comment\n\
                   \"std::time::Instant in a string, panic!(x.unwrap())\"\n\
                   }\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "/* start\n x.unwrap() still commented\n*/\nfn f() {}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn diagnostics_render_file_line_lint() {
        let d = Diagnostic {
            file: "crates/x/src/a.rs".into(),
            line: 7,
            lint: Lint::L1,
            message: "m".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/a.rs:7: L1: m");
    }

    #[test]
    fn cross_file_l4_sees_both_files() {
        let a = SourceFile {
            path: "a.rs".into(),
            text: "fn a(s: u64) { let r = RngStream::derive(s, \"dup\"); }".into(),
            config: FileConfig::default(),
        };
        let b = SourceFile {
            path: "b.rs".into(),
            text: "fn b(s: u64) { let r = RngStream::derive(s, \"dup\"); }".into(),
            config: FileConfig::default(),
        };
        let an = analyze_sources(&[a, b]);
        assert!(
            an.diagnostics
                .iter()
                .any(|d| d.lint == Lint::L4 && d.file == "b.rs"),
            "{:?}",
            an.diagnostics
        );
    }
}
