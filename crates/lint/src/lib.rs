//! Determinism & protocol-invariant lints for the g-2PL engine crates.
//!
//! The simulator's headline guarantee is that a run's seed fully
//! determines its trace. Three classes of source-level mistakes can break
//! that silently, so this crate enforces them mechanically over the
//! engine crates (`protocols`, `lockmgr`, `fwdlist`, `simcore`,
//! `netmodel`):
//!
//! * **L1 — unordered-map iteration.** Iterating a `HashMap`/`HashSet`
//!   yields an arbitrary order that varies across runs and toolchains.
//!   In a decision path (victim selection, forward-list ordering, lock
//!   release sweeps) that is a nondeterminism bug even when every element
//!   is visited. Engine code must use `BTreeMap`/`BTreeSet` or sort
//!   explicitly before iterating.
//! * **L2 — ambient time or entropy.** `std::time::{Instant, SystemTime}`,
//!   `rand::thread_rng`, and hashing's `RandomState` read wall-clock or
//!   OS entropy. All time must come from the simulated clock and all
//!   randomness from seeded [`RngStream`]s; only `simcore` (which owns
//!   those abstractions) is exempt.
//! * **L3 — panicking calls in engine code.** `unwrap`/`expect`/`panic!`
//!   outside `#[cfg(test)]` turn recoverable conditions into crashes.
//!   Deliberate invariant assertions are allowed, but must carry a
//!   visible justification (see below).
//!
//! A finding on line *n* is suppressed by `// lint:allow(Lx): reason`
//! on line *n* or *n − 1*. The reason is mandatory — an allow without
//! one is itself reported.
//!
//! The analyzer is a comment/string-aware token scanner, not a full
//! parser: precise enough for these lints (it tracks declared
//! `HashMap`/`HashSet` bindings per file and `#[cfg(test)]` regions by
//! brace depth) while depending on nothing outside `std`.
//!
//! [`RngStream`]: ../g2pl_simcore/rng/struct.RngStream.html

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates the lints apply to, relative to the workspace root.
pub const ENGINE_CRATES: [&str; 8] = [
    "crates/protocols",
    "crates/lockmgr",
    "crates/fwdlist",
    "crates/simcore",
    "crates/netmodel",
    "crates/faults",
    "crates/wal",
    "crates/obs",
];

/// Individual files outside [`ENGINE_CRATES`] that still run decision
/// code the determinism lints exist for. The chaos harness derives every
/// draw from seeded [`RngStream`]s; ambient entropy there would make
/// failing trials unreproducible.
///
/// [`RngStream`]: ../g2pl_simcore/rng/struct.RngStream.html
pub const ENGINE_EXTRA_FILES: [&str; 2] =
    ["crates/bench/src/chaos.rs", "crates/bench/src/bin/chaos.rs"];

/// Which lint a diagnostic belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Iteration over `HashMap`/`HashSet`.
    L1,
    /// Ambient time or entropy.
    L2,
    /// `unwrap`/`expect`/`panic!` in non-test engine code.
    L3,
}

impl Lint {
    fn as_str(self) -> &'static str {
        match self {
            Lint::L1 => "L1",
            Lint::L2 => "L2",
            Lint::L3 => "L3",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a lint violated at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as given to the scanner (workspace-relative in CLI use).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated lint.
    pub lint: Lint,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Per-file lint configuration.
#[derive(Clone, Copy, Debug)]
pub struct FileConfig {
    /// Apply L2 (false for `simcore`, which owns the clock and RNG).
    pub check_ambient: bool,
}

impl Default for FileConfig {
    fn default() -> Self {
        FileConfig {
            check_ambient: true,
        }
    }
}

/// A source line with comments and string literals blanked out, plus the
/// comment text (kept separately so `lint:allow` markers survive).
struct CleanLine {
    /// Code with comments/strings replaced by spaces; same length/columns.
    code: String,
    /// Text of any `//` comment on the line.
    comment: String,
    /// Whether this line is inside a `#[cfg(test)]` region.
    in_test: bool,
}

/// Strip comments and strings across a whole file, tracking block
/// comments and `#[cfg(test)]` brace regions.
fn clean_lines(source: &str) -> Vec<CleanLine> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    // (depth_at_entry) for each active #[cfg(test)] region; a pending
    // marker waits for the region's opening brace.
    let mut test_regions: Vec<i32> = Vec::new();
    let mut pending_test_attr = false;
    let mut depth: i32 = 0;

    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut chars = raw.chars().peekable();
        let mut in_string = false;
        let mut in_char = false;

        while let Some(c) = chars.next() {
            if in_block_comment {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment = false;
                    code.push_str("  ");
                } else {
                    code.push(' ');
                }
                continue;
            }
            if in_string {
                if c == '\\' {
                    chars.next();
                    code.push_str("  ");
                } else if c == '"' {
                    in_string = false;
                    code.push('"');
                } else {
                    code.push(' ');
                }
                continue;
            }
            if in_char {
                if c == '\\' {
                    chars.next();
                    code.push_str("  ");
                } else if c == '\'' {
                    in_char = false;
                    code.push('\'');
                } else {
                    code.push(' ');
                }
                continue;
            }
            match c {
                '/' if chars.peek() == Some(&'/') => {
                    comment.push('/');
                    comment.extend(chars.by_ref());
                    break;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment = true;
                    code.push_str("  ");
                }
                '"' => {
                    in_string = true;
                    code.push('"');
                }
                // A lifetime or char literal; only treat as a char
                // literal when it closes (e.g. 'a'), otherwise it is a
                // lifetime tick and passes through.
                '\'' => {
                    let mut lookahead = chars.clone();
                    let is_char_lit = match lookahead.next() {
                        Some('\\') => true,
                        Some(_) => lookahead.next() == Some('\''),
                        None => false,
                    };
                    if is_char_lit {
                        in_char = true;
                    }
                    code.push('\'');
                }
                _ => code.push(c),
            }
        }

        // Track #[cfg(test)] regions by brace depth on cleaned code.
        let trimmed = code.trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            pending_test_attr = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_test_attr {
                        test_regions.push(depth);
                        pending_test_attr = false;
                    }
                }
                '}' => {
                    if let Some(&region) = test_regions.last() {
                        if depth == region {
                            test_regions.pop();
                        }
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        out.push(CleanLine {
            code,
            comment,
            in_test: pending_test_attr || !test_regions.is_empty(),
        });
    }
    out
}

/// True if `code[idx]` begins a standalone word (not mid-identifier).
fn word_at(code: &str, idx: usize, word: &str) -> bool {
    let before_ok = idx == 0
        || !code[..idx]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let end = idx + word.len();
    let after_ok = end >= code.len()
        || !code[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// All standalone occurrences of `word` in `code`.
fn find_word(code: &str, word: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let idx = from + pos;
        if word_at(code, idx, word) {
            hits.push(idx);
        }
        from = idx + word.len();
    }
    hits
}

/// Identifier immediately before the `.` at `dot_idx`: the last path
/// segment of the receiver, so `self.holds.iter()` → `holds` and
/// `seen.iter()` → `seen`. Chains ending in a call (`f().iter()`) have
/// no identifier receiver and return `None`.
fn receiver_ident(code: &str, dot_idx: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let end = dot_idx;
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || c == '_' {
            start -= 1;
        } else {
            break;
        }
    }
    if start == end {
        return None;
    }
    Some(code[start..end].to_string())
}

/// Methods whose call on a `HashMap`/`HashSet` receiver iterates it.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
    "into_values",
];

/// Scan one file. `file` is the path label used in diagnostics.
#[must_use]
pub fn lint_source(file: &str, source: &str, config: FileConfig) -> Vec<Diagnostic> {
    let lines = clean_lines(source);
    let mut diags = Vec::new();

    // Pass 1: collect identifiers declared with an unordered-map type
    // anywhere in the file (struct fields and annotated/inferred lets).
    let mut unordered: Vec<String> = Vec::new();
    for line in &lines {
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            for idx in find_word(code, ty) {
                // `name: HashMap<...>` / `name: &mut HashMap<...>`
                // (struct field, let annotation, or parameter).
                let mut before = code[..idx].trim_end();
                loop {
                    if let Some(s) = before.strip_suffix('&') {
                        before = s.trim_end();
                    } else if let Some(s) = before.strip_suffix("mut") {
                        before = s.trim_end();
                    } else {
                        break;
                    }
                }
                if let Some(bare) = before.strip_suffix(':') {
                    let name: String = bare
                        .chars()
                        .rev()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect::<String>()
                        .chars()
                        .rev()
                        .collect();
                    if !name.is_empty() {
                        unordered.push(name);
                    }
                }
                // `let name = HashMap::new()` (and with_capacity/from).
                if let Some(before) = code[..idx].trim_end().strip_suffix('=') {
                    let binding = before.trim_end();
                    if let Some(p) = binding.rfind("let ") {
                        let rest = binding[p + 4..].trim().trim_start_matches("mut ");
                        let name: String = rest
                            .chars()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect();
                        if !name.is_empty() {
                            unordered.push(name);
                        }
                    }
                }
            }
        }
    }
    unordered.sort();
    unordered.dedup();

    // Pass 2: per-line checks.
    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = &line.code;
        let allowed = |lint: Lint| -> bool {
            let marker = format!("lint:allow({})", lint.as_str());
            let mut comments = vec![lines[i].comment.as_str()];
            if i > 0 {
                comments.push(lines[i - 1].comment.as_str());
            }
            comments.iter().any(|c| {
                c.find(&marker).is_some_and(|pos| {
                    let after = c[pos + marker.len()..].trim_start();
                    after.starts_with(':') && after[1..].trim().len() >= 3
                })
            })
        };

        if line.in_test {
            continue;
        }

        // L1: iteration over tracked unordered containers, plus
        // `for _ in map` over a tracked name.
        for idx in code.match_indices('.').map(|(p, _)| p) {
            let rest = &code[idx + 1..];
            for m in ITER_METHODS {
                if rest.starts_with(m)
                    && rest[m.len()..].trim_start().starts_with('(')
                    && word_at(code, idx + 1, m)
                {
                    if let Some(recv) = receiver_ident(code, idx) {
                        if unordered.contains(&recv) && !allowed(Lint::L1) {
                            diags.push(Diagnostic {
                                file: file.to_string(),
                                line: lineno,
                                lint: Lint::L1,
                                message: format!(
                                    "iteration over unordered container `{recv}` \
                                         (`.{m}()`): order is nondeterministic; use \
                                         BTreeMap/BTreeSet or sort first"
                                ),
                            });
                        }
                    }
                }
            }
        }
        if let Some(for_idx) = find_word(code, "for").first().copied() {
            if let Some(in_rel) = code[for_idx..].find(" in ") {
                let tail = code[for_idx + in_rel + 4..].trim_start();
                let tail = tail.trim_start_matches('&').trim_start_matches("mut ");
                let tail = tail.strip_prefix("self.").unwrap_or(tail);
                let name: String = tail
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                let after = &tail[name.len()..];
                let direct = after.trim_start().starts_with('{') || after.trim_start().is_empty();
                if direct && unordered.contains(&name) && !allowed(Lint::L1) {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: lineno,
                        lint: Lint::L1,
                        message: format!(
                            "`for` loop over unordered container `{name}`: order is \
                             nondeterministic; use BTreeMap/BTreeSet or sort first"
                        ),
                    });
                }
            }
        }

        // L2: ambient time/entropy.
        if config.check_ambient {
            for (needle, what) in [
                ("std::time::Instant", "wall-clock time"),
                ("std::time::SystemTime", "wall-clock time"),
                ("Instant::now", "wall-clock time"),
                ("SystemTime::now", "wall-clock time"),
                ("thread_rng", "OS entropy"),
                ("rand::random", "OS entropy"),
                ("RandomState::new", "hasher entropy"),
            ] {
                if code.contains(needle) && !allowed(Lint::L2) {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: lineno,
                        lint: Lint::L2,
                        message: format!(
                            "`{needle}` reads {what}: engine code must use the \
                             simulated clock / seeded RngStream"
                        ),
                    });
                }
            }
        }

        // L3: panicking calls.
        for (pat, desc) in [
            (".unwrap()", "`.unwrap()`"),
            (".expect(", "`.expect(..)`"),
            ("panic!(", "`panic!`"),
        ] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(pat) {
                let idx = from + pos;
                from = idx + pat.len();
                // `panic!` must start a word (skip e.g. `debug_panic!`);
                // method patterns start with '.' so they always match.
                if pat.starts_with('p') && !word_at(code, idx, "panic") {
                    continue;
                }
                if !allowed(Lint::L3) {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: lineno,
                        lint: Lint::L3,
                        message: format!(
                            "{desc} in engine code: return an error or justify \
                             with `// lint:allow(L3): <invariant>`"
                        ),
                    });
                }
            }
        }

        // Malformed allow markers: an allow without a reason is an error
        // wherever it appears (test code included would be noise — keep
        // it to engine lines, which is where we are).
        if let Some(pos) = line.comment.find("lint:allow(") {
            let after = &line.comment[pos..];
            let well_formed = ["L1", "L2", "L3"].iter().any(|l| {
                after
                    .strip_prefix(&format!("lint:allow({l})"))
                    .is_some_and(|rest| {
                        rest.trim_start().starts_with(':')
                            && rest.trim_start()[1..].trim().len() >= 3
                    })
            });
            if !well_formed {
                diags.push(Diagnostic {
                    file: file.to_string(),
                    line: lineno,
                    lint: Lint::L3,
                    message: "malformed lint:allow — use `lint:allow(Lx): reason`".to_string(),
                });
            }
        }
    }
    diags
}

/// Recursively collect `.rs` files under `dir` in sorted order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Engine-crate coverage check: every entry of [`ENGINE_CRATES`] must
/// exist on disk, and the fault-injection crate must stay covered — the
/// recovery paths it drives are exactly the kind of decision code the
/// determinism lints exist for, so dropping it from the list is an error,
/// not a configuration choice.
pub fn check_coverage(workspace_root: &Path) -> Vec<String> {
    let mut errs = Vec::new();
    for krate in ENGINE_CRATES {
        if !workspace_root.join(krate).join("src").is_dir() {
            errs.push(format!("engine crate listed but missing on disk: {krate}"));
        }
    }
    if !ENGINE_CRATES.contains(&"crates/faults") {
        errs.push("crates/faults must be covered by ENGINE_CRATES".to_string());
    }
    if !ENGINE_CRATES.contains(&"crates/wal") {
        errs.push("crates/wal must be covered by ENGINE_CRATES".to_string());
    }
    for file in ENGINE_EXTRA_FILES {
        if !workspace_root.join(file).is_file() {
            errs.push(format!(
                "extra lint file listed but missing on disk: {file}"
            ));
        }
    }
    errs
}

/// Lint every engine crate under `workspace_root`; diagnostics carry
/// workspace-relative paths.
pub fn lint_workspace(workspace_root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for krate in ENGINE_CRATES {
        let src = workspace_root.join(krate).join("src");
        let config = FileConfig {
            // simcore owns the clock and RNG abstractions.
            check_ambient: krate != "crates/simcore",
        };
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for path in files {
            let source = std::fs::read_to_string(&path)?;
            let label = path
                .strip_prefix(workspace_root)
                .unwrap_or(&path)
                .display()
                .to_string();
            diags.extend(lint_source(&label, &source, config));
        }
    }
    for file in ENGINE_EXTRA_FILES {
        let source = std::fs::read_to_string(workspace_root.join(file))?;
        diags.extend(lint_source(file, &source, FileConfig::default()));
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source("test.rs", src, FileConfig::default())
    }

    #[test]
    fn coverage_includes_faults_crate() {
        assert!(ENGINE_CRATES.contains(&"crates/faults"));
    }

    #[test]
    fn engine_crates_exist_on_disk() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        assert_eq!(check_coverage(root), Vec::<String>::new());
    }

    #[test]
    fn flags_hashmap_iteration() {
        let src = "struct S { holds: HashMap<u32, u64> }\n\
                   impl S { fn f(&self) { for x in self.holds.values() { let _ = x; } } }\n";
        let d = lint(src);
        assert!(d.iter().any(|d| d.lint == Lint::L1 && d.line == 2), "{d:?}");
    }

    #[test]
    fn flags_for_loop_over_set() {
        let src =
            "fn f() { let seen: HashSet<u32> = HashSet::new();\nfor x in &seen { let _ = x; } }\n";
        let d = lint(src);
        assert!(d.iter().any(|d| d.lint == Lint::L1 && d.line == 2), "{d:?}");
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "struct S { holds: BTreeMap<u32, u64> }\n\
                   impl S { fn f(&self) { for x in self.holds.values() { let _ = x; } } }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn point_lookups_on_hashmap_are_fine() {
        let src = "struct S { holds: HashMap<u32, u64> }\n\
                   impl S { fn f(&self) -> Option<&u64> { self.holds.get(&1) } }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn flags_ambient_time_and_entropy() {
        let src = "fn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }\n";
        let d = lint(src);
        assert!(
            d.iter().filter(|d| d.lint == Lint::L2).count() >= 2,
            "{d:?}"
        );
    }

    #[test]
    fn simcore_config_skips_ambient() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let d = lint_source(
            "test.rs",
            src,
            FileConfig {
                check_ambient: false,
            },
        );
        assert!(d.is_empty());
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let src = "fn f(x: Option<u32>) -> u32 { let a = x.unwrap(); let b = x.expect(\"no\"); panic!(\"boom\"); }\n";
        let d = lint(src);
        assert_eq!(d.iter().filter(|d| d.lint == Lint::L3).count(), 3, "{d:?}");
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // lint:allow(L3): invariant — x checked above\n\
                   x.unwrap()\n}\n";
        assert!(lint(src).is_empty());
        let same_line = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(L3): checked\n";
        assert!(lint(same_line).is_empty());
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(L3)\n";
        let d = lint(src);
        assert!(d.iter().any(|d| d.message.contains("malformed")), "{d:?}");
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "fn prod(x: Option<u32>) { let _ = x; }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[test]\n\
                   fn t() { panic!(\"fine in tests\"); }\n\
                   }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        let src = "fn f() -> &'static str {\n\
                   // mention of panic!( and .unwrap() in a comment\n\
                   \"std::time::Instant in a string, panic!(x.unwrap())\"\n\
                   }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "/* start\n x.unwrap() still commented\n*/\nfn f() {}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn diagnostics_render_file_line_lint() {
        let d = Diagnostic {
            file: "crates/x/src/a.rs".into(),
            line: 7,
            lint: Lint::L1,
            message: "m".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/a.rs:7: L1: m");
    }
}
