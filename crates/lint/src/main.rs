//! `g2pl-lint` — run the workspace-wide determinism/invariant analyzer
//! and exit non-zero on any finding.
//!
//! Usage: `cargo run -p g2pl-lint` (from anywhere in the workspace).
//! Diagnostics are `file:line: Lx: message`, one per line, sorted.
//! `--dot` instead prints the extracted `TxnStatus` state machine as
//! Graphviz DOT (one digraph per engine) and exits zero iff at least
//! one machine was extracted.

use std::path::PathBuf;
use std::process::ExitCode;

/// Workspace root: the nearest ancestor of the current directory (or of
/// this crate's manifest, when run via cargo) containing a `[workspace]`
/// Cargo.toml.
fn workspace_root() -> Option<PathBuf> {
    let mut starts = vec![std::env::current_dir().ok()?];
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        starts.push(PathBuf::from(manifest));
    }
    starts.iter().find_map(|start| {
        let mut dir = Some(start.as_path());
        while let Some(d) = dir {
            if let Ok(text) = std::fs::read_to_string(d.join("Cargo.toml")) {
                if text.contains("[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
            dir = d.parent();
        }
        None
    })
}

fn main() -> ExitCode {
    let dot_mode = std::env::args().any(|a| a == "--dot");
    // lint:allow(L2): host-tool self-timing — measures the analyzer itself, not simulated behavior
    let started = std::time::Instant::now();
    let Some(root) = workspace_root() else {
        eprintln!("g2pl-lint: could not locate the workspace root");
        return ExitCode::FAILURE;
    };
    let members = match g2pl_lint::workspace::discover(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("g2pl-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let analysis = match g2pl_lint::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("g2pl-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if dot_mode {
        let ext = &analysis.extraction;
        if ext.machines.is_empty() {
            eprintln!("g2pl-lint: no state machine extracted (no `set_status` sites found)");
            return ExitCode::FAILURE;
        }
        print!("{}", g2pl_lint::machine::dot(ext));
        eprintln!(
            "g2pl-lint: {} machine(s), {} state(s), initial {}",
            ext.machines.len(),
            ext.states.len(),
            ext.initial.as_deref().unwrap_or("<unknown>")
        );
        return ExitCode::SUCCESS;
    }

    for d in &analysis.diagnostics {
        println!("{d}");
    }
    let elapsed = started.elapsed();
    if analysis.diagnostics.is_empty() {
        eprintln!(
            "g2pl-lint: clean — {} workspace crates pass L1-L7/SM in {:.2}s",
            members.len(),
            elapsed.as_secs_f64()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "g2pl-lint: {} finding(s) across {} crates in {:.2}s",
            analysis.diagnostics.len(),
            members.len(),
            elapsed.as_secs_f64()
        );
        ExitCode::FAILURE
    }
}
