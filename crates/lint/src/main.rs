//! `g2pl-lint` — run the determinism/invariant lints over the engine
//! crates and exit non-zero on any finding.
//!
//! Usage: `cargo run -p g2pl-lint` (from anywhere in the workspace).
//! Diagnostics are `file:line: Lx: message`, one per line, sorted.

use std::path::PathBuf;
use std::process::ExitCode;

/// Workspace root: the nearest ancestor of the current directory (or of
/// this crate's manifest, when run via cargo) containing a `[workspace]`
/// Cargo.toml.
fn workspace_root() -> Option<PathBuf> {
    let mut starts = vec![std::env::current_dir().ok()?];
    if let Some(manifest) = std::env::var_os("CARGO_MANIFEST_DIR") {
        starts.push(PathBuf::from(manifest));
    }
    starts.iter().find_map(|start| {
        let mut dir = Some(start.as_path());
        while let Some(d) = dir {
            if let Ok(text) = std::fs::read_to_string(d.join("Cargo.toml")) {
                if text.contains("[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
            dir = d.parent();
        }
        None
    })
}

fn main() -> ExitCode {
    let Some(root) = workspace_root() else {
        eprintln!("g2pl-lint: could not locate the workspace root");
        return ExitCode::FAILURE;
    };
    let coverage = g2pl_lint::check_coverage(&root);
    if !coverage.is_empty() {
        for e in &coverage {
            eprintln!("g2pl-lint: {e}");
        }
        return ExitCode::FAILURE;
    }
    let mut diags = match g2pl_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("g2pl-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    diags.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "g2pl-lint: clean — {} engine crates pass L1/L2/L3",
            g2pl_lint::ENGINE_CRATES.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("g2pl-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
