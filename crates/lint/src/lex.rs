//! A small Rust lexer: the token stream the item-tree parser and the
//! lint passes share.
//!
//! Scope is deliberately narrow — enough to tokenize this workspace's
//! source faithfully (identifiers, literals incl. raw strings, nested
//! block comments, lifetimes vs. char literals, multi-char operators
//! that matter for parsing like `=>` and `::`), nothing more. No
//! external dependencies; every token carries its 1-based source line so
//! diagnostics and `lint:allow` resolution stay line-addressed.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// String literal (normal, raw, byte, or byte-raw); `text` is the
    /// *content* without quotes/hashes so passes can compare values.
    Str,
    /// Character or byte literal (content, unquoted).
    Char,
    /// Lifetime (`'a`) — kept distinct so it never masks a char literal.
    Lifetime,
    /// Numeric literal.
    Num,
    /// `::`
    PathSep,
    /// `=>`
    FatArrow,
    /// `->`
    ThinArrow,
    /// Any other single punctuation character; `text` holds it.
    Punct,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// Whether this is the exact identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this is the exact punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// The lexed file: tokens plus the line-indexed `//` comment text (block
/// comments are folded into the line they start on), which is where
/// `lint:allow` markers live.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    /// `comments[line] = comment text` for every line carrying one.
    pub comments: std::collections::BTreeMap<usize, String>,
    /// Total number of source lines.
    pub lines: usize,
}

/// Tokenize `source`. Never fails: unrecognized bytes become punctuation
/// tokens, and an unterminated string or comment simply ends at EOF —
/// a lint must degrade gracefully on code mid-edit.
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    let push_comment =
        |line: usize, text: &str, comments: &mut std::collections::BTreeMap<usize, String>| {
            let entry = comments.entry(line).or_default();
            if !entry.is_empty() {
                entry.push(' ');
            }
            entry.push_str(text);
        };

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment: capture to end of line.
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                push_comment(line, &text, &mut out.comments);
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, nesting honoured (Rust allows it). A
                // contained `lint:allow` still registers, on the line the
                // comment starts.
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text: String = chars[start..i.min(n)]
                    .iter()
                    .collect::<String>()
                    .replace('\n', " ");
                push_comment(start_line, &text, &mut out.comments);
            }
            '"' => {
                let (content, consumed, newlines) = scan_string(&chars[i..]);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line,
                });
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if starts_string(&chars[i..]) => {
                let (content, consumed, newlines) = scan_raw_or_byte(&chars[i..]);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: content,
                    line,
                });
                line += newlines;
                i += consumed;
            }
            '\'' => {
                // Lifetime or char literal. `'a'` / `'\n'` are chars;
                // `'a` followed by non-quote is a lifetime.
                let (tok, consumed) = scan_tick(&chars[i..], line);
                out.tokens.push(tok);
                i += consumed;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.') {
                    // Stop a `1..10` range from being eaten as one number.
                    if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            ':' if i + 1 < n && chars[i + 1] == ':' => {
                out.tokens.push(Tok {
                    kind: TokKind::PathSep,
                    text: "::".into(),
                    line,
                });
                i += 2;
            }
            '=' if i + 1 < n && chars[i + 1] == '>' => {
                out.tokens.push(Tok {
                    kind: TokKind::FatArrow,
                    text: "=>".into(),
                    line,
                });
                i += 2;
            }
            '-' if i + 1 < n && chars[i + 1] == '>' => {
                out.tokens.push(Tok {
                    kind: TokKind::ThinArrow,
                    text: "->".into(),
                    line,
                });
                i += 2;
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out.lines = line;
    out
}

/// Does the slice start a raw/byte string (`r"`, `r#"`, `b"`, `br#"` …)?
fn starts_string(s: &[char]) -> bool {
    let mut j = 0;
    if s[j] == 'b' {
        j += 1;
    }
    if j < s.len() && s[j] == 'r' {
        j += 1;
        while j < s.len() && s[j] == '#' {
            j += 1;
        }
    }
    j < s.len() && s[j] == '"' && j > 0
}

/// Scan a normal `"…"` string starting at `s[0] == '"'`. Returns
/// (content, chars consumed, newlines inside).
fn scan_string(s: &[char]) -> (String, usize, usize) {
    let mut content = String::new();
    let mut i = 1;
    let mut newlines = 0;
    while i < s.len() {
        match s[i] {
            '\\' => {
                if i + 1 < s.len() {
                    // A `\<newline>` continuation still advances the line.
                    if s[i + 1] == '\n' {
                        newlines += 1;
                    }
                    content.push(s[i + 1]);
                }
                i += 2;
            }
            '"' => return (content, i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                content.push(c);
                i += 1;
            }
        }
    }
    (content, i, newlines)
}

/// Scan a raw or byte string starting at `r`/`b`.
fn scan_raw_or_byte(s: &[char]) -> (String, usize, usize) {
    let mut i = 0;
    let mut raw = false;
    if s[i] == 'b' {
        i += 1;
    }
    if i < s.len() && s[i] == 'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while i < s.len() && s[i] == '#' {
        hashes += 1;
        i += 1;
    }
    // s[i] == '"'
    i += 1;
    let mut content = String::new();
    let mut newlines = 0;
    while i < s.len() {
        if s[i] == '"' {
            if !raw {
                // Byte string: `\"` already handled below, so this closes.
                return (content, i + 1, newlines);
            }
            // Raw: need the same number of closing hashes.
            let mut j = i + 1;
            let mut seen = 0;
            while j < s.len() && s[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (content, j, newlines);
            }
            content.push('"');
            i += 1;
        } else if s[i] == '\\' && !raw {
            if i + 1 < s.len() {
                content.push(s[i + 1]);
            }
            i += 2;
        } else {
            if s[i] == '\n' {
                newlines += 1;
            }
            content.push(s[i]);
            i += 1;
        }
    }
    (content, i, newlines)
}

/// Scan from a `'`: a char literal (`'x'`, `'\n'`) or a lifetime (`'a`).
fn scan_tick(s: &[char], line: usize) -> (Tok, usize) {
    if s.len() >= 2 && s[1] == '\\' {
        // Escaped char literal: consume to closing quote.
        let mut i = 2;
        while i < s.len() && s[i] != '\'' {
            i += 1;
        }
        let content: String = s[1..i.min(s.len())].iter().collect();
        return (
            Tok {
                kind: TokKind::Char,
                text: content,
                line,
            },
            (i + 1).min(s.len()),
        );
    }
    if s.len() >= 3 && s[2] == '\'' && s[1] != '\'' {
        return (
            Tok {
                kind: TokKind::Char,
                text: s[1].to_string(),
                line,
            },
            3,
        );
    }
    // Lifetime: tick + identifier.
    let mut i = 1;
    while i < s.len() && (s[i].is_alphanumeric() || s[i] == '_') {
        i += 1;
    }
    (
        Tok {
            kind: TokKind::Lifetime,
            text: s[1..i].iter().collect(),
            line,
        },
        i.max(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_paths_and_arrows() {
        let t = kinds("fn f() -> u32 { TraceKind::Committed => 1 }");
        assert!(t.contains(&(TokKind::ThinArrow, "->".into())));
        assert!(t.contains(&(TokKind::PathSep, "::".into())));
        assert!(t.contains(&(TokKind::FatArrow, "=>".into())));
        assert!(t.contains(&(TokKind::Ident, "TraceKind".into())));
    }

    #[test]
    fn strings_keep_content_and_lines() {
        let l = lex("let a = \"spec-client\";\nlet b = r#\"raw \"quoted\" text\"#;");
        let strs: Vec<&Tok> = l.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs[0].text, "spec-client");
        assert_eq!(strs[0].line, 1);
        assert_eq!(strs[1].text, "raw \"quoted\" text");
        assert_eq!(strs[1].line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(t.contains(&(TokKind::Lifetime, "a".into())));
        assert!(t.contains(&(TokKind::Char, "x".into())));
    }

    #[test]
    fn backslash_newline_continuation_advances_line() {
        // Regression: a `\<newline>` string continuation must count the
        // newline, or every diagnostic below it anchors too high.
        let src = "let s = \"a \\\n   b\";\nlet x = 1;\n";
        let l = lex(src);
        let x = l.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 3);
    }

    #[test]
    fn comments_are_captured_per_line() {
        let l = lex("let x = 1; // lint:allow(L3): fine\nlet y = 2;\n/* block */ let z = 3;");
        assert!(l.comments[&1].contains("lint:allow(L3)"));
        assert!(l.comments[&3].contains("block"));
        assert!(!l.comments.contains_key(&2));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let l = lex("/* outer /* inner */ still */ fn f() {}");
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn string_with_code_inside_is_one_token() {
        let l = lex("let s = \"x.unwrap() panic!(boom)\"; f();");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
        // Nothing inside the string leaked as an ident.
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn unterminated_string_ends_at_eof() {
        let l = lex("let s = \"oops");
        assert_eq!(l.tokens.last().unwrap().kind, TokKind::Str);
    }
}
