//! Deterministic fault-injection plans for the simulator.
//!
//! The paper's model assumes a perfectly reliable network; this crate
//! supplies the machinery to relax that assumption without giving up the
//! workspace's headline guarantee that a run's seed fully determines its
//! trace. A [`FaultPlan`] describes *what* can go wrong — message drops,
//! duplicated or delayed deliveries, scheduled client crash/restart
//! windows, and transient link partitions — and a [`FaultInjector`]
//! executes the plan from its own named [`RngStream`] (label `"faults"`),
//! so enabling faults never perturbs the draws seen by the workload,
//! think-time, or latency streams (common random numbers are preserved
//! across loss rates, which sharpens the `fig_faults` comparisons).
//!
//! Two invariants the engines rely on:
//!
//! * **Inert plans are free.** A default/zero plan ([`FaultPlan::is_active`]
//!   returns `false`) must cause the engines to construct no injector,
//!   arm no leases or retry timers, and schedule no extra calendar
//!   events, so a zero-fault run is byte-identical to a run with no plan
//!   at all.
//! * **One draw per message.** [`FaultInjector::judge`] consumes exactly
//!   one uniform draw per message when probabilistic faults are
//!   configured (and zero when only partitions/crashes are), so the
//!   verdict stream is a stable function of (seed, send order).
//!
//! [`RngStream`]: g2pl_simcore::RngStream

use g2pl_simcore::{ClientId, RngStream, SimTime, SiteId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scheduled crash/restart window for one client.
///
/// From `at` (inclusive) until `at + down_for` the client is dead: every
/// message addressed to it is dropped and its local timers are ignored.
/// The restart is mandatory — a client that never comes back would leave
/// the run unable to finish its measured transaction quota.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashWindow {
    /// Which client crashes (raw index into `0..num_clients`).
    pub client: u32,
    /// Simulated time at which the crash occurs.
    pub at: u64,
    /// How long the client stays down before restarting (must be > 0).
    pub down_for: u64,
}

/// A scheduled crash/restart window for one server shard.
///
/// From the (possibly jittered) crash instant until restart the shard is
/// dead: every message addressed to it is dropped, its volatile state
/// (lock table, collection windows, out-lists, directory rows) is lost,
/// and on restart it must reconstruct from its durable log plus the
/// client re-registration handshake. Each shard is an independent fault
/// domain — windows on *different* shards may overlap freely; windows on
/// the *same* shard may not (a shard cannot crash while already down).
/// The restart is mandatory, like client restarts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerCrashWindow {
    /// Which server shard crashes (raw index into `0..num_shards`).
    /// Defaults to 0 on deserialization so pre-sharding plans — which
    /// described "the server" — keep their meaning.
    #[serde(default)]
    pub shard: u32,
    /// Earliest simulated time at which the crash occurs.
    pub at: u64,
    /// How long the server stays down before restarting (must be > 0).
    pub down_for: u64,
    /// Upper bound on a random offset added to `at`, drawn from the
    /// crashing shard's dedicated `"server-faults"` stream (0 = crash
    /// exactly at `at`). The jitter keeps crash placement seed-varied in
    /// chaos searches without perturbing any other random stream.
    pub jitter: u64,
}

impl ServerCrashWindow {
    /// A shard-0 window with no jitter (the pre-sharding "the server").
    pub fn fixed(at: u64, down_for: u64) -> Self {
        ServerCrashWindow::on_shard(0, at, down_for)
    }

    /// A window with no jitter crashing the given shard.
    pub fn on_shard(shard: u32, at: u64, down_for: u64) -> Self {
        ServerCrashWindow {
            shard,
            at,
            down_for,
            jitter: 0,
        }
    }
}

/// A transient partition of the link between two sites.
///
/// While `from <= now < until`, every message in either direction between
/// the two endpoints is dropped deterministically (no random draw).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkPartition {
    /// One endpoint of the link.
    pub a: Endpoint,
    /// The other endpoint.
    pub b: Endpoint,
    /// Partition start (inclusive).
    pub from: u64,
    /// Partition end (exclusive; must be > `from`).
    pub until: u64,
}

impl LinkPartition {
    /// A transient shard↔shard partition: while active, the recovery
    /// traffic between the two shards (commit-status queries and their
    /// verdicts) is severed in both directions, which is exactly the
    /// scenario that keeps prepared transactions in doubt.
    pub fn between_shards(a: u32, b: u32, from: u64, until: u64) -> Self {
        LinkPartition {
            a: Endpoint::Shard(a),
            b: Endpoint::Shard(b),
            from,
            until,
        }
    }
}

/// A serializable stand-in for [`SiteId`] in fault plans.
///
/// The pre-sharding unit variant `Server` is deprecated: it no longer
/// exists in the enum, but old plans that spell it still deserialize —
/// as `Shard(0)`, which is what "the server" meant before the item space
/// was partitioned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "EndpointDe")]
pub enum Endpoint {
    /// Client with the given raw index.
    Client(u32),
    /// Server shard with the given raw index.
    Shard(u32),
}

/// Deserialization shadow of [`Endpoint`] that still admits the retired
/// unit `Server` variant, mapping it to `Shard(0)`.
#[derive(Deserialize)]
// Only (currently stubbed) deserialization constructs these variants.
#[allow(dead_code)]
enum EndpointDe {
    Server,
    Client(u32),
    Shard(u32),
}

impl From<EndpointDe> for Endpoint {
    fn from(e: EndpointDe) -> Self {
        match e {
            EndpointDe::Server => Endpoint::Shard(0),
            EndpointDe::Client(c) => Endpoint::Client(c),
            EndpointDe::Shard(k) => Endpoint::Shard(k),
        }
    }
}

impl Endpoint {
    /// Does this endpoint name the given site?
    #[inline]
    pub fn matches(self, site: SiteId) -> bool {
        match (self, site) {
            (Endpoint::Shard(k), SiteId::Server(s)) => s.index() == k as usize,
            (Endpoint::Client(c), SiteId::Client(id)) => id.index() == c as usize,
            _ => false,
        }
    }
}

impl From<SiteId> for Endpoint {
    fn from(s: SiteId) -> Self {
        match s {
            SiteId::Server(s) => Endpoint::Shard(s.0),
            SiteId::Client(c) => Endpoint::Client(c.0),
        }
    }
}

/// A declarative, seeded description of the faults injected into a run.
///
/// The plan is pure data (serde-serializable, so experiment registries can
/// embed one per figure). All probabilities are per-message and mutually
/// exclusive: one uniform draw is partitioned into
/// `[drop | duplicate | delay | deliver]` bands.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability that a message is delivered twice (two independent
    /// latency draws).
    pub dup_prob: f64,
    /// Probability that a delivered message is delayed by `delay_extra`
    /// on top of its modeled latency.
    pub delay_prob: f64,
    /// Extra delay applied to delayed messages, in simulated time units.
    pub delay_extra: u64,
    /// Scheduled client crash/restart windows.
    pub crashes: Vec<CrashWindow>,
    /// Scheduled server crash/restart windows. Windows must not overlap
    /// (even at maximum jitter): the server is a single site and cannot
    /// crash while it is already down.
    pub server_crashes: Vec<ServerCrashWindow>,
    /// Transient link partitions.
    pub partitions: Vec<LinkPartition>,
    /// Lease timeout for server-side holder-failure detection, in
    /// simulated time units. `None` lets the engine derive one from the
    /// latency model's nominal delay (see `EngineConfig`).
    pub lease_timeout: Option<u64>,
    /// Base client retry backoff, in simulated time units. `None` lets
    /// the engine derive one from the nominal network delay.
    pub retry_base: Option<u64>,
}

impl FaultPlan {
    /// A plan injecting message loss at the given per-message probability
    /// and nothing else — the `fig_faults` sweep axis.
    pub fn message_loss(p: f64) -> Self {
        FaultPlan {
            drop_prob: p,
            ..FaultPlan::default()
        }
    }

    /// A plan scheduling two fixed server outages of the given duration
    /// (early and late in the run) and nothing else — the
    /// `fig_server_faults` sweep axis. A zero duration yields the inert
    /// plan, anchoring the x = 0 point to the pristine code path.
    pub fn server_outage(down_for: u64) -> Self {
        FaultPlan::shard_outage(0, down_for)
    }

    /// A plan scheduling two fixed outages of the given shard (early and
    /// late in the run) and nothing else — the `fig_shard_faults` sweep
    /// axis. A zero duration yields the inert plan, anchoring the x = 0
    /// point to the pristine code path.
    pub fn shard_outage(shard: u32, down_for: u64) -> Self {
        if down_for == 0 {
            return FaultPlan::default();
        }
        FaultPlan {
            server_crashes: vec![
                ServerCrashWindow::on_shard(shard, 5_000, down_for),
                ServerCrashWindow::on_shard(shard, 20_000, down_for),
            ],
            ..FaultPlan::default()
        }
    }

    /// True if this plan can inject at least one fault. Inert plans must
    /// leave the engines on their fault-free code path (no injector, no
    /// leases, no retry timers), which keeps zero-fault runs byte-identical
    /// to runs with no plan at all.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.delay_prob > 0.0
            || !self.crashes.is_empty()
            || !self.server_crashes.is_empty()
            || !self.partitions.is_empty()
    }

    /// True if the plan schedules at least one server crash. Engines use
    /// this to decide whether to maintain the server's durable log
    /// ([`g2pl_wal::ServerLog`]-shaped); plans without server crashes keep
    /// the exact PR 4 fault paths, byte for byte.
    ///
    /// [`g2pl_wal::ServerLog`]: ../g2pl_wal/struct.ServerLog.html
    pub fn has_server_crashes(&self) -> bool {
        !self.server_crashes.is_empty()
    }

    /// True if the per-message probabilistic faults require a random draw.
    pub fn has_message_faults(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.delay_prob > 0.0
    }

    /// Validate the plan's parameters.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("dup_prob", self.dup_prob),
            ("delay_prob", self.delay_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultPlanError::ProbabilityOutOfRange { name, value: p });
            }
        }
        if self.drop_prob + self.dup_prob + self.delay_prob > 1.0 {
            return Err(FaultPlanError::ProbabilitiesExceedOne);
        }
        if self.delay_prob > 0.0 && self.delay_extra == 0 {
            return Err(FaultPlanError::ZeroDelayExtra);
        }
        for c in &self.crashes {
            if c.down_for == 0 {
                return Err(FaultPlanError::CrashWithoutRestart { client: c.client });
            }
        }
        for w in &self.server_crashes {
            if w.down_for == 0 {
                return Err(FaultPlanError::ServerCrashWithoutRestart { at: w.at });
            }
        }
        // Overlap is checked per shard: each shard is an independent
        // fault domain, so windows on different shards may coincide.
        let mut windows = self.server_crashes.clone();
        windows.sort_by_key(|w| (w.shard, w.at));
        for pair in windows.windows(2) {
            // The latest possible end of the earlier window must precede
            // the earliest possible start of the later one on its shard.
            if pair[0].shard == pair[1].shard
                && pair[0].at + pair[0].jitter + pair[0].down_for > pair[1].at
            {
                return Err(FaultPlanError::OverlappingServerCrashes {
                    shard: pair[0].shard,
                });
            }
        }
        for p in &self.partitions {
            if p.until <= p.from {
                return Err(FaultPlanError::EmptyPartition);
            }
        }
        if self.lease_timeout == Some(0) {
            return Err(FaultPlanError::ZeroLease);
        }
        if self.retry_base == Some(0) {
            return Err(FaultPlanError::ZeroRetryBase);
        }
        Ok(())
    }
}

/// Why a [`FaultPlan`] was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlanError {
    /// A probability field is outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Field name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// `drop_prob + dup_prob + delay_prob` exceeds 1.
    ProbabilitiesExceedOne,
    /// `delay_prob > 0` but `delay_extra == 0` (a no-op delay).
    ZeroDelayExtra,
    /// A crash window has `down_for == 0`; restarts are mandatory.
    CrashWithoutRestart {
        /// Offending client index.
        client: u32,
    },
    /// A server crash window has `down_for == 0`; restarts are mandatory.
    ServerCrashWithoutRestart {
        /// Nominal crash instant of the offending window.
        at: u64,
    },
    /// Two crash windows for the same shard can overlap (a shard cannot
    /// crash while already down).
    OverlappingServerCrashes {
        /// The shard whose windows collide.
        shard: u32,
    },
    /// A partition window with `until <= from`.
    EmptyPartition,
    /// `lease_timeout` of zero would expire every hop instantly.
    ZeroLease,
    /// `retry_base` of zero would retry in a busy loop.
    ZeroRetryBase,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::ProbabilityOutOfRange { name, value } => {
                write!(f, "{name} = {value} is outside [0, 1]")
            }
            FaultPlanError::ProbabilitiesExceedOne => {
                write!(f, "drop_prob + dup_prob + delay_prob exceeds 1")
            }
            FaultPlanError::ZeroDelayExtra => {
                write!(f, "delay_prob > 0 requires a nonzero delay_extra")
            }
            FaultPlanError::CrashWithoutRestart { client } => {
                write!(f, "crash window for client {client} never restarts")
            }
            FaultPlanError::ServerCrashWithoutRestart { at } => {
                write!(f, "server crash window at {at} never restarts")
            }
            FaultPlanError::OverlappingServerCrashes { shard } => {
                write!(
                    f,
                    "crash windows for shard {shard} overlap (including jitter)"
                )
            }
            FaultPlanError::EmptyPartition => write!(f, "partition window is empty"),
            FaultPlanError::ZeroLease => write!(f, "lease_timeout must be nonzero"),
            FaultPlanError::ZeroRetryBase => write!(f, "retry_base must be nonzero"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// The injector's verdict for one message send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Drop the message (link loss or partition).
    Drop,
    /// Deliver the message twice, with independent latency draws.
    Duplicate,
    /// Deliver once, delayed by the given extra time.
    Delay(SimTime),
}

/// Counters for faults actually injected during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Messages dropped by the random loss band.
    pub dropped: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Messages delayed beyond their modeled latency.
    pub delayed: u64,
    /// Messages dropped because a link partition was active.
    pub partition_drops: u64,
}

impl FaultCounts {
    /// Total number of injected message faults.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.partition_drops
    }
}

/// Runtime executor of a [`FaultPlan`]: owns the plan, the dedicated
/// `"faults"` random stream, and the injected-fault counters.
pub struct FaultInjector {
    plan: FaultPlan,
    rng: RngStream,
    /// The run's master seed, kept so each shard's crash-placement stream
    /// (`"server-faults"` indexed by shard) can be derived on demand —
    /// per-shard streams mean a shard's jitter draws neither perturb nor
    /// are perturbed by another shard's, or by the per-message verdicts.
    master_seed: u64,
    /// Faults injected so far.
    pub counts: FaultCounts,
}

impl FaultInjector {
    /// Build an injector for an *active* plan, deriving the fault stream
    /// from the run's master seed.
    pub fn new(plan: FaultPlan, master_seed: u64) -> Self {
        FaultInjector {
            plan,
            rng: RngStream::derive(master_seed, "faults"),
            master_seed,
            counts: FaultCounts::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of one message from `from` to `to` at time `now`.
    ///
    /// Partition checks are deterministic and consume no randomness; the
    /// probabilistic bands consume exactly one uniform draw per call when
    /// any of the message-fault probabilities is nonzero.
    pub fn judge(&mut self, from: SiteId, to: SiteId, now: SimTime) -> Verdict {
        if self.partitioned(from, to, now) {
            self.counts.partition_drops += 1;
            return Verdict::Drop;
        }
        if !self.plan.has_message_faults() {
            return Verdict::Deliver;
        }
        let u = self.rng.unit_f64();
        if u < self.plan.drop_prob {
            self.counts.dropped += 1;
            Verdict::Drop
        } else if u < self.plan.drop_prob + self.plan.dup_prob {
            self.counts.duplicated += 1;
            Verdict::Duplicate
        } else if u < self.plan.drop_prob + self.plan.dup_prob + self.plan.delay_prob {
            self.counts.delayed += 1;
            Verdict::Delay(SimTime::new(self.plan.delay_extra))
        } else {
            Verdict::Deliver
        }
    }

    /// Is the link between the two sites partitioned at `now`?
    fn partitioned(&self, from: SiteId, to: SiteId, now: SimTime) -> bool {
        let t = now.units();
        self.plan.partitions.iter().any(|p| {
            t >= p.from
                && t < p.until
                && ((p.a.matches(from) && p.b.matches(to))
                    || (p.a.matches(to) && p.b.matches(from)))
        })
    }

    /// The crash/restart schedule, as `(client, at, up)` triples in
    /// chronological order, ready to be placed on the calendar at engine
    /// start. `up == false` is a crash, `up == true` a restart.
    pub fn crash_schedule(&self) -> Vec<(ClientId, SimTime, bool)> {
        let mut evs: Vec<(ClientId, SimTime, bool)> = Vec::new();
        for c in &self.plan.crashes {
            let id = ClientId::new(c.client);
            evs.push((id, SimTime::new(c.at), false));
            evs.push((id, SimTime::new(c.at + c.down_for), true));
        }
        evs.sort_by_key(|&(id, at, up)| (at, id, up));
        evs
    }

    /// The server crash/restart schedule, as `(shard, at, up)` triples in
    /// chronological order. Jittered windows consume exactly one draw
    /// each from the crashing shard's dedicated stream (`"server-faults"`
    /// indexed by shard; zero-jitter windows consume none), in `at`-sorted
    /// window order per shard, so the schedule is a stable function of
    /// (seed, plan) and independent across shards.
    pub fn server_crash_schedule(&mut self) -> Vec<(u32, SimTime, bool)> {
        let mut windows = self.plan.server_crashes.clone();
        windows.sort_by_key(|w| (w.shard, w.at));
        let mut evs: Vec<(u32, SimTime, bool)> = Vec::new();
        let mut shard_rng: Option<(u32, RngStream)> = None;
        for w in &windows {
            let offset = if w.jitter == 0 {
                0
            } else {
                let rng = match &mut shard_rng {
                    Some((s, rng)) if *s == w.shard => rng,
                    _ => {
                        let fresh = RngStream::derive_indexed(
                            self.master_seed,
                            "server-faults",
                            u64::from(w.shard),
                        );
                        &mut shard_rng.insert((w.shard, fresh)).1
                    }
                };
                rng.uniform_incl(0, w.jitter)
            };
            let crash = w.at + offset;
            evs.push((w.shard, SimTime::new(crash), false));
            evs.push((w.shard, SimTime::new(crash + w.down_for), true));
        }
        evs.sort_by_key(|&(shard, at, up)| (at, shard, up));
        evs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        assert!(!p.has_message_faults());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn message_loss_plan_is_active_and_valid() {
        let p = FaultPlan::message_loss(0.05);
        assert!(p.is_active());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = FaultPlan::message_loss(1.5);
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::ProbabilityOutOfRange { .. })
        ));
        p = FaultPlan {
            drop_prob: 0.6,
            dup_prob: 0.6,
            ..FaultPlan::default()
        };
        assert_eq!(p.validate(), Err(FaultPlanError::ProbabilitiesExceedOne));
        p = FaultPlan {
            delay_prob: 0.1,
            ..FaultPlan::default()
        };
        assert_eq!(p.validate(), Err(FaultPlanError::ZeroDelayExtra));
        p = FaultPlan {
            crashes: vec![CrashWindow {
                client: 0,
                at: 10,
                down_for: 0,
            }],
            ..FaultPlan::default()
        };
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::CrashWithoutRestart { client: 0 })
        ));
        p = FaultPlan {
            partitions: vec![LinkPartition {
                a: Endpoint::Shard(0),
                b: Endpoint::Client(1),
                from: 5,
                until: 5,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(p.validate(), Err(FaultPlanError::EmptyPartition));
    }

    #[test]
    fn overlap_validation_is_per_shard() {
        // Identical windows on different shards: legal (independent
        // fault domains can be down at the same time).
        let p = FaultPlan {
            server_crashes: vec![
                ServerCrashWindow::on_shard(1, 100, 50),
                ServerCrashWindow::on_shard(2, 100, 50),
            ],
            ..FaultPlan::default()
        };
        assert!(p.validate().is_ok());
        // The same windows on one shard: rejected.
        let bad = FaultPlan {
            server_crashes: vec![
                ServerCrashWindow::on_shard(2, 100, 50),
                ServerCrashWindow::on_shard(2, 120, 50),
            ],
            ..FaultPlan::default()
        };
        assert_eq!(
            bad.validate(),
            Err(FaultPlanError::OverlappingServerCrashes { shard: 2 })
        );
    }

    #[test]
    fn legacy_server_endpoint_maps_to_shard_zero() {
        // The workspace's serde is a no-op stub (no format crate is
        // present), so the `#[serde(from = "EndpointDe")]` decoration is
        // exercised here via the conversion it names: the retired unit
        // `Server` variant lands on shard 0, the rest pass through.
        assert_eq!(Endpoint::from(EndpointDe::Server), Endpoint::Shard(0));
        assert_eq!(Endpoint::from(EndpointDe::Client(3)), Endpoint::Client(3));
        assert_eq!(Endpoint::from(EndpointDe::Shard(7)), Endpoint::Shard(7));
        // SiteId conversion now always names the concrete shard.
        assert_eq!(Endpoint::from(SiteId::SERVER0), Endpoint::Shard(0));
        assert_eq!(
            Endpoint::from(SiteId::server(4)),
            Endpoint::Shard(4),
            "non-zero shards keep their index"
        );
        assert!(Endpoint::Shard(0).matches(SiteId::SERVER0));
        assert!(!Endpoint::Shard(1).matches(SiteId::SERVER0));
    }

    #[test]
    fn shard_outage_anchors_zero_to_the_inert_plan() {
        assert_eq!(FaultPlan::shard_outage(3, 0), FaultPlan::default());
        let p = FaultPlan::shard_outage(3, 500);
        assert!(p.is_active() && p.has_server_crashes());
        assert!(p.server_crashes.iter().all(|w| w.shard == 3));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn judge_is_deterministic_per_seed() {
        let plan = FaultPlan {
            drop_prob: 0.2,
            dup_prob: 0.1,
            delay_prob: 0.1,
            delay_extra: 7,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(plan.clone(), 42);
        let mut b = FaultInjector::new(plan, 42);
        for i in 0..500u32 {
            let from = SiteId::Client(ClientId::new(i % 5));
            let v1 = a.judge(from, SiteId::SERVER0, SimTime::new(u64::from(i)));
            let v2 = b.judge(from, SiteId::SERVER0, SimTime::new(u64::from(i)));
            assert_eq!(v1, v2);
        }
        assert_eq!(a.counts, b.counts);
        assert!(a.counts.total() > 0, "expected some injected faults");
    }

    #[test]
    fn partition_drops_deterministically_without_draws() {
        let plan = FaultPlan {
            partitions: vec![LinkPartition {
                a: Endpoint::Shard(0),
                b: Endpoint::Client(2),
                from: 10,
                until: 20,
            }],
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 1);
        let c2 = SiteId::Client(ClientId::new(2));
        let c3 = SiteId::Client(ClientId::new(3));
        assert_eq!(
            inj.judge(SiteId::SERVER0, c2, SimTime::new(9)),
            Verdict::Deliver
        );
        assert_eq!(
            inj.judge(SiteId::SERVER0, c2, SimTime::new(10)),
            Verdict::Drop
        );
        assert_eq!(
            inj.judge(c2, SiteId::SERVER0, SimTime::new(19)),
            Verdict::Drop
        );
        assert_eq!(
            inj.judge(SiteId::SERVER0, c2, SimTime::new(20)),
            Verdict::Deliver
        );
        assert_eq!(
            inj.judge(SiteId::SERVER0, c3, SimTime::new(15)),
            Verdict::Deliver
        );
        assert_eq!(inj.counts.partition_drops, 2);
    }

    #[test]
    fn server_crash_plan_is_active_and_validated() {
        let p = FaultPlan {
            server_crashes: vec![ServerCrashWindow::fixed(100, 50)],
            ..FaultPlan::default()
        };
        assert!(p.is_active());
        assert!(p.has_server_crashes());
        assert!(!p.has_message_faults());
        assert!(p.validate().is_ok());

        let bad = FaultPlan {
            server_crashes: vec![ServerCrashWindow::fixed(100, 0)],
            ..FaultPlan::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(FaultPlanError::ServerCrashWithoutRestart { at: 100 })
        ));

        let overlap = FaultPlan {
            server_crashes: vec![
                ServerCrashWindow::fixed(100, 50),
                ServerCrashWindow {
                    shard: 0,
                    at: 80,
                    down_for: 30,
                    jitter: 5,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(
            overlap.validate(),
            Err(FaultPlanError::OverlappingServerCrashes { shard: 0 })
        );
    }

    #[test]
    fn server_crash_schedule_is_deterministic_and_independent() {
        let plan = FaultPlan {
            drop_prob: 0.1,
            server_crashes: vec![
                ServerCrashWindow {
                    shard: 0,
                    at: 200,
                    down_for: 40,
                    jitter: 30,
                },
                ServerCrashWindow::fixed(500, 25),
            ],
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(plan.clone(), 77);
        let mut b = FaultInjector::new(plan.clone(), 77);
        // Interleave message judgements with schedule construction in one
        // injector only: the "server-faults" stream must be unaffected.
        for i in 0..64u32 {
            let from = SiteId::Client(ClientId::new(i % 3));
            let _ = a.judge(from, SiteId::SERVER0, SimTime::new(u64::from(i)));
        }
        let sa = a.server_crash_schedule();
        let sb = b.server_crash_schedule();
        assert_eq!(sa, sb);
        assert_eq!(sa.len(), 4);
        // First window: crash in [200, 230], restart exactly down_for later.
        assert!(!sa[0].2 && sa[1].2);
        let crash = sa[0].1.units();
        assert!((200..=230).contains(&crash));
        assert_eq!(sa[1].1.units(), crash + 40);
        // Second (fixed) window consumes no jitter draw.
        assert_eq!(sa[2], (0, SimTime::new(500), false));
        assert_eq!(sa[3], (0, SimTime::new(525), true));
    }

    #[test]
    fn shard_jitter_streams_are_independent() {
        // A window's jitter draw must not depend on which other shards
        // also crash: shard 2's placement is identical whether it is
        // scheduled alone or alongside shard 1.
        let solo = FaultPlan {
            server_crashes: vec![ServerCrashWindow {
                shard: 2,
                at: 300,
                down_for: 60,
                jitter: 40,
            }],
            ..FaultPlan::default()
        };
        let both = FaultPlan {
            server_crashes: vec![
                ServerCrashWindow {
                    shard: 1,
                    at: 100,
                    down_for: 30,
                    jitter: 40,
                },
                ServerCrashWindow {
                    shard: 2,
                    at: 300,
                    down_for: 60,
                    jitter: 40,
                },
            ],
            ..FaultPlan::default()
        };
        let sa = FaultInjector::new(solo, 9).server_crash_schedule();
        let sb = FaultInjector::new(both, 9).server_crash_schedule();
        let shard2 = |evs: &[(u32, SimTime, bool)]| -> Vec<(u32, SimTime, bool)> {
            evs.iter().copied().filter(|e| e.0 == 2).collect()
        };
        assert_eq!(shard2(&sa), shard2(&sb));
        assert_eq!(sb.len(), 4);
    }

    #[test]
    fn crash_schedule_orders_events() {
        let plan = FaultPlan {
            crashes: vec![
                CrashWindow {
                    client: 3,
                    at: 50,
                    down_for: 25,
                },
                CrashWindow {
                    client: 1,
                    at: 10,
                    down_for: 5,
                },
            ],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 0);
        let sched = inj.crash_schedule();
        assert_eq!(
            sched,
            vec![
                (ClientId::new(1), SimTime::new(10), false),
                (ClientId::new(1), SimTime::new(15), true),
                (ClientId::new(3), SimTime::new(50), false),
                (ClientId::new(3), SimTime::new(75), true),
            ]
        );
    }
}
