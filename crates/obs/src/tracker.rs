//! Streaming critical-path tracker: turns span events into per-phase
//! latency attribution and empirical sequential-round counts.
//!
//! # Phase attribution
//!
//! Per transaction, the tracker keeps the time of the last span event and
//! a *mark* (the kind of that event). When the next event arrives, the
//! elapsed interval is charged to the phase named by the mark (see the
//! table on [`SpanKind`]). Because every interval between consecutive
//! events is charged to exactly one phase, the five response phases
//! partition `[first request, commit]` exactly — the per-phase sums add
//! up to the response time with no residue.
//!
//! # Round accounting
//!
//! The paper's cost model counts *sequential rounds* of message passing
//! (§3.1: s-2PL pays `2n + 1` rounds for `n` items — `3` for the
//! single-item best case — while g-2PL pays `2m + 1` rounds *in total*
//! for a window of `m` single-item transactions). The tracker reproduces
//! that count empirically:
//!
//! * `+1` per request sent (the request hop);
//! * `+1` per grant delivered over the network (the data/grant hop; a
//!   c-2PL cache hit is local and counts nothing);
//! * `+1` per post-commit release that arrives **at the server** (the
//!   s-2PL commit round, or the g-2PL final return). Releases arriving at
//!   a *client* ride the very hop that is the successor's grant — already
//!   counted there — so they add nothing, which is precisely the §3.2
//!   "lock release merged with lock grant" overlap.
//!
//! A transaction's rounds are finalized when its expected release
//! arrivals (declared by `CommitLocal`) have all landed.

use crate::span::{Phase, SpanEvent, SpanKind};
use g2pl_simcore::{ItemId, SimTime, TxnId};
use g2pl_stats::{Histogram, RunningStats, TailSketch};
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BTreeMap;

/// Cap on raw recorded span events, so an accidentally enabled recorder
/// cannot eat the heap. Beyond it events still aggregate — only the raw
/// log stops growing, and the drop count is reported.
pub const MAX_RAW_EVENTS: usize = 4_000_000;

/// Flight-recorder capacity: the `FLIGHT_K` worst measured committed
/// transactions (by response time) are retained with their full phase
/// totals, whatever mode the recorder runs in.
pub const FLIGHT_K: usize = 16;

/// Width of the round-count histogram buckets (1 = exact counts).
const ROUND_BUCKETS: usize = 64;

/// Streaming per-phase aggregate over measured committed transactions.
#[derive(Clone, Debug, Serialize)]
pub struct PhaseBreakdown {
    /// Per-phase statistics, indexed by [`Phase::index`]. The first
    /// [`Phase::RESPONSE_PHASES`] entries partition response time; the
    /// last is the post-commit return tail.
    pub per_phase: [RunningStats; 6],
    /// Per-phase quantile sketches over the same measured commits as
    /// [`per_phase`](Self::per_phase), so each phase reports its own
    /// p50/p90/p99/p999/max alongside the mean.
    pub tails: [TailSketch; 6],
    /// Histogram of per-transaction sequential round counts (bucket
    /// width 1, so bucket `r` counts transactions that took `r` rounds).
    pub rounds: Histogram,
    /// Sum of round counts over measured committed transactions.
    pub rounds_total: u64,
    /// Measured committed transactions seen by the tracker.
    pub measured_commits: u64,
    /// Run-wide count of release arrivals at the server (every s-2PL
    /// commit-release, every g-2PL item return) including warm-up.
    pub server_returns: u64,
    /// Raw span events dropped after [`MAX_RAW_EVENTS`] (aggregation is
    /// unaffected; only the exported log is incomplete).
    pub spans_dropped: u64,
}

impl Default for PhaseBreakdown {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        PhaseBreakdown {
            per_phase: std::array::from_fn(|_| RunningStats::new()),
            tails: std::array::from_fn(|_| TailSketch::new()),
            rounds: Histogram::new(1.0, ROUND_BUCKETS),
            rounds_total: 0,
            measured_commits: 0,
            server_returns: 0,
            spans_dropped: 0,
        }
    }

    /// Statistics for one phase.
    pub fn phase(&self, p: Phase) -> &RunningStats {
        &self.per_phase[p.index()]
    }

    /// Quantile sketch for one phase.
    pub fn tail(&self, p: Phase) -> &TailSketch {
        &self.tails[p.index()]
    }

    /// Sum of the mean response-phase times — equals the mean response
    /// time of the same transactions (up to f64 rounding).
    pub fn mean_phase_sum(&self) -> f64 {
        self.per_phase[..Phase::RESPONSE_PHASES]
            .iter()
            .map(RunningStats::mean)
            .sum()
    }

    /// Mean rounds per measured committed transaction (0 when none).
    pub fn mean_rounds(&self) -> f64 {
        if self.measured_commits == 0 {
            0.0
        } else {
            self.rounds_total as f64 / self.measured_commits as f64
        }
    }
}

/// A transaction between its first request and its commit.
#[derive(Clone, Debug)]
struct Open {
    start: SimTime,
    last: SimTime,
    mark: SpanKind,
    acc: [u64; Phase::RESPONSE_PHASES],
    rounds: u32,
    intervals: Vec<(Phase, SimTime, SimTime)>,
}

/// A committed transaction whose releases are still in flight.
#[derive(Clone, Debug)]
struct Post {
    start: SimTime,
    commit: SimTime,
    last: SimTime,
    left: u32,
    rounds: u32,
    measured: bool,
    acc: [u64; Phase::RESPONSE_PHASES],
    intervals: Vec<(Phase, SimTime, SimTime)>,
}

/// Fully attributed lifetime of one committed transaction (kept by the
/// flight recorder for the worst transactions, and for every commit in
/// detail mode). `intervals` are collected only in detail mode.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TxnDetail {
    /// The transaction.
    pub txn: TxnId,
    /// First request instant (response time starts here).
    pub start: SimTime,
    /// Client-local commit instant.
    pub commit: SimTime,
    /// Last release arrival (end of the commit-return tail).
    pub end: SimTime,
    /// Per-phase totals, indexed by [`Phase::index`] (the last entry is
    /// the commit-return tail).
    pub phases: [u64; 6],
    /// Empirical sequential rounds.
    pub rounds: u32,
    /// Whether the commit fell inside the measurement window.
    pub measured: bool,
    /// Contiguous attributed intervals, for timeline rendering.
    pub intervals: Vec<(Phase, SimTime, SimTime)>,
}

/// Everything a finished recorder reports.
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// The streaming aggregate.
    pub breakdown: PhaseBreakdown,
    /// The raw span log, when raw recording was on.
    pub raw: Option<Vec<SpanEvent>>,
    /// Per-transaction detail, when detail mode was on.
    pub details: Vec<TxnDetail>,
    /// The flight recorder: up to [`FLIGHT_K`] worst measured committed
    /// transactions, worst (longest response) first. Always collected.
    pub flight: Vec<TxnDetail>,
}

/// The streaming recorder the engines feed. Recording is passive: it
/// perturbs no random draw and no simulation event.
#[derive(Debug)]
pub struct SpanRecorder {
    record_raw: bool,
    detail: bool,
    raw: Vec<SpanEvent>,
    dropped: u64,
    open: BTreeMap<TxnId, Open>,
    post: BTreeMap<TxnId, Post>,
    agg: PhaseBreakdown,
    details: Vec<TxnDetail>,
    flight: Vec<TxnDetail>,
}

/// The phase an interval opened by `mark` belongs to.
fn phase_of(mark: SpanKind) -> Phase {
    match mark {
        SpanKind::ReqSent => Phase::ReqProp,
        SpanKind::ReqArrived => Phase::ServerQueue,
        SpanKind::Dispatched => Phase::Migration,
        SpanKind::HopDeparted => Phase::DispatchProp,
        // Granted/GrantedLocal open client processing; any other mark is
        // impossible by construction but maps somewhere harmless.
        _ => Phase::ClientProc,
    }
}

impl SpanRecorder {
    /// A recorder; `record_raw` keeps the full event log (for JSONL
    /// export) in addition to the always-on streaming aggregation.
    pub fn new(record_raw: bool) -> Self {
        SpanRecorder {
            record_raw,
            detail: false,
            raw: Vec::new(),
            dropped: 0,
            open: BTreeMap::new(),
            post: BTreeMap::new(),
            agg: PhaseBreakdown::new(),
            details: Vec::new(),
            flight: Vec::new(),
        }
    }

    /// Keep per-transaction interval detail (used by `trace-explain`).
    pub fn with_detail(mut self) -> Self {
        self.detail = true;
        self
    }

    /// Rebuild a recorder's state from an exported event stream.
    pub fn replay(events: &[SpanEvent]) -> Self {
        let mut r = SpanRecorder::new(false).with_detail();
        for ev in events {
            r.apply(ev);
        }
        r
    }

    // ---- engine-facing emitters ----

    /// A request left the client.
    pub fn req_sent(&mut self, at: SimTime, txn: TxnId, item: ItemId) {
        self.push(SpanEvent::new(at, SpanKind::ReqSent, Some(txn), Some(item)));
    }

    /// The request reached the server.
    pub fn req_arrived(&mut self, at: SimTime, txn: TxnId, item: ItemId) {
        self.push(SpanEvent::new(
            at,
            SpanKind::ReqArrived,
            Some(txn),
            Some(item),
        ));
    }

    /// The server fixed this transaction's dispatch (grant issued, or
    /// forward-list position assigned at window close).
    pub fn dispatched(&mut self, at: SimTime, txn: TxnId, item: ItemId) {
        self.push(SpanEvent::new(
            at,
            SpanKind::Dispatched,
            Some(txn),
            Some(item),
        ));
    }

    /// A hop physically carrying the item toward `txn` departed.
    pub fn hop_departed(&mut self, at: SimTime, txn: TxnId, item: ItemId) {
        self.push(SpanEvent::new(
            at,
            SpanKind::HopDeparted,
            Some(txn),
            Some(item),
        ));
    }

    /// The access was granted at the client (over the network).
    pub fn granted(&mut self, at: SimTime, txn: TxnId, item: ItemId) {
        self.push(SpanEvent::new(at, SpanKind::Granted, Some(txn), Some(item)));
    }

    /// The access was granted locally from the client's cache (c-2PL).
    pub fn granted_local(&mut self, at: SimTime, txn: TxnId, item: ItemId) {
        self.push(SpanEvent::new(
            at,
            SpanKind::GrantedLocal,
            Some(txn),
            Some(item),
        ));
    }

    /// The transaction committed; `expected_releases` arrivals close its
    /// commit-return tail; `measured` marks in-window commits.
    pub fn commit_local(
        &mut self,
        at: SimTime,
        txn: TxnId,
        expected_releases: u32,
        measured: bool,
    ) {
        let mut ev = SpanEvent::new(at, SpanKind::CommitLocal, Some(txn), None);
        ev.n = expected_releases;
        ev.measured = measured;
        self.push(ev);
    }

    /// A release sent by (finished) `txn` arrived; `at_server` tells
    /// whether the destination was the server.
    pub fn release_arrived(&mut self, at: SimTime, txn: TxnId, at_server: bool) {
        let mut ev = SpanEvent::new(at, SpanKind::ReleaseArrived, Some(txn), None);
        ev.server = at_server;
        self.push(ev);
    }

    /// A collection window closed, producing a forward list of `len`.
    pub fn window_closed(&mut self, at: SimTime, item: ItemId, len: usize) {
        let mut ev = SpanEvent::new(at, SpanKind::WindowClosed, None, Some(item));
        ev.n = len as u32;
        self.push(ev);
    }

    /// The transaction aborted: its open span state is discarded.
    pub fn aborted(&mut self, at: SimTime, txn: TxnId) {
        self.push(SpanEvent::new(at, SpanKind::Aborted, Some(txn), None));
    }

    // ---- state machine ----

    fn push(&mut self, ev: SpanEvent) {
        if self.record_raw {
            if self.raw.len() < MAX_RAW_EVENTS {
                self.raw.push(ev);
            } else {
                self.dropped += 1;
            }
        }
        self.apply(&ev);
    }

    /// Advance the tracker by one event (also the replay entry point).
    pub fn apply(&mut self, ev: &SpanEvent) {
        match ev.kind {
            SpanKind::ReqSent => {
                let Some(txn) = ev.txn else { return };
                let open = self.open.entry(txn).or_insert_with(|| Open {
                    start: ev.at,
                    last: ev.at,
                    mark: SpanKind::ReqSent,
                    acc: [0; Phase::RESPONSE_PHASES],
                    rounds: 0,
                    intervals: Vec::new(),
                });
                Self::charge(open, ev.at, self.detail);
                open.mark = SpanKind::ReqSent;
                open.rounds += 1;
            }
            SpanKind::ReqArrived
            | SpanKind::Dispatched
            | SpanKind::HopDeparted
            | SpanKind::Granted => {
                let Some(txn) = ev.txn else { return };
                let Some(open) = self.open.get_mut(&txn) else {
                    return; // e.g. pass-through traffic of an aborted txn
                };
                Self::charge(open, ev.at, self.detail);
                open.mark = ev.kind;
                if ev.kind == SpanKind::Granted {
                    open.rounds += 1; // the delivering hop
                }
            }
            SpanKind::GrantedLocal => {
                let Some(txn) = ev.txn else { return };
                // A local grant may be the first event of a transaction
                // whose every access so far hit the cache.
                let open = self.open.entry(txn).or_insert_with(|| Open {
                    start: ev.at,
                    last: ev.at,
                    mark: SpanKind::GrantedLocal,
                    acc: [0; Phase::RESPONSE_PHASES],
                    rounds: 0,
                    intervals: Vec::new(),
                });
                Self::charge(open, ev.at, self.detail);
                open.mark = SpanKind::GrantedLocal;
                // No round: the grant never touched the network.
            }
            SpanKind::CommitLocal => {
                let Some(txn) = ev.txn else { return };
                let mut open = self.open.remove(&txn).unwrap_or(Open {
                    start: ev.at,
                    last: ev.at,
                    mark: SpanKind::Granted,
                    acc: [0; Phase::RESPONSE_PHASES],
                    rounds: 0,
                    intervals: Vec::new(),
                });
                Self::charge(&mut open, ev.at, self.detail);
                if ev.measured {
                    self.agg.measured_commits += 1;
                    for (i, &a) in open.acc.iter().enumerate() {
                        self.agg.per_phase[i].record(a as f64);
                        self.agg.tails[i].record(a);
                    }
                }
                let post = Post {
                    start: open.start,
                    commit: ev.at,
                    last: ev.at,
                    left: ev.n,
                    rounds: open.rounds,
                    measured: ev.measured,
                    acc: open.acc,
                    intervals: open.intervals,
                };
                if ev.n == 0 {
                    self.finalize(txn, post);
                } else {
                    self.post.insert(txn, post);
                }
            }
            SpanKind::ReleaseArrived => {
                if ev.server {
                    self.agg.server_returns += 1;
                }
                let Some(txn) = ev.txn else { return };
                let Some(post) = self.post.get_mut(&txn) else {
                    return; // release of an aborted or unseen transaction
                };
                if ev.server {
                    post.rounds += 1; // a true sequential round home
                }
                post.last = ev.at;
                post.left = post.left.saturating_sub(1);
                if post.left == 0 {
                    if let Some(post) = self.post.remove(&txn) {
                        self.finalize(txn, post);
                    }
                }
            }
            SpanKind::WindowClosed => {} // raw-log only
            SpanKind::SlowTxn => {}      // export-time marker, carries no tracker state
            SpanKind::Aborted => {
                let Some(txn) = ev.txn else { return };
                self.open.remove(&txn);
                self.post.remove(&txn);
            }
        }
    }

    /// Charge the interval since the last event to the phase opened by
    /// the current mark.
    fn charge(open: &mut Open, at: SimTime, detail: bool) {
        let d = at.units().saturating_sub(open.last.units());
        if d > 0 {
            let p = phase_of(open.mark);
            open.acc[p.index()] += d;
            if detail {
                open.intervals.push((p, open.last, at));
            }
        }
        open.last = at;
    }

    fn finalize(&mut self, txn: TxnId, post: Post) {
        let tail = post.last.units().saturating_sub(post.commit.units());
        if post.measured {
            self.agg.per_phase[Phase::CommitReturn.index()].record(tail as f64);
            self.agg.tails[Phase::CommitReturn.index()].record(tail);
            self.agg.rounds.record(f64::from(post.rounds));
            self.agg.rounds_total += u64::from(post.rounds);
        }
        if !self.detail && !post.measured {
            return; // nothing retains warm-up commits outside detail mode
        }
        let mut phases = [0u64; 6];
        phases[..Phase::RESPONSE_PHASES].copy_from_slice(&post.acc);
        phases[Phase::CommitReturn.index()] = tail;
        let mut intervals = post.intervals;
        if tail > 0 && self.detail {
            intervals.push((Phase::CommitReturn, post.commit, post.last));
        }
        let d = TxnDetail {
            txn,
            start: post.start,
            commit: post.commit,
            end: post.last,
            phases,
            rounds: post.rounds,
            measured: post.measured,
            intervals,
        };
        if post.measured {
            self.offer_flight(&d);
        }
        if self.detail {
            self.details.push(d);
        }
    }

    /// Worst-first total order for flight entries: longest response
    /// first, ties broken by earlier start then lower transaction id —
    /// the id is unique, so the order (and hence the retained set) is
    /// independent of finalize order.
    fn flight_key(d: &TxnDetail) -> (Reverse<u64>, SimTime, TxnId) {
        let response = d.commit.units().saturating_sub(d.start.units());
        (Reverse(response), d.start, d.txn)
    }

    /// Consider a measured commit for the flight recorder's top-k.
    fn offer_flight(&mut self, d: &TxnDetail) {
        let key = Self::flight_key(d);
        if self.flight.len() >= FLIGHT_K {
            match self.flight.last() {
                Some(worst) if key >= Self::flight_key(worst) => return,
                _ => {}
            }
        }
        let pos = self.flight.partition_point(|e| Self::flight_key(e) < key);
        self.flight.insert(pos, d.clone());
        self.flight.truncate(FLIGHT_K);
    }

    /// Raw events dropped past [`MAX_RAW_EVENTS`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Close the recorder: flush commits whose releases were still in
    /// flight at run end and return the report.
    pub fn finish(mut self) -> ObsReport {
        let in_flight: Vec<TxnId> = self.post.keys().copied().collect();
        for txn in in_flight {
            if let Some(post) = self.post.remove(&txn) {
                self.finalize(txn, post);
            }
        }
        self.agg.spans_dropped = self.dropped;
        ObsReport {
            breakdown: self.agg,
            raw: self.record_raw.then_some(self.raw),
            details: self.details,
            flight: self.flight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(u: u64) -> SimTime {
        SimTime::new(u)
    }
    const T0: TxnId = TxnId::new(0);
    const X0: ItemId = ItemId::new(0);

    /// An s-2PL-like single-item transaction: request at 0, server at
    /// 100, grant issued at once, granted at 200, commit at 202, release
    /// home at 302.
    fn s2pl_like(r: &mut SpanRecorder, measured: bool) {
        r.req_sent(t(0), T0, X0);
        r.req_arrived(t(100), T0, X0);
        r.dispatched(t(100), T0, X0);
        r.hop_departed(t(100), T0, X0);
        r.granted(t(200), T0, X0);
        r.commit_local(t(202), T0, 1, measured);
        r.release_arrived(t(302), T0, true);
    }

    #[test]
    fn phases_partition_response_exactly() {
        let mut r = SpanRecorder::new(false).with_detail();
        s2pl_like(&mut r, true);
        let rep = r.finish();
        let b = &rep.breakdown;
        assert_eq!(b.measured_commits, 1);
        assert_eq!(b.phase(Phase::ReqProp).mean(), 100.0);
        assert_eq!(b.phase(Phase::ServerQueue).mean(), 0.0);
        assert_eq!(b.phase(Phase::Migration).mean(), 0.0);
        assert_eq!(b.phase(Phase::DispatchProp).mean(), 100.0);
        assert_eq!(b.phase(Phase::ClientProc).mean(), 2.0);
        assert_eq!(b.phase(Phase::CommitReturn).mean(), 100.0);
        assert_eq!(b.mean_phase_sum(), 202.0, "phases sum to response");
        let d = &rep.details[0];
        assert_eq!(d.start, t(0));
        assert_eq!(d.commit, t(202));
        assert_eq!(d.end, t(302));
        assert_eq!(d.phases.iter().sum::<u64>(), 302);
    }

    #[test]
    fn s2pl_single_item_counts_three_rounds() {
        let mut r = SpanRecorder::new(false);
        s2pl_like(&mut r, true);
        let b = r.finish().breakdown;
        assert_eq!(b.rounds_total, 3, "request + grant + commit-release");
        assert_eq!(b.mean_rounds(), 3.0);
        assert_eq!(b.server_returns, 1);
    }

    #[test]
    fn client_bound_releases_add_no_rounds() {
        // A g-2PL mid-list transaction: its release rides the successor's
        // grant hop, so it stays at 2 rounds.
        let mut r = SpanRecorder::new(false);
        r.req_sent(t(0), T0, X0);
        r.req_arrived(t(100), T0, X0);
        r.dispatched(t(150), T0, X0); // window close
        r.hop_departed(t(180), T0, X0); // predecessor forwards
        r.granted(t(280), T0, X0);
        r.commit_local(t(282), T0, 1, true);
        r.release_arrived(t(382), T0, false); // arrives at the next client
        let b = r.finish().breakdown;
        assert_eq!(b.rounds_total, 2);
        assert_eq!(b.phase(Phase::ServerQueue).mean(), 50.0);
        assert_eq!(b.phase(Phase::Migration).mean(), 30.0);
        assert_eq!(b.phase(Phase::DispatchProp).mean(), 100.0);
        assert_eq!(b.phase(Phase::CommitReturn).mean(), 100.0);
        assert_eq!(b.server_returns, 0);
    }

    #[test]
    fn warmup_commits_do_not_aggregate() {
        let mut r = SpanRecorder::new(false);
        s2pl_like(&mut r, false);
        let b = r.finish().breakdown;
        assert_eq!(b.measured_commits, 0);
        assert_eq!(b.rounds.total(), 0);
        assert_eq!(b.rounds_total, 0);
        assert_eq!(b.server_returns, 1, "server returns count run-wide");
    }

    #[test]
    fn aborted_txn_leaves_no_trace_in_aggregates() {
        let mut r = SpanRecorder::new(false);
        r.req_sent(t(0), T0, X0);
        r.req_arrived(t(100), T0, X0);
        r.aborted(t(150), T0);
        // Pass-through traffic after the abort must be ignored.
        r.granted(t(200), T0, X0);
        r.release_arrived(t(300), T0, true);
        let b = r.finish().breakdown;
        assert_eq!(b.measured_commits, 0);
        assert_eq!(b.rounds_total, 0);
    }

    #[test]
    fn zero_commit_run_reports_empty_breakdown() {
        let r = SpanRecorder::new(false);
        let b = r.finish().breakdown;
        assert_eq!(b.measured_commits, 0);
        assert_eq!(b.mean_rounds(), 0.0);
        assert_eq!(b.mean_phase_sum(), 0.0);
        assert_eq!(b.rounds.quantile(0.5), None);
    }

    #[test]
    fn local_grants_count_zero_rounds() {
        let mut r = SpanRecorder::new(false);
        r.granted_local(t(0), T0, X0);
        r.granted_local(t(2), T0, X0);
        r.commit_local(t(4), T0, 1, true);
        r.release_arrived(t(104), T0, true);
        let b = r.finish().breakdown;
        assert_eq!(b.rounds_total, 1, "only the commit-release round");
        assert_eq!(b.phase(Phase::ClientProc).mean(), 4.0);
        assert_eq!(b.mean_phase_sum(), 4.0);
    }

    #[test]
    fn in_flight_releases_flush_at_finish() {
        let mut r = SpanRecorder::new(false);
        r.req_sent(t(0), T0, X0);
        r.req_arrived(t(100), T0, X0);
        r.dispatched(t(100), T0, X0);
        r.hop_departed(t(100), T0, X0);
        r.granted(t(200), T0, X0);
        r.commit_local(t(202), T0, 1, true);
        // The release never arrives: the run ended. finish() still
        // reports the commit's rounds (2, without the return).
        let b = r.finish().breakdown;
        assert_eq!(b.measured_commits, 1);
        assert_eq!(b.rounds_total, 2);
    }

    /// One single-item commit for txn `id`, starting at `base` with the
    /// grant arriving `slow` ticks later (response = slow + 2).
    fn commit_with_response(r: &mut SpanRecorder, id: u32, base: u64, slow: u64, measured: bool) {
        let txn = TxnId::new(id);
        r.req_sent(t(base), txn, X0);
        r.req_arrived(t(base + 1), txn, X0);
        r.dispatched(t(base + 1), txn, X0);
        r.hop_departed(t(base + 1), txn, X0);
        r.granted(t(base + 1 + slow), txn, X0);
        r.commit_local(t(base + 2 + slow), txn, 0, measured);
    }

    #[test]
    fn flight_recorder_keeps_worst_k_sorted() {
        let mut r = SpanRecorder::new(false);
        // 3*FLIGHT_K commits with responses 2, 12, 22, ... — the top-k
        // are the last k by response, not by arrival order.
        let n = 3 * FLIGHT_K as u64;
        for i in 0..n {
            // Interleave slow and fast arrivals.
            let slow = if i % 2 == 0 { i * 10 } else { i };
            commit_with_response(&mut r, i as u32, i * 10_000, slow, true);
        }
        let rep = r.finish();
        let flight = &rep.flight;
        assert_eq!(flight.len(), FLIGHT_K);
        let resp = |d: &TxnDetail| d.commit.units() - d.start.units();
        for w in flight.windows(2) {
            assert!(resp(&w[0]) >= resp(&w[1]), "flight must be worst-first");
        }
        // The single worst transaction is the largest even index.
        assert_eq!(flight[0].txn, TxnId::new((n - 2) as u32));
        assert_eq!(resp(&flight[0]), (n - 2) * 10 + 2);
        // Every retained entry beats every evicted response.
        assert!(resp(&flight[FLIGHT_K - 1]) > n);
    }

    #[test]
    fn flight_recorder_ignores_warmup_and_aborts() {
        let mut r = SpanRecorder::new(false);
        commit_with_response(&mut r, 0, 0, 100_000, false); // warm-up, huge
        r.req_sent(t(500_000), TxnId::new(1), X0);
        r.aborted(t(900_000), TxnId::new(1));
        commit_with_response(&mut r, 2, 1_000_000, 5, true);
        let rep = r.finish();
        assert_eq!(rep.flight.len(), 1);
        assert_eq!(rep.flight[0].txn, TxnId::new(2));
        assert!(rep.flight[0].measured);
    }

    #[test]
    fn per_phase_tails_cover_every_measured_commit() {
        let mut r = SpanRecorder::new(false);
        for i in 0..10 {
            commit_with_response(&mut r, i, u64::from(i) * 1000, u64::from(i) * 7, true);
        }
        let b = r.finish().breakdown;
        for p in Phase::ALL {
            assert_eq!(
                b.tail(p).count(),
                b.measured_commits,
                "{p} sketch misses commits"
            );
            // The sketch's mean-free summary must bracket the mean.
            if let Some(max) = b.tail(p).max() {
                assert!(b.phase(p).mean() <= max as f64);
            }
        }
        // DispatchProp saw exactly `slow` = 7i ticks, i in 0..10.
        assert_eq!(b.tail(Phase::DispatchProp).max(), Some(63));
        assert_eq!(b.tail(Phase::DispatchProp).quantile(0.5), Some(4 * 7));
    }

    #[test]
    fn raw_log_caps_and_counts_drops() {
        let mut r = SpanRecorder::new(true);
        for i in 0..(MAX_RAW_EVENTS + 7) {
            r.req_sent(t(i as u64), TxnId::new(i as u32), X0);
        }
        assert_eq!(r.dropped(), 7);
        let rep = r.finish();
        assert_eq!(rep.raw.map(|v| v.len()), Some(MAX_RAW_EVENTS));
        assert_eq!(rep.breakdown.spans_dropped, 7);
    }

    #[test]
    fn replay_matches_live_aggregation() {
        let mut live = SpanRecorder::new(true);
        s2pl_like(&mut live, true);
        let rep = live.finish();
        let raw = rep.raw.as_deref().unwrap_or(&[]);
        let replayed = SpanRecorder::replay(raw).finish();
        assert_eq!(
            replayed.breakdown.mean_phase_sum(),
            rep.breakdown.mean_phase_sum()
        );
        assert_eq!(replayed.breakdown.rounds_total, rep.breakdown.rounds_total);
        assert_eq!(replayed.details.len(), 1);
    }
}
