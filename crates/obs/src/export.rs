//! JSONL structured export of span traces, and its parser.
//!
//! One file per run: the first line is a run-meta object (identified by
//! its `"protocol"` key), every following line one span event:
//!
//! ```text
//! {"protocol":"g-2PL","clients":8,"latency":200,"read_prob":0.0,...}
//! {"at":0,"kind":"req_sent","txn":0,"item":3}
//! {"at":14,"kind":"window_closed","item":3,"n":4}
//! {"at":30,"kind":"commit_local","txn":0,"n":1,"measured":true}
//! {"at":35,"kind":"release_arrived","txn":0,"server":true}
//! ```
//!
//! Fields at their default (`null` txn/item, `server:false`, `n:0`,
//! `measured:false`) are omitted. The workspace's `serde` is an offline
//! no-op stub, so both directions are implemented by hand; the parser is
//! deliberately defensive (`Result`, never panics) because it reads
//! files from disk.

use crate::span::{SpanEvent, SpanKind};
use crate::tracker::{TxnDetail, MAX_RAW_EVENTS};
use g2pl_simcore::{ItemId, SimTime, TxnId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Run-level metadata heading an exported trace.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMeta {
    /// Protocol label ("s-2PL", "g-2PL", "c-2PL").
    pub protocol: String,
    /// Number of client sites.
    pub clients: u32,
    /// Nominal one-way network latency (simulation units).
    pub latency: u64,
    /// Read probability of the workload.
    pub read_prob: f64,
    /// The replication's seed.
    pub seed: u64,
    /// Transactions committed over the whole run.
    pub committed: u64,
    /// Transactions aborted over the whole run.
    pub aborted: u64,
    /// Measured (post-warm-up) commits.
    pub measured: u64,
    /// Mean response time over measured commits.
    pub mean_response: f64,
    /// Span events dropped past the recorder cap (0 = complete trace).
    pub dropped: u64,
    /// Lease expiries the server resolved by abort + redispatch.
    pub lease_expiries: u64,
    /// Total simulated time items sat idle under a dead holder before a
    /// lease fired (the recovery machinery's latency debt; 0 on a
    /// fault-free run).
    pub recovery_stall: f64,
    /// Server crash/restart cycles survived during the run (0 on plans
    /// without server faults; traces from before server recovery existed
    /// parse as 0).
    pub server_crashes: u64,
    /// Engine-side 99th-percentile response time in ticks (from the
    /// run's quantile sketch; traces from before tail telemetry existed
    /// parse as 0).
    pub response_p99: u64,
    /// Engine-side 99.9th-percentile response time in ticks (0 on old
    /// traces, like [`response_p99`](Self::response_p99)).
    pub response_p999: u64,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Render one event as a single JSON line (no trailing newline).
pub fn event_to_json(ev: &SpanEvent) -> String {
    let mut s = format!("{{\"at\":{},\"kind\":\"{}\"", ev.at.units(), ev.kind.name());
    if let Some(t) = ev.txn {
        let _ = write!(s, ",\"txn\":{}", t.0);
    }
    if let Some(i) = ev.item {
        let _ = write!(s, ",\"item\":{}", i.0);
    }
    if ev.server {
        s.push_str(",\"server\":true");
    }
    if ev.n != 0 {
        let _ = write!(s, ",\"n\":{}", ev.n);
    }
    if ev.measured {
        s.push_str(",\"measured\":true");
    }
    s.push('}');
    s
}

/// Render a whole trace (meta line + one line per event).
pub fn write_jsonl(meta: &RunMeta, events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(64 * (events.len() + 1));
    let _ = writeln!(
        out,
        "{{\"protocol\":\"{}\",\"clients\":{},\"latency\":{},\"read_prob\":{},\"seed\":{},\
         \"committed\":{},\"aborted\":{},\"measured\":{},\"mean_response\":{},\"dropped\":{},\
         \"lease_expiries\":{},\"recovery_stall\":{},\"server_crashes\":{},\
         \"response_p99\":{},\"response_p999\":{}}}",
        meta.protocol.replace(['"', '\\'], "_"),
        meta.clients,
        meta.latency,
        json_f64(meta.read_prob),
        meta.seed,
        meta.committed,
        meta.aborted,
        meta.measured,
        json_f64(meta.mean_response),
        meta.dropped,
        meta.lease_expiries,
        json_f64(meta.recovery_stall),
        meta.server_crashes,
        meta.response_p99,
        meta.response_p999,
    );
    for ev in events {
        out.push_str(&event_to_json(ev));
        out.push('\n');
    }
    out
}

/// Synthesize the flight-recorder marker events appended after a trace's
/// raw event stream: one [`SpanKind::SlowTxn`] per retained transaction,
/// stamped at its commit-return end with `n` = 1-based rank (1 =
/// slowest). Tail analyzers read these to find the worst transactions
/// without recomputing the top-k.
pub fn flight_markers(flight: &[TxnDetail]) -> Vec<SpanEvent> {
    flight
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let mut ev = SpanEvent::new(d.end, SpanKind::SlowTxn, Some(d.txn), None);
            ev.n = (i + 1) as u32;
            ev.measured = d.measured;
            ev
        })
        .collect()
}

/// A parsed trace file.
#[derive(Clone, Debug)]
pub struct TraceFile {
    /// The run-meta heading.
    pub meta: RunMeta,
    /// The span events, in file order (= time order).
    pub events: Vec<SpanEvent>,
}

/// A flat JSON value (this format nests nothing).
#[derive(Clone, Debug, PartialEq)]
enum Val {
    Str(String),
    /// A numeric literal that is exactly a `u64` (no sign, fraction or
    /// exponent) — kept separate so 64-bit seeds survive round-trips
    /// that `f64`'s 53-bit mantissa would silently corrupt.
    Int(u64),
    Num(f64),
    Bool(bool),
    Null,
}

impl Val {
    fn as_u64(&self) -> Option<u64> {
        match self {
            Val::Int(n) => Some(*n),
            Val::Num(n) if *n >= 0.0 && n.is_finite() => Some(*n as u64),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Int(n) => Some(*n as f64),
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse one flat JSON object line into a key → value map.
fn parse_object(line: &str) -> Result<BTreeMap<String, Val>, String> {
    let mut out = BTreeMap::new();
    let b = line.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };
    let err = |what: &str, at: usize| format!("{what} at byte {at}: {line:.60}");
    skip_ws(&mut i);
    if i >= b.len() || b[i] != b'{' {
        return Err(err("expected '{'", i));
    }
    i += 1;
    skip_ws(&mut i);
    if i < b.len() && b[i] == b'}' {
        return Ok(out);
    }
    loop {
        skip_ws(&mut i);
        // Key (no escapes are ever emitted in keys).
        if i >= b.len() || b[i] != b'"' {
            return Err(err("expected key quote", i));
        }
        i += 1;
        let key_start = i;
        while i < b.len() && b[i] != b'"' {
            i += 1;
        }
        if i >= b.len() {
            return Err(err("unterminated key", key_start));
        }
        let key = line[key_start..i].to_string();
        i += 1;
        skip_ws(&mut i);
        if i >= b.len() || b[i] != b':' {
            return Err(err("expected ':'", i));
        }
        i += 1;
        skip_ws(&mut i);
        // Value.
        let val = if i < b.len() && b[i] == b'"' {
            i += 1;
            let vs = i;
            while i < b.len() && b[i] != b'"' {
                i += 1;
            }
            if i >= b.len() {
                return Err(err("unterminated string", vs));
            }
            let v = Val::Str(line[vs..i].to_string());
            i += 1;
            v
        } else if line[i..].starts_with("true") {
            i += 4;
            Val::Bool(true)
        } else if line[i..].starts_with("false") {
            i += 5;
            Val::Bool(false)
        } else if line[i..].starts_with("null") {
            i += 4;
            Val::Null
        } else {
            let ns = i;
            while i < b.len() && matches!(b[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                i += 1;
            }
            let lit = &line[ns..i];
            if let Ok(n) = lit.parse::<u64>() {
                Val::Int(n)
            } else {
                Val::Num(lit.parse::<f64>().map_err(|_| err("bad number", ns))?)
            }
        };
        out.insert(key, val);
        skip_ws(&mut i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(out),
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
}

fn parse_meta(map: &BTreeMap<String, Val>) -> Result<RunMeta, String> {
    let get_u = |k: &str| {
        map.get(k)
            .and_then(Val::as_u64)
            .ok_or_else(|| format!("meta line missing numeric \"{k}\""))
    };
    let get_f = |k: &str| {
        map.get(k)
            .and_then(Val::as_f64)
            .ok_or_else(|| format!("meta line missing numeric \"{k}\""))
    };
    let protocol = match map.get("protocol") {
        Some(Val::Str(s)) => s.clone(),
        _ => return Err("meta line missing \"protocol\"".to_string()),
    };
    Ok(RunMeta {
        protocol,
        clients: get_u("clients")? as u32,
        latency: get_u("latency")?,
        read_prob: get_f("read_prob")?,
        seed: get_u("seed")?,
        committed: get_u("committed")?,
        aborted: get_u("aborted")?,
        measured: get_u("measured")?,
        mean_response: get_f("mean_response")?,
        dropped: get_u("dropped").unwrap_or(0),
        // Pre-fault traces omit the recovery fields; default them so old
        // exports keep parsing.
        lease_expiries: get_u("lease_expiries").unwrap_or(0),
        recovery_stall: get_f("recovery_stall").unwrap_or(0.0),
        server_crashes: get_u("server_crashes").unwrap_or(0),
        response_p99: get_u("response_p99").unwrap_or(0),
        response_p999: get_u("response_p999").unwrap_or(0),
    })
}

fn parse_event(map: &BTreeMap<String, Val>, lineno: usize) -> Result<SpanEvent, String> {
    let at = map
        .get("at")
        .and_then(Val::as_u64)
        .ok_or_else(|| format!("line {lineno}: event missing \"at\""))?;
    let kind = match map.get("kind") {
        Some(Val::Str(s)) => SpanKind::from_name(s)
            .ok_or_else(|| format!("line {lineno}: unknown span kind \"{s}\""))?,
        _ => return Err(format!("line {lineno}: event missing \"kind\"")),
    };
    let mut ev = SpanEvent::new(
        SimTime::new(at),
        kind,
        map.get("txn")
            .and_then(Val::as_u64)
            .map(|t| TxnId::new(t as u32)),
        map.get("item")
            .and_then(Val::as_u64)
            .map(|x| ItemId::new(x as u32)),
    );
    ev.server = matches!(map.get("server"), Some(Val::Bool(true)));
    ev.measured = matches!(map.get("measured"), Some(Val::Bool(true)));
    ev.n = map.get("n").and_then(Val::as_u64).unwrap_or(0) as u32;
    Ok(ev)
}

/// Parse a whole exported trace. The first non-empty line must be the
/// run-meta object.
pub fn parse_jsonl(text: &str) -> Result<TraceFile, String> {
    let mut meta: Option<RunMeta> = None;
    let mut events: Vec<SpanEvent> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if events.len() > MAX_RAW_EVENTS {
            return Err(format!(
                "trace exceeds the {MAX_RAW_EVENTS}-event recorder cap; refusing to load"
            ));
        }
        let map = parse_object(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if meta.is_none() {
            meta = Some(parse_meta(&map)?);
        } else {
            events.push(parse_event(&map, idx + 1)?);
        }
    }
    let meta = meta.ok_or_else(|| "empty trace file (no meta line)".to_string())?;
    Ok(TraceFile { meta, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn meta() -> RunMeta {
        RunMeta {
            protocol: "g-2PL".to_string(),
            clients: 8,
            latency: 200,
            read_prob: 0.25,
            // Larger than f64's 53-bit mantissa: pins integer-exact parsing.
            seed: 6_364_136_226_095_761_044,
            committed: 120,
            aborted: 3,
            measured: 100,
            mean_response: 512.5,
            dropped: 0,
            lease_expiries: 2,
            recovery_stall: 77.5,
            server_crashes: 1,
            response_p99: 1536,
            response_p999: 2048,
        }
    }

    #[test]
    fn pre_crash_traces_parse_with_zero_server_crashes() {
        // Meta lines written before server recovery existed lack the
        // field; they must still parse, defaulting to 0.
        let text = write_jsonl(&meta(), &[]);
        let legacy = text.replace(",\"server_crashes\":1", "");
        let parsed = parse_jsonl(&legacy).expect("legacy meta parses");
        assert_eq!(parsed.meta.server_crashes, 0);
    }

    #[test]
    fn pre_tail_traces_parse_with_zero_quantiles() {
        let text = write_jsonl(&meta(), &[]);
        let legacy = text.replace(",\"response_p99\":1536,\"response_p999\":2048", "");
        let parsed = parse_jsonl(&legacy).expect("legacy meta parses");
        assert_eq!(parsed.meta.response_p99, 0);
        assert_eq!(parsed.meta.response_p999, 0);
    }

    #[test]
    fn flight_markers_round_trip_with_ranks() {
        use crate::span::Phase;
        let detail = |id: u32, end: u64| TxnDetail {
            txn: TxnId::new(id),
            start: SimTime::new(0),
            commit: SimTime::new(end - 10),
            end: SimTime::new(end),
            phases: [0; 6],
            rounds: 3,
            measured: true,
            intervals: vec![(Phase::ReqProp, SimTime::new(0), SimTime::new(1))],
        };
        let markers = flight_markers(&[detail(9, 500), detail(4, 300)]);
        assert_eq!(markers.len(), 2);
        assert_eq!(markers[0].kind, SpanKind::SlowTxn);
        assert_eq!((markers[0].txn, markers[0].n), (Some(TxnId::new(9)), 1));
        assert_eq!((markers[1].txn, markers[1].n), (Some(TxnId::new(4)), 2));
        let text = write_jsonl(&meta(), &markers);
        let parsed = parse_jsonl(&text).expect("markers parse");
        assert_eq!(parsed.events, markers);
    }

    #[test]
    fn round_trips_meta_and_events() {
        let mut e1 = SpanEvent::new(
            SimTime::new(14),
            SpanKind::WindowClosed,
            None,
            Some(ItemId::new(3)),
        );
        e1.n = 4;
        let mut e2 = SpanEvent::new(
            SimTime::new(30),
            SpanKind::CommitLocal,
            Some(TxnId::new(7)),
            None,
        );
        e2.n = 1;
        e2.measured = true;
        let mut e3 = SpanEvent::new(
            SimTime::new(35),
            SpanKind::ReleaseArrived,
            Some(TxnId::new(7)),
            None,
        );
        e3.server = true;
        let events = vec![e1, e2, e3];
        let text = write_jsonl(&meta(), &events);
        let parsed = parse_jsonl(&text).expect("round trip");
        assert_eq!(parsed.meta, meta());
        assert_eq!(parsed.events, events);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_jsonl("").is_err());
        assert!(parse_jsonl("not json\n").is_err());
        assert!(
            parse_jsonl("{\"protocol\":\"x\"}\n").is_err(),
            "meta incomplete"
        );
        let ok = write_jsonl(&meta(), &[]);
        assert!(
            parse_jsonl(&format!("{ok}{{\"at\":1}}\n")).is_err(),
            "event missing kind"
        );
        assert!(
            parse_jsonl(&format!("{ok}{{\"at\":1,\"kind\":\"zap\"}}\n")).is_err(),
            "unknown kind"
        );
    }

    #[test]
    fn defaults_are_omitted_and_restored() {
        let ev = SpanEvent::new(
            SimTime::new(5),
            SpanKind::ReqSent,
            Some(TxnId::new(0)),
            Some(ItemId::new(1)),
        );
        let line = event_to_json(&ev);
        assert!(!line.contains("server"));
        assert!(!line.contains("measured"));
        assert!(!line.contains("\"n\""));
        let text = format!("{}{line}\n", write_jsonl(&meta(), &[]));
        let parsed = parse_jsonl(&text).expect("parses");
        assert_eq!(parsed.events, vec![ev]);
    }
}
