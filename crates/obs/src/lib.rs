//! # g2pl-obs
//!
//! Critical-path observability for the protocol engines: per-transaction
//! spans, per-phase latency attribution, empirical sequential-round
//! accounting, and a JSONL structured export.
//!
//! The paper's whole argument is that *rounds of sequential message
//! passing*, not bytes, dominate transaction cost on high-latency links
//! (§3.1: s-2PL pays `3m` rounds for `m` single-item transactions where
//! g-2PL pays `2m + 1`). This crate measures that claim instead of
//! assuming it: the engines emit typed [`span::SpanEvent`]s on every
//! critical-path transition, and [`tracker::SpanRecorder`] streams them
//! into a [`tracker::PhaseBreakdown`] — mean/max time per
//! [`span::Phase`], a round-count histogram, and exact round totals —
//! that rides along in `RunMetrics`. [`export`] serialises the raw event
//! log to JSONL for the `trace-explain` analyzer.
//!
//! Layering: depends only on `g2pl-simcore` (ids, time) and `g2pl-stats`
//! (moments, histograms); the protocols crate depends on *it*.

pub mod export;
pub mod span;
pub mod tracker;

pub use export::{event_to_json, flight_markers, parse_jsonl, write_jsonl, RunMeta, TraceFile};
pub use span::{Phase, SpanEvent, SpanKind};
pub use tracker::{ObsReport, PhaseBreakdown, SpanRecorder, TxnDetail, FLIGHT_K, MAX_RAW_EVENTS};
