//! The span model: typed critical-path events and the phase taxonomy.
//!
//! A transaction's response time is exactly partitioned into the first
//! five [`Phase`]s by the rule that the interval between two consecutive
//! span events is attributed to the phase *named by the earlier event*
//! (see [`crate::tracker::SpanRecorder`]). [`Phase::CommitReturn`] is the
//! post-commit tail — the time until the last lock release reaches its
//! destination — and is *not* part of response time (the client has
//! already moved on), exactly as the paper's §3.1 "the releasing of the
//! locks is merged with the returning of the data items" overlap
//! argument requires.

use g2pl_simcore::{ItemId, SimTime, TxnId};
use serde::Serialize;
use std::fmt;

/// Where one slice of a transaction's lifetime was spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Phase {
    /// Request propagation: a lock/data request is on the wire toward the
    /// server.
    ReqProp,
    /// Server residency: queued in the lock table (s-2PL/c-2PL) or
    /// gathering in an item's collection window (g-2PL) until the
    /// dispatch decision.
    ServerQueue,
    /// Migration wait: dispatched on a forward list but waiting for the
    /// item to migrate through the predecessors' clients (g-2PL; always
    /// zero for the server-based protocols).
    Migration,
    /// Dispatch propagation: the grant/data hop toward this client is on
    /// the wire.
    DispatchProp,
    /// Client processing: granted and computing (think times, plus any
    /// MR1W commit-certification wait).
    ClientProc,
    /// Post-commit: commit at the client until the last release reaches
    /// its destination. Excluded from response time.
    CommitReturn,
}

impl Phase {
    /// All phases, in timeline order.
    pub const ALL: [Phase; 6] = [
        Phase::ReqProp,
        Phase::ServerQueue,
        Phase::Migration,
        Phase::DispatchProp,
        Phase::ClientProc,
        Phase::CommitReturn,
    ];

    /// The number of phases that partition response time (all but
    /// [`Phase::CommitReturn`]).
    pub const RESPONSE_PHASES: usize = 5;

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ReqProp => "req-prop",
            Phase::ServerQueue => "server-queue",
            Phase::Migration => "migration",
            Phase::DispatchProp => "dispatch-prop",
            Phase::ClientProc => "client-proc",
            Phase::CommitReturn => "commit-return",
        }
    }

    /// Index into a `[_; 6]` per-phase array.
    pub fn index(self) -> usize {
        match self {
            Phase::ReqProp => 0,
            Phase::ServerQueue => 1,
            Phase::Migration => 2,
            Phase::DispatchProp => 3,
            Phase::ClientProc => 4,
            Phase::CommitReturn => 5,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A critical-path event on a transaction's timeline.
///
/// Kinds mark the *start* of the phase they name; the phase charged for
/// an interval is determined by the interval's opening event:
///
/// | opening event    | interval charged to       |
/// |------------------|---------------------------|
/// | `ReqSent`        | [`Phase::ReqProp`]        |
/// | `ReqArrived`     | [`Phase::ServerQueue`]    |
/// | `Dispatched`     | [`Phase::Migration`]      |
/// | `HopDeparted`    | [`Phase::DispatchProp`]   |
/// | `Granted`        | [`Phase::ClientProc`]     |
/// | `CommitLocal`    | [`Phase::CommitReturn`]   |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SpanKind {
    /// A request left the client.
    ReqSent,
    /// The request reached the server (and was queued or windowed).
    ReqArrived,
    /// The server decided this transaction's dispatch: its forward-list
    /// position is fixed (g-2PL window close) or its grant was issued
    /// (s-2PL/c-2PL).
    Dispatched,
    /// A physical hop carrying the item toward this transaction departed
    /// (server dispatch, or an upstream client's forward).
    HopDeparted,
    /// The access was granted at the client.
    Granted,
    /// The access was granted locally from the client's own cache with no
    /// server round (c-2PL only). Counts zero sequential rounds.
    GrantedLocal,
    /// The transaction committed at its client. `n` carries the number of
    /// release arrivals expected before the commit-return tail closes;
    /// `measured` marks commits inside the measurement window.
    CommitLocal,
    /// A release by this (finished) transaction arrived somewhere:
    /// `server` tells whether the destination was the server (a true
    /// sequential round) or a client (overlapped with the successor's
    /// grant hop, hence zero additional rounds).
    ReleaseArrived,
    /// A collection window closed at the server (g-2PL). `n` is the
    /// forward-list length; `txn` is unset.
    WindowClosed,
    /// The transaction aborted; its open span state is discarded.
    Aborted,
    /// Flight-recorder marker appended at export time: `txn` is one of
    /// the run's top-k slowest measured committed transactions and `n`
    /// is its 1-based rank (1 = slowest). Engines never emit this
    /// mid-run; the tracker ignores it on replay. It exists so tail
    /// analyzers can locate the worst transactions in a JSONL trace
    /// without recomputing the top-k.
    SlowTxn,
}

impl SpanKind {
    /// Stable wire name used by the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::ReqSent => "req_sent",
            SpanKind::ReqArrived => "req_arrived",
            SpanKind::Dispatched => "dispatched",
            SpanKind::HopDeparted => "hop_departed",
            SpanKind::Granted => "granted",
            SpanKind::GrantedLocal => "granted_local",
            SpanKind::CommitLocal => "commit_local",
            SpanKind::ReleaseArrived => "release_arrived",
            SpanKind::WindowClosed => "window_closed",
            SpanKind::Aborted => "aborted",
            SpanKind::SlowTxn => "slow_txn",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn from_name(s: &str) -> Option<SpanKind> {
        let all = [
            SpanKind::ReqSent,
            SpanKind::ReqArrived,
            SpanKind::Dispatched,
            SpanKind::HopDeparted,
            SpanKind::Granted,
            SpanKind::GrantedLocal,
            SpanKind::CommitLocal,
            SpanKind::ReleaseArrived,
            SpanKind::WindowClosed,
            SpanKind::Aborted,
            SpanKind::SlowTxn,
        ];
        all.into_iter().find(|k| k.name() == s)
    }
}

/// One span event, as recorded by the engines and exported to JSONL.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct SpanEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: SpanKind,
    /// The transaction involved (unset only for `WindowClosed`).
    pub txn: Option<TxnId>,
    /// The item involved, if any.
    pub item: Option<ItemId>,
    /// For `ReleaseArrived`: the destination was the server.
    pub server: bool,
    /// Kind-specific count: expected releases (`CommitLocal`) or
    /// forward-list length (`WindowClosed`).
    pub n: u32,
    /// For `CommitLocal`: the commit fell inside the measurement window.
    pub measured: bool,
}

impl SpanEvent {
    /// A minimal event; kind-specific fields default to zero/false.
    pub fn new(at: SimTime, kind: SpanKind, txn: Option<TxnId>, item: Option<ItemId>) -> Self {
        SpanEvent {
            at,
            kind,
            txn,
            item,
            server: false,
            n: 0,
            measured: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_ordered() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::RESPONSE_PHASES, Phase::ALL.len() - 1);
    }

    #[test]
    fn span_kind_names_round_trip() {
        for k in [
            SpanKind::ReqSent,
            SpanKind::ReqArrived,
            SpanKind::Dispatched,
            SpanKind::HopDeparted,
            SpanKind::Granted,
            SpanKind::GrantedLocal,
            SpanKind::CommitLocal,
            SpanKind::ReleaseArrived,
            SpanKind::WindowClosed,
            SpanKind::Aborted,
            SpanKind::SlowTxn,
        ] {
            assert_eq!(SpanKind::from_name(k.name()), Some(k));
        }
        assert_eq!(SpanKind::from_name("bogus"), None);
    }
}
