//! Property-based tests of the network models.

use g2pl_netmodel::{
    BandwidthLatency, ConstantLatency, JitteredLatency, LatencyModel, MatrixLatency, NetAccounting,
    NetworkEnv,
};
use g2pl_simcore::{ClientId, RngStream, SimTime, SiteId};
use proptest::prelude::*;

fn site(raw: u32, clients: u32) -> SiteId {
    if raw.is_multiple_of(clients + 1) {
        SiteId::SERVER0
    } else {
        SiteId::Client(ClientId::new(raw % (clients + 1) - 1))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Constant latency is invariant in endpoints and size.
    #[test]
    fn constant_is_constant(l in 0u64..10_000, a in 0u32..20, b in 0u32..20, sz in 0u64..1u64<<30) {
        let m = ConstantLatency::new(SimTime::new(l));
        let mut rng = RngStream::new(1);
        prop_assert_eq!(m.delay(site(a, 19), site(b, 19), sz, &mut rng), SimTime::new(l));
        prop_assert_eq!(m.nominal(), SimTime::new(l));
    }

    /// Jitter never leaves its band.
    #[test]
    fn jitter_band(base in 0u64..1000, jitter in 0u64..500, seed in any::<u64>()) {
        let m = JitteredLatency::new(SimTime::new(base), jitter);
        let mut rng = RngStream::new(seed);
        for _ in 0..50 {
            let d = m.delay(SiteId::SERVER0, SiteId::SERVER0, 0, &mut rng).units();
            prop_assert!(d >= base && d <= base + jitter);
        }
    }

    /// Bandwidth delay is monotone in message size and at least the
    /// propagation latency.
    #[test]
    fn bandwidth_monotone(l in 0u64..1000, bpu in 1u64..100_000, s1 in 0u64..1u64<<20, s2 in 0u64..1u64<<20) {
        let m = BandwidthLatency::new(SimTime::new(l), bpu);
        let mut rng = RngStream::new(3);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let dlo = m.delay(SiteId::SERVER0, SiteId::SERVER0, lo, &mut rng);
        let dhi = m.delay(SiteId::SERVER0, SiteId::SERVER0, hi, &mut rng);
        prop_assert!(dlo <= dhi);
        prop_assert!(dlo >= SimTime::new(l));
    }

    /// A symmetric-set matrix answers symmetrically; untouched pairs keep
    /// the uniform default.
    #[test]
    fn matrix_settings_stick(default in 0u64..100, special in 0u64..100, a in 0u32..8, b in 0u32..8) {
        prop_assume!(a != b);
        let mut m = MatrixLatency::uniform(8, SimTime::new(default));
        let (sa, sb) = (SiteId::Client(ClientId::new(a)), SiteId::Client(ClientId::new(b)));
        m.set_symmetric(sa, sb, SimTime::new(special));
        let mut rng = RngStream::new(4);
        prop_assert_eq!(m.delay(sa, sb, 0, &mut rng), SimTime::new(special));
        prop_assert_eq!(m.delay(sb, sa, 0, &mut rng), SimTime::new(special));
        prop_assert_eq!(m.delay(sa, SiteId::SERVER0, 0, &mut rng), SimTime::new(default));
    }

    /// Accounting totals always equal the sum over kinds and directions.
    #[test]
    fn accounting_conserves(msgs in proptest::collection::vec((0u32..10, 0u32..10, 0u64..10_000), 0..100)) {
        let mut acct = NetAccounting::new();
        let kinds = ["a", "b", "c"];
        for (i, &(from, to, size)) in msgs.iter().enumerate() {
            acct.record(site(from, 9), site(to, 9), kinds[i % 3], size);
        }
        prop_assert_eq!(acct.messages(), msgs.len() as u64);
        let by_kind: u64 = acct.kinds().map(|(_, c)| c).sum();
        prop_assert_eq!(by_kind, msgs.len() as u64);
        let bytes: u64 = msgs.iter().map(|&(_, _, s)| s).sum();
        prop_assert_eq!(acct.bytes(), bytes);
        prop_assert!(acct.client_to_client_share() >= 0.0);
        prop_assert!(acct.client_to_client_share() <= 1.0);
    }

    /// `NetworkEnv::nearest` returns the true nearest environment.
    #[test]
    fn nearest_is_truly_nearest(latency in 0u64..2000) {
        let got = NetworkEnv::nearest(SimTime::new(latency));
        let best = NetworkEnv::ALL
            .into_iter()
            .map(|e| e.latency().units().abs_diff(latency))
            .min()
            .unwrap();
        prop_assert_eq!(got.latency().units().abs_diff(latency), best);
    }
}
