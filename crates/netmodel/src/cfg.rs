//! Serializable latency-model configuration.
//!
//! This is the single source of truth for latency configuration: the
//! protocol engines re-export [`LatencyCfg`] (it used to live in
//! `g2pl-protocols`), and the lossy-link fault wrapper builds on the same
//! type, so a figure spec, an engine config, and a fault plan all describe
//! the network the same way.

use crate::latency::{BandwidthLatency, ConstantLatency, JitteredLatency, LatencyModel};
use g2pl_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Serializable latency-model choice, instantiated per run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LatencyCfg {
    /// The paper's model: every message takes exactly this many units.
    Constant(u64),
    /// Constant base plus uniform jitter in `[0, jitter]`.
    Jittered {
        /// Base one-way delay.
        base: u64,
        /// Maximum extra delay.
        jitter: u64,
    },
    /// Propagation latency plus `size / bytes_per_unit` transmission time.
    Bandwidth {
        /// Propagation component.
        latency: u64,
        /// Bytes transferred per simulation time unit.
        bytes_per_unit: u64,
    },
}

impl LatencyCfg {
    /// Build the runtime latency model.
    pub fn build(self) -> Box<dyn LatencyModel> {
        match self {
            LatencyCfg::Constant(l) => Box::new(ConstantLatency::new(SimTime::new(l))),
            LatencyCfg::Jittered { base, jitter } => {
                Box::new(JitteredLatency::new(SimTime::new(base), jitter))
            }
            LatencyCfg::Bandwidth {
                latency,
                bytes_per_unit,
            } => Box::new(BandwidthLatency::new(SimTime::new(latency), bytes_per_unit)),
        }
    }

    /// Nominal one-way latency (for reporting and for deriving default
    /// fault-recovery timeouts).
    pub fn nominal(self) -> u64 {
        match self {
            LatencyCfg::Constant(l) => l,
            LatencyCfg::Jittered { base, jitter } => base + jitter / 2,
            LatencyCfg::Bandwidth { latency, .. } => latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_cfg_builds_models() {
        assert_eq!(LatencyCfg::Constant(5).nominal(), 5);
        assert_eq!(
            LatencyCfg::Jittered {
                base: 10,
                jitter: 4
            }
            .nominal(),
            12
        );
        let m = LatencyCfg::Bandwidth {
            latency: 7,
            bytes_per_unit: 100,
        };
        assert_eq!(m.nominal(), 7);
        let _ = m.build();
    }
}
