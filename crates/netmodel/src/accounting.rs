//! Message accounting.
//!
//! §3.2's complexity claim — s-2PL needs `3m` messages and rounds for `m`
//! best-case transactions while g-2PL needs `2m + 1` — is validated by the
//! integration tests with the counters kept here. The harness reports
//! total message counts and the client-to-client traffic share (data
//! migration is the signature of g-2PL).

use g2pl_simcore::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Direction class of a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// Client → server (requests, releases, returns).
    ClientToServer,
    /// Server → client (grants, dispatches, abort notices).
    ServerToClient,
    /// Client → client (g-2PL data migration and reader releases).
    ClientToClient,
    /// Server shard → server shard (reserved for future inter-shard
    /// coordination; the current engines coordinate cross-shard commits
    /// at the client, so this stays zero).
    ServerToServer,
}

impl Direction {
    /// Classify a (from, to) endpoint pair.
    pub fn of(from: SiteId, to: SiteId) -> Direction {
        match (from, to) {
            (SiteId::Server(_), SiteId::Server(_)) => Direction::ServerToServer,
            (SiteId::Server(_), SiteId::Client(_)) => Direction::ServerToClient,
            (SiteId::Client(_), SiteId::Server(_)) => Direction::ClientToServer,
            (SiteId::Client(_), SiteId::Client(_)) => Direction::ClientToClient,
        }
    }
}

/// Counts of messages and bytes, broken down by direction and by message
/// kind label.
#[derive(Clone, Debug, Default, Serialize)]
pub struct NetAccounting {
    total_messages: u64,
    total_bytes: u64,
    by_direction: BTreeMap<Direction, u64>,
    by_kind: BTreeMap<&'static str, u64>,
}

impl NetAccounting {
    /// Empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one message of `size_bytes` labelled `kind` from `from` to
    /// `to`.
    pub fn record(&mut self, from: SiteId, to: SiteId, kind: &'static str, size_bytes: u64) {
        self.total_messages += 1;
        self.total_bytes += size_bytes;
        *self
            .by_direction
            .entry(Direction::of(from, to))
            .or_insert(0) += 1;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.total_messages
    }

    /// Total bytes sent.
    pub fn bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Messages sent in a given direction class.
    pub fn in_direction(&self, d: Direction) -> u64 {
        self.by_direction.get(&d).copied().unwrap_or(0)
    }

    /// Messages with a given kind label.
    pub fn of_kind(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// All kind labels seen, with counts, in label order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.by_kind.iter().map(|(&k, &v)| (k, v))
    }

    /// Fraction of messages that travelled client → client.
    pub fn client_to_client_share(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.in_direction(Direction::ClientToClient) as f64 / self.total_messages as f64
        }
    }

    /// Merge another accounting into this one.
    pub fn merge(&mut self, other: &NetAccounting) {
        self.total_messages += other.total_messages;
        self.total_bytes += other.total_bytes;
        for (&d, &c) in &other.by_direction {
            *self.by_direction.entry(d).or_insert(0) += c;
        }
        for (&k, &c) in &other.by_kind {
            *self.by_kind.entry(k).or_insert(0) += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g2pl_simcore::ClientId;

    fn c(i: u32) -> SiteId {
        SiteId::Client(ClientId::new(i))
    }

    #[test]
    fn direction_classification() {
        assert_eq!(
            Direction::of(SiteId::SERVER0, c(0)),
            Direction::ServerToClient
        );
        assert_eq!(
            Direction::of(c(0), SiteId::SERVER0),
            Direction::ClientToServer
        );
        assert_eq!(Direction::of(c(0), c(1)), Direction::ClientToClient);
    }

    #[test]
    fn counters_accumulate() {
        let mut a = NetAccounting::new();
        a.record(c(0), SiteId::SERVER0, "lock_request", 64);
        a.record(SiteId::SERVER0, c(0), "grant", 1024);
        a.record(c(0), c(1), "forward", 1024);
        assert_eq!(a.messages(), 3);
        assert_eq!(a.bytes(), 2112);
        assert_eq!(a.in_direction(Direction::ClientToClient), 1);
        assert_eq!(a.of_kind("grant"), 1);
        assert_eq!(a.of_kind("nonexistent"), 0);
        assert!((a.client_to_client_share() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_share_is_zero() {
        assert_eq!(NetAccounting::new().client_to_client_share(), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = NetAccounting::new();
        a.record(c(0), SiteId::SERVER0, "req", 10);
        let mut b = NetAccounting::new();
        b.record(c(1), c(2), "fwd", 20);
        b.record(c(0), SiteId::SERVER0, "req", 10);
        a.merge(&b);
        assert_eq!(a.messages(), 3);
        assert_eq!(a.bytes(), 40);
        assert_eq!(a.of_kind("req"), 2);
        assert_eq!(a.of_kind("fwd"), 1);
    }

    #[test]
    fn kinds_iterates_in_label_order() {
        let mut a = NetAccounting::new();
        a.record(c(0), SiteId::SERVER0, "zeta", 1);
        a.record(c(0), SiteId::SERVER0, "alpha", 1);
        let labels: Vec<&str> = a.kinds().map(|(k, _)| k).collect();
        assert_eq!(labels, vec!["alpha", "zeta"]);
    }
}
