//! Per-message delay models.

use g2pl_simcore::{RngStream, SimTime, SiteId};

/// A model mapping one message send to a delivery delay.
///
/// The paper's simulation assumes "the network latency between any two
/// sites (server-client, client-client) and in either direction is the
/// same" — [`ConstantLatency`]. The other implementations support the
/// sensitivity ablations in `g2pl-bench`.
pub trait LatencyModel: Send + Sync {
    /// Delay experienced by a message of `size_bytes` from `from` to `to`.
    ///
    /// `rng` feeds models with stochastic components; deterministic models
    /// ignore it.
    fn delay(&self, from: SiteId, to: SiteId, size_bytes: u64, rng: &mut RngStream) -> SimTime;

    /// The nominal one-way latency, used for reporting and round-count
    /// estimates. Defaults to the delay of an empty server→server message
    /// pattern is meaningless, so implementors override where sensible.
    fn nominal(&self) -> SimTime;
}

/// The paper's model: every message takes exactly `latency` units,
/// independent of size, direction, and endpoints.
#[derive(Clone, Copy, Debug)]
pub struct ConstantLatency {
    latency: SimTime,
}

impl ConstantLatency {
    /// Constant one-way delay of `latency` units.
    pub fn new(latency: SimTime) -> Self {
        ConstantLatency { latency }
    }
}

impl LatencyModel for ConstantLatency {
    fn delay(&self, _: SiteId, _: SiteId, _: u64, _: &mut RngStream) -> SimTime {
        self.latency
    }

    fn nominal(&self) -> SimTime {
        self.latency
    }
}

/// Constant base latency plus uniform jitter in `[0, jitter]`, modelling
/// switching-delay variance.
#[derive(Clone, Copy, Debug)]
pub struct JitteredLatency {
    base: SimTime,
    jitter: u64,
}

impl JitteredLatency {
    /// Base one-way delay plus uniform extra delay up to `jitter` units.
    pub fn new(base: SimTime, jitter: u64) -> Self {
        JitteredLatency { base, jitter }
    }
}

impl LatencyModel for JitteredLatency {
    fn delay(&self, _: SiteId, _: SiteId, _: u64, rng: &mut RngStream) -> SimTime {
        self.base
            .after(SimTime::new(rng.uniform_incl(0, self.jitter)))
    }

    fn nominal(&self) -> SimTime {
        // Expected value, rounded down.
        self.base.after(SimTime::new(self.jitter / 2))
    }
}

/// Per-pair latency matrix for asymmetric topologies (e.g. clients spread
/// over sites at different distances from the server).
///
/// Site indexing: server shard `s` is index `s`, client `i` is index
/// `i + num_shards`. The single-server constructor keeps the historical
/// layout (server at 0, client `i` at `i + 1`).
#[derive(Clone, Debug)]
pub struct MatrixLatency {
    n: usize,
    shards: usize,
    matrix: Vec<SimTime>,
}

impl MatrixLatency {
    /// A symmetric all-equal matrix over `num_clients` clients (plus the
    /// single server), which can then be tuned per pair with [`Self::set`].
    pub fn uniform(num_clients: usize, latency: SimTime) -> Self {
        Self::uniform_sharded(1, num_clients, latency)
    }

    /// A symmetric all-equal matrix over `num_shards` server shards and
    /// `num_clients` clients.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn uniform_sharded(num_shards: usize, num_clients: usize, latency: SimTime) -> Self {
        assert!(num_shards > 0, "at least one server shard");
        let n = num_shards + num_clients;
        MatrixLatency {
            n,
            shards: num_shards,
            matrix: vec![latency; n * n],
        }
    }

    fn idx(&self, site: SiteId) -> usize {
        match site {
            SiteId::Server(s) => s.index(),
            SiteId::Client(c) => c.index() + self.shards,
        }
    }

    /// Set the one-way latency for `from → to` (directional).
    pub fn set(&mut self, from: SiteId, to: SiteId, latency: SimTime) {
        let (f, t) = (self.idx(from), self.idx(to));
        assert!(f < self.n && t < self.n, "site out of range");
        self.matrix[f * self.n + t] = latency;
    }

    /// Set both directions at once.
    pub fn set_symmetric(&mut self, a: SiteId, b: SiteId, latency: SimTime) {
        self.set(a, b, latency);
        self.set(b, a, latency);
    }
}

impl LatencyModel for MatrixLatency {
    fn delay(&self, from: SiteId, to: SiteId, _: u64, _: &mut RngStream) -> SimTime {
        let (f, t) = (self.idx(from), self.idx(to));
        assert!(f < self.n && t < self.n, "site out of range");
        self.matrix[f * self.n + t]
    }

    fn nominal(&self) -> SimTime {
        // Median entry as the representative latency.
        let mut v = self.matrix.clone();
        v.sort_unstable();
        v[v.len() / 2]
    }
}

/// Latency plus transmission time: `latency + ceil(size / bytes_per_unit)`.
///
/// §2 argues transmission time vanishes as data rates grow; this model
/// lets the benches *quantify* that claim by sweeping `bytes_per_unit`
/// from slow-network to gigabit values and watching the g-2PL advantage
/// (which trades larger messages for fewer rounds) appear.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthLatency {
    latency: SimTime,
    bytes_per_unit: u64,
}

impl BandwidthLatency {
    /// Propagation `latency` plus `size / bytes_per_unit` transmission.
    ///
    /// # Panics
    /// Panics if `bytes_per_unit == 0`.
    pub fn new(latency: SimTime, bytes_per_unit: u64) -> Self {
        assert!(bytes_per_unit > 0, "bandwidth must be positive");
        BandwidthLatency {
            latency,
            bytes_per_unit,
        }
    }
}

impl LatencyModel for BandwidthLatency {
    fn delay(&self, _: SiteId, _: SiteId, size_bytes: u64, _: &mut RngStream) -> SimTime {
        let tx = size_bytes.div_ceil(self.bytes_per_unit);
        self.latency.after(SimTime::new(tx))
    }

    fn nominal(&self) -> SimTime {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g2pl_simcore::ClientId;

    fn rng() -> RngStream {
        RngStream::new(1)
    }

    #[test]
    fn constant_ignores_everything() {
        let m = ConstantLatency::new(SimTime::new(250));
        let mut r = rng();
        assert_eq!(
            m.delay(SiteId::SERVER0, SiteId::Client(ClientId::new(0)), 0, &mut r),
            SimTime::new(250)
        );
        assert_eq!(
            m.delay(
                SiteId::Client(ClientId::new(3)),
                SiteId::Client(ClientId::new(7)),
                1_000_000,
                &mut r
            ),
            SimTime::new(250)
        );
        assert_eq!(m.nominal(), SimTime::new(250));
    }

    #[test]
    fn jitter_stays_in_band() {
        let m = JitteredLatency::new(SimTime::new(100), 20);
        let mut r = rng();
        for _ in 0..500 {
            let d = m
                .delay(SiteId::SERVER0, SiteId::Client(ClientId::new(0)), 0, &mut r)
                .units();
            assert!((100..=120).contains(&d), "delay {d} out of band");
        }
        assert_eq!(m.nominal(), SimTime::new(110));
    }

    #[test]
    fn matrix_is_directional() {
        let c0 = SiteId::Client(ClientId::new(0));
        let mut m = MatrixLatency::uniform(2, SimTime::new(10));
        m.set(SiteId::SERVER0, c0, SimTime::new(99));
        let mut r = rng();
        assert_eq!(m.delay(SiteId::SERVER0, c0, 0, &mut r), SimTime::new(99));
        assert_eq!(m.delay(c0, SiteId::SERVER0, 0, &mut r), SimTime::new(10));
    }

    #[test]
    fn matrix_symmetric_setter() {
        let c0 = SiteId::Client(ClientId::new(0));
        let c1 = SiteId::Client(ClientId::new(1));
        let mut m = MatrixLatency::uniform(2, SimTime::new(10));
        m.set_symmetric(c0, c1, SimTime::new(55));
        let mut r = rng();
        assert_eq!(m.delay(c0, c1, 0, &mut r), SimTime::new(55));
        assert_eq!(m.delay(c1, c0, 0, &mut r), SimTime::new(55));
    }

    #[test]
    fn bandwidth_adds_transmission_time() {
        let m = BandwidthLatency::new(SimTime::new(100), 1000);
        let mut r = rng();
        // Empty message: pure latency.
        assert_eq!(
            m.delay(SiteId::SERVER0, SiteId::SERVER0, 0, &mut r),
            SimTime::new(100)
        );
        // 2500 bytes at 1000 B/unit: ceil = 3 extra units.
        assert_eq!(
            m.delay(SiteId::SERVER0, SiteId::SERVER0, 2500, &mut r),
            SimTime::new(103)
        );
    }
}
