//! Lossy-link wrapper: a latency model composed with a fault plan.
//!
//! [`LossyLink`] is the delivery layer the engines' `Net` sits on. In its
//! reliable form it is a transparent pass-through to the wrapped
//! [`LatencyModel`] — same draws from the same stream, so a run with no
//! fault plan (or an inert one) is byte-identical to the pre-fault
//! simulator. With an active [`FaultPlan`] it consults a
//! [`FaultInjector`] per message and turns the verdict into zero
//! (dropped), one (delivered, possibly delayed), or two (duplicated)
//! delivery delays.

use crate::latency::LatencyModel;
use g2pl_faults::{FaultCounts, FaultInjector, FaultPlan, Verdict};
use g2pl_simcore::{RngStream, SimTime, SiteId};

/// A network link: a latency model, optionally composed with a fault
/// injector.
pub struct LossyLink {
    model: Box<dyn LatencyModel>,
    injector: Option<FaultInjector>,
}

impl LossyLink {
    /// A perfectly reliable link (the paper's model): every `transmit`
    /// yields exactly one delivery with the wrapped model's delay.
    pub fn reliable(model: Box<dyn LatencyModel>) -> Self {
        LossyLink {
            model,
            injector: None,
        }
    }

    /// A link executing the given fault plan. The injector draws from its
    /// own `"faults"` stream derived from `master_seed`, never from the
    /// latency stream.
    pub fn lossy(model: Box<dyn LatencyModel>, plan: FaultPlan, master_seed: u64) -> Self {
        LossyLink {
            model,
            injector: Some(FaultInjector::new(plan, master_seed)),
        }
    }

    /// Nominal one-way delay of the underlying model.
    pub fn nominal(&self) -> SimTime {
        self.model.nominal()
    }

    /// True if this link can inject faults.
    pub fn faults_active(&self) -> bool {
        self.injector.is_some()
    }

    /// The active fault plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.injector.as_ref().map(FaultInjector::plan)
    }

    /// Counters of faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.injector
            .as_ref()
            .map_or_else(FaultCounts::default, |i| i.counts)
    }

    /// The crash/restart schedule of the plan (empty when reliable).
    pub fn crash_schedule(&self) -> Vec<(g2pl_simcore::ClientId, SimTime, bool)> {
        self.injector
            .as_ref()
            .map_or_else(Vec::new, FaultInjector::crash_schedule)
    }

    /// The per-shard server crash/restart schedule of the plan as
    /// `(shard, at, up)` triples (empty when reliable). Consumes the
    /// injector's dedicated per-shard `"server-faults"` jitter draws, so
    /// it must be called exactly once per run, at engine start, like
    /// [`LossyLink::crash_schedule`].
    pub fn server_crash_schedule(&mut self) -> Vec<(u32, SimTime, bool)> {
        self.injector
            .as_mut()
            .map_or_else(Vec::new, FaultInjector::server_crash_schedule)
    }

    /// Decide the delivery times for one message from `from` to `to` sent
    /// at `now`. Each delivery's delay is pushed into `out` (cleared
    /// first); an empty `out` means the message was dropped. Returns
    /// `true` if a fault was injected (for trace recording).
    pub fn transmit(
        &mut self,
        from: SiteId,
        to: SiteId,
        size_bytes: u64,
        now: SimTime,
        rng: &mut RngStream,
        out: &mut Vec<SimTime>,
    ) -> bool {
        out.clear();
        let Some(inj) = &mut self.injector else {
            out.push(self.model.delay(from, to, size_bytes, rng));
            return false;
        };
        match inj.judge(from, to, now) {
            Verdict::Deliver => {
                out.push(self.model.delay(from, to, size_bytes, rng));
                false
            }
            Verdict::Drop => true,
            Verdict::Duplicate => {
                out.push(self.model.delay(from, to, size_bytes, rng));
                out.push(self.model.delay(from, to, size_bytes, rng));
                true
            }
            Verdict::Delay(extra) => {
                out.push(self.model.delay(from, to, size_bytes, rng) + extra);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;
    use g2pl_simcore::ClientId;

    fn site(c: u32) -> SiteId {
        SiteId::Client(ClientId::new(c))
    }

    #[test]
    fn reliable_link_is_passthrough() {
        let mut link = LossyLink::reliable(Box::new(ConstantLatency::new(SimTime::new(9))));
        let mut rng = RngStream::new(1);
        let mut out = Vec::new();
        let injected = link.transmit(
            site(0),
            SiteId::SERVER0,
            64,
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert!(!injected);
        assert_eq!(out, vec![SimTime::new(9)]);
        assert!(!link.faults_active());
        assert_eq!(link.counts(), FaultCounts::default());
    }

    #[test]
    fn certain_loss_drops_everything() {
        let mut link = LossyLink::lossy(
            Box::new(ConstantLatency::new(SimTime::new(9))),
            FaultPlan::message_loss(1.0),
            7,
        );
        let mut rng = RngStream::new(1);
        let mut out = Vec::new();
        for _ in 0..10 {
            let injected = link.transmit(
                site(0),
                SiteId::SERVER0,
                64,
                SimTime::ZERO,
                &mut rng,
                &mut out,
            );
            assert!(injected);
            assert!(out.is_empty());
        }
        assert_eq!(link.counts().dropped, 10);
    }

    #[test]
    fn duplicate_and_delay_yield_expected_deliveries() {
        let dup_plan = FaultPlan {
            dup_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut link =
            LossyLink::lossy(Box::new(ConstantLatency::new(SimTime::new(3))), dup_plan, 7);
        let mut rng = RngStream::new(1);
        let mut out = Vec::new();
        link.transmit(
            site(0),
            SiteId::SERVER0,
            64,
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(out, vec![SimTime::new(3), SimTime::new(3)]);

        let delay_plan = FaultPlan {
            delay_prob: 1.0,
            delay_extra: 5,
            ..FaultPlan::default()
        };
        let mut link = LossyLink::lossy(
            Box::new(ConstantLatency::new(SimTime::new(3))),
            delay_plan,
            7,
        );
        link.transmit(
            site(0),
            SiteId::SERVER0,
            64,
            SimTime::ZERO,
            &mut rng,
            &mut out,
        );
        assert_eq!(out, vec![SimTime::new(8)]);
        assert_eq!(link.counts().delayed, 1);
    }
}
