//! # g2pl-netmodel
//!
//! The network substrate of the g-2PL reproduction.
//!
//! §2 of the paper decomposes end-to-end delay into *transmission time*
//! (bytes / bandwidth) and *network latency* (propagation plus switching
//! delay). Its central observation is that in a gigabit WAN the latency
//! component dominates and is distance-bound, so protocols must minimise
//! *rounds* of sequential message passing rather than bytes.
//!
//! This crate models exactly that decomposition:
//!
//! * [`latency::LatencyModel`] — pluggable per-message delay models:
//!   the paper's uniform constant latency ([`latency::ConstantLatency`]),
//!   a jittered variant, a per-pair matrix, and a bandwidth-aware model
//!   that adds `size / bandwidth` transmission time for ablations;
//! * [`env::NetworkEnv`] — the six Table 2 environments (ss-LAN … l-WAN);
//! * [`accounting::NetAccounting`] — message / byte / per-kind counters so
//!   experiments can report the message-complexity claims of §3.2
//!   (3m rounds for s-2PL vs 2m+1 for g-2PL).

pub mod accounting;
pub mod cfg;
pub mod env;
pub mod latency;
pub mod lossy;
pub mod topology;

pub use accounting::NetAccounting;
pub use cfg::LatencyCfg;
pub use env::NetworkEnv;
pub use latency::{
    BandwidthLatency, ConstantLatency, JitteredLatency, LatencyModel, MatrixLatency,
};
pub use lossy::LossyLink;
pub use topology::Topology;
