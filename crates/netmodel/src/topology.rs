//! Site-to-site topology over the serializable latency configuration.
//!
//! The paper assumes a *full mesh*: "the network latency between any two
//! sites (server-client, client-client) and in either direction is the
//! same". With directory sharding the link structure becomes richer —
//! cross-shard commit slices travel client→server to several shards, and
//! g-2PL data migration rides client→client links — so experiments want
//! to price those link classes differently without giving up the
//! serializable, seed-stable [`LatencyCfg`] description.
//!
//! [`Topology`] is that surface: a base [`LatencyCfg`] for every link
//! (the full-mesh default, byte-identical to using the base config
//! directly) plus optional per-class overrides, consulted through the
//! per-link [`Topology::latency`] hook.

use crate::cfg::LatencyCfg;
use crate::latency::LatencyModel;
use g2pl_simcore::{RngStream, SimTime, SiteId};
use serde::{Deserialize, Serialize};

/// A full-mesh network with optional per-link-class latency overrides.
///
/// The default ([`Topology::full_mesh`]) prices every link with `base`,
/// reproducing the paper's uniform-latency assumption exactly: building
/// it yields the very same model object the bare [`LatencyCfg`] would,
/// so figures that predate the topology surface are unaffected.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Latency of every link without a more specific override.
    pub base: LatencyCfg,
    /// Override for client↔client links (g-2PL data migration hops).
    pub client_client: Option<LatencyCfg>,
    /// Override for server↔server links (cross-shard coordination).
    pub server_server: Option<LatencyCfg>,
}

impl Topology {
    /// The paper's topology: every link takes the base latency.
    pub fn full_mesh(base: LatencyCfg) -> Self {
        Topology {
            base,
            client_client: None,
            server_server: None,
        }
    }

    /// Price client↔client forwarding links differently (both directions).
    #[must_use]
    pub fn with_client_client(mut self, cfg: LatencyCfg) -> Self {
        self.client_client = Some(cfg);
        self
    }

    /// Price server↔server cross-shard links differently (both directions).
    #[must_use]
    pub fn with_server_server(mut self, cfg: LatencyCfg) -> Self {
        self.server_server = Some(cfg);
        self
    }

    /// The effective latency configuration of the `from → to` link.
    ///
    /// This is the per-link hook: callers that need a one-way figure for
    /// a specific pair (timeout derivation, lookahead bounds) resolve it
    /// here instead of assuming the base is uniform.
    pub fn latency(&self, from: SiteId, to: SiteId) -> LatencyCfg {
        match (from.is_server(), to.is_server()) {
            (false, false) => self.client_client.unwrap_or(self.base),
            (true, true) => self.server_server.unwrap_or(self.base),
            _ => self.base,
        }
    }

    /// Smallest nominal one-way latency over all link classes.
    ///
    /// Conservative PDES uses this as the lookahead bound: no message can
    /// arrive sooner than the cheapest link delivers it.
    pub fn min_nominal(&self) -> u64 {
        [Some(self.base), self.client_client, self.server_server]
            .into_iter()
            .flatten()
            .map(LatencyCfg::nominal)
            .min()
            // lint:allow(L3): the array always contains Some(self.base)
            .expect("base is always present")
    }

    /// True when every link uses the base configuration.
    pub fn is_uniform(&self) -> bool {
        self.client_client.is_none() && self.server_server.is_none()
    }

    /// Build the runtime latency model.
    ///
    /// A uniform topology builds the plain base model — the same object
    /// `self.base.build()` returns — so the full-mesh default cannot
    /// perturb any existing figure.
    pub fn build(&self) -> Box<dyn LatencyModel> {
        if self.is_uniform() {
            return self.base.build();
        }
        Box::new(TopologyLatency {
            base: self.base.build(),
            client_client: self.client_client.map(LatencyCfg::build),
            server_server: self.server_server.map(LatencyCfg::build),
        })
    }
}

/// Runtime model dispatching on link class before delegating to the
/// per-class model.
struct TopologyLatency {
    base: Box<dyn LatencyModel>,
    client_client: Option<Box<dyn LatencyModel>>,
    server_server: Option<Box<dyn LatencyModel>>,
}

impl LatencyModel for TopologyLatency {
    fn delay(&self, from: SiteId, to: SiteId, size_bytes: u64, rng: &mut RngStream) -> SimTime {
        let model = match (from.is_server(), to.is_server()) {
            (false, false) => self.client_client.as_deref().unwrap_or(&*self.base),
            (true, true) => self.server_server.as_deref().unwrap_or(&*self.base),
            _ => &*self.base,
        };
        model.delay(from, to, size_bytes, rng)
    }

    fn nominal(&self) -> SimTime {
        self.base.nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g2pl_simcore::{ClientId, ShardId};

    fn client(i: u32) -> SiteId {
        SiteId::Client(ClientId::new(i))
    }

    fn server(s: u32) -> SiteId {
        SiteId::Server(ShardId::new(s))
    }

    #[test]
    fn full_mesh_is_uniform_and_prices_all_links_equally() {
        let t = Topology::full_mesh(LatencyCfg::Constant(250));
        assert!(t.is_uniform());
        assert_eq!(t.min_nominal(), 250);
        for (from, to) in [
            (client(0), server(0)),
            (server(1), client(3)),
            (client(0), client(1)),
            (server(0), server(1)),
        ] {
            assert_eq!(t.latency(from, to), LatencyCfg::Constant(250));
        }
        let mut rng = RngStream::new(1);
        let m = t.build();
        assert_eq!(
            m.delay(client(0), server(0), 0, &mut rng),
            SimTime::new(250)
        );
    }

    #[test]
    fn per_link_overrides_resolve_by_class() {
        let t = Topology::full_mesh(LatencyCfg::Constant(250))
            .with_client_client(LatencyCfg::Constant(40))
            .with_server_server(LatencyCfg::Constant(900));
        assert!(!t.is_uniform());
        assert_eq!(t.latency(client(0), client(1)), LatencyCfg::Constant(40));
        assert_eq!(t.latency(server(0), server(2)), LatencyCfg::Constant(900));
        assert_eq!(t.latency(client(0), server(2)), LatencyCfg::Constant(250));
        assert_eq!(t.latency(server(2), client(0)), LatencyCfg::Constant(250));
        assert_eq!(t.min_nominal(), 40);

        let mut rng = RngStream::new(1);
        let m = t.build();
        assert_eq!(m.delay(client(0), client(1), 0, &mut rng), SimTime::new(40));
        assert_eq!(
            m.delay(server(0), server(1), 0, &mut rng),
            SimTime::new(900)
        );
        assert_eq!(
            m.delay(server(0), client(1), 0, &mut rng),
            SimTime::new(250)
        );
        assert_eq!(m.nominal(), SimTime::new(250));
    }

    #[test]
    fn uniform_topology_builds_the_base_model_exactly() {
        // The full-mesh default must delegate to the bare LatencyCfg
        // path, so pre-topology figures cannot shift by construction.
        let base = LatencyCfg::Jittered {
            base: 10,
            jitter: 6,
        };
        let t = Topology::full_mesh(base);
        let mut a = RngStream::new(42);
        let mut b = RngStream::new(42);
        let (tm, bm) = (t.build(), base.build());
        for i in 0..200 {
            let from = client(i % 5);
            let to = if i % 3 == 0 { server(0) } else { client(i % 7) };
            assert_eq!(
                tm.delay(from, to, u64::from(i), &mut a),
                bm.delay(from, to, u64::from(i), &mut b)
            );
        }
    }
}
