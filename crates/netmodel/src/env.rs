//! The networking environments of Table 2.
//!
//! | Network type | Latency (units) |
//! |---|---|
//! | Single-segment LAN (ss-LAN) | 1 |
//! | Multi-segment LAN (ms-LAN)  | 50 |
//! | Campus Area Network (CAN)   | 100 |
//! | Metropolitan Area Network (MAN) | 250 |
//! | Small WAN (s-WAN)           | 500 |
//! | Large WAN (l-WAN)           | 750 |
//!
//! With the paper's example conversion of 1 unit = 0.5 ms these span
//! 0.5 ms (one Ethernet segment) to 375 ms (satellite-grade WAN).

use g2pl_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the six simulated networking environments of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkEnv {
    /// Single-segment local area network: latency 1 unit.
    SsLan,
    /// Multi-segment local area network: latency 50 units.
    MsLan,
    /// Campus area network: latency 100 units.
    Can,
    /// Metropolitan area network: latency 250 units.
    Man,
    /// Small wide area network: latency 500 units.
    SWan,
    /// Large wide area network: latency 750 units.
    LWan,
}

impl NetworkEnv {
    /// All environments, ordered by latency (the sweep order of Figs 2–4).
    pub const ALL: [NetworkEnv; 6] = [
        NetworkEnv::SsLan,
        NetworkEnv::MsLan,
        NetworkEnv::Can,
        NetworkEnv::Man,
        NetworkEnv::SWan,
        NetworkEnv::LWan,
    ];

    /// One-way network latency of this environment (Table 2).
    pub fn latency(self) -> SimTime {
        let units = match self {
            NetworkEnv::SsLan => 1,
            NetworkEnv::MsLan => 50,
            NetworkEnv::Can => 100,
            NetworkEnv::Man => 250,
            NetworkEnv::SWan => 500,
            NetworkEnv::LWan => 750,
        };
        SimTime::new(units)
    }

    /// The paper's abbreviation for this environment.
    pub fn abbrev(self) -> &'static str {
        match self {
            NetworkEnv::SsLan => "ss-LAN",
            NetworkEnv::MsLan => "ms-LAN",
            NetworkEnv::Can => "CAN",
            NetworkEnv::Man => "MAN",
            NetworkEnv::SWan => "s-WAN",
            NetworkEnv::LWan => "l-WAN",
        }
    }

    /// Long descriptive name, as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            NetworkEnv::SsLan => "Single Segment Local Area Network",
            NetworkEnv::MsLan => "Multi-Segment Local Area Network",
            NetworkEnv::Can => "Campus Area Network",
            NetworkEnv::Man => "Metropolitan Area Network",
            NetworkEnv::SWan => "Small Wide Area Network",
            NetworkEnv::LWan => "Large Wide Area Network",
        }
    }

    /// The environment whose Table 2 latency is closest to `latency`
    /// (ties resolve to the smaller environment).
    pub fn nearest(latency: SimTime) -> NetworkEnv {
        Self::ALL
            .into_iter()
            .min_by_key(|e| {
                let l = e.latency().units();
                let d = l.abs_diff(latency.units());
                (d, l)
            })
            // lint:allow(L3): ALL is a non-empty const array
            .expect("ALL is non-empty")
    }
}

impl fmt::Display for NetworkEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_latencies() {
        let expect = [1, 50, 100, 250, 500, 750];
        for (env, l) in NetworkEnv::ALL.into_iter().zip(expect) {
            assert_eq!(env.latency(), SimTime::new(l), "{env}");
        }
    }

    #[test]
    fn all_is_sorted_by_latency() {
        let ls: Vec<u64> = NetworkEnv::ALL
            .iter()
            .map(|e| e.latency().units())
            .collect();
        let mut sorted = ls.clone();
        sorted.sort_unstable();
        assert_eq!(ls, sorted);
    }

    #[test]
    fn nearest_roundtrips_exact_values() {
        for env in NetworkEnv::ALL {
            assert_eq!(NetworkEnv::nearest(env.latency()), env);
        }
    }

    #[test]
    fn nearest_picks_closest() {
        assert_eq!(NetworkEnv::nearest(SimTime::new(60)), NetworkEnv::MsLan);
        assert_eq!(NetworkEnv::nearest(SimTime::new(90)), NetworkEnv::Can);
        assert_eq!(NetworkEnv::nearest(SimTime::new(10_000)), NetworkEnv::LWan);
        assert_eq!(NetworkEnv::nearest(SimTime::ZERO), NetworkEnv::SsLan);
    }

    #[test]
    fn display_uses_abbreviation() {
        assert_eq!(format!("{}", NetworkEnv::SWan), "s-WAN");
        assert_eq!(NetworkEnv::Can.name(), "Campus Area Network");
    }
}
