//! Ablation benches for the design choices DESIGN.md calls out: each
//! g-2PL optimization toggled independently on the Fig-3 hot spot, plus
//! the c-2PL extension. Criterion reports the simulated cell's wall time;
//! the repro binary's `headline` artifact reports the modelled response
//! times.

use criterion::{criterion_group, criterion_main, Criterion};
use g2pl_bench::bench_cell;
use g2pl_core::prelude::*;
use g2pl_fwdlist::OrderingRule;
use std::hint::black_box;

fn variants() -> Vec<(&'static str, ProtocolKind)> {
    let with = |f: fn(&mut G2plOpts)| {
        let mut o = G2plOpts::default();
        f(&mut o);
        ProtocolKind::G2pl(o)
    };
    vec![
        ("g2pl_paper", ProtocolKind::g2pl_paper()),
        ("g2pl_no_mr1w", with(|o| o.mr1w = false)),
        (
            "g2pl_no_avoidance",
            with(|o| o.ordering = OrderingRule::fifo()),
        ),
        ("g2pl_expand_reads", with(|o| o.expand_reads = true)),
        ("g2pl_flcap5", with(|o| o.fl_cap = Some(5))),
        (
            "g2pl_coalesce_readers",
            with(|o| o.ordering.coalesce_readers = true),
        ),
        ("s2pl", ProtocolKind::S2pl),
        ("c2pl", ProtocolKind::C2pl),
    ]
}

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for (name, protocol) in variants() {
        let cfg = bench_cell(protocol, 500, 400);
        group.bench_function(name, |b| {
            b.iter(|| {
                let m = run(black_box(&cfg)).expect("valid config");
                black_box((m.mean_response(), m.abort_pct()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
