//! Scaling benches: simulator wall-time as the modelled system grows.
//!
//! These measure the *simulator's* cost (events processed per second),
//! complementing the modelled metrics the `repro` binary reports. The
//! deadlock machinery is the interesting axis: waits-for search cost
//! grows with the client population, and these benches catch regressions
//! in the lazy-search implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use g2pl_core::prelude::*;
use std::hint::black_box;

fn client_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_scaling");
    group.sample_size(10);
    for clients in [10u32, 50, 150] {
        for protocol in [ProtocolKind::S2pl, ProtocolKind::g2pl_paper()] {
            let mut cfg = EngineConfig::table1(protocol, clients, 500, 0.25);
            cfg.warmup_txns = 50;
            cfg.measured_txns = 400;
            let label = format!("{}/{clients}", cfg.protocol.label());
            group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
                b.iter(|| black_box(run(black_box(cfg)).expect("valid config")).committed_total);
            });
        }
    }
    group.finish();
}

fn item_pool_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("item_pool_scaling");
    group.sample_size(10);
    for items in [5u32, 25, 100] {
        let mut cfg = EngineConfig::table1(ProtocolKind::g2pl_paper(), 50, 500, 0.25);
        cfg.items = g2pl_protocols::ItemSpace::single(items);
        cfg.warmup_txns = 50;
        cfg.measured_txns = 400;
        group.bench_with_input(BenchmarkId::from_parameter(items), &cfg, |b, cfg| {
            b.iter(|| black_box(run(black_box(cfg)).expect("valid config")).committed_total);
        });
    }
    group.finish();
}

criterion_group!(benches, client_scaling, item_pool_scaling);
criterion_main!(benches);
