//! Microbenchmarks of the substrates: event calendar, lock table,
//! wait-for-graph cycle detection, and forward-list ordering.

use criterion::{criterion_group, criterion_main, Criterion};
use g2pl_fwdlist::window::PendingReq;
use g2pl_fwdlist::{FlEntry, OrderingRule, PrecedenceDag};
use g2pl_lockmgr::{LockMode, LockTable, WaitForGraph};
use g2pl_simcore::{Calendar, ClientId, ItemId, SimTime, TxnId};
use std::hint::black_box;

fn calendar(c: &mut Criterion) {
    c.bench_function("calendar/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut cal: Calendar<u64> = Calendar::new();
            for i in 0..10_000u64 {
                cal.schedule(SimTime::new((i * 37) % 1000 + cal.now().units()), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = cal.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
}

fn lock_table(c: &mut Criterion) {
    c.bench_function("lockmgr/acquire_release_1k_txns", |b| {
        b.iter(|| {
            let mut lt = LockTable::new();
            for t in 0..1_000u32 {
                let txn = TxnId::new(t);
                for i in 0..5u32 {
                    let mode = if (t + i) % 3 == 0 {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    lt.acquire(txn, ItemId::new((t + i) % 25), mode);
                }
                if t >= 10 {
                    black_box(lt.release_all(TxnId::new(t - 10)));
                }
            }
            black_box(lt.is_quiescent())
        });
    });
}

fn wfg_cycles(c: &mut Criterion) {
    c.bench_function("wfg/find_cycle_200_nodes", |b| {
        let mut g = WaitForGraph::new();
        for i in 0..200u32 {
            g.add_edge(TxnId::new(i), TxnId::new((i + 1) % 200));
            g.add_edge(TxnId::new(i), TxnId::new((i * 7 + 3) % 200));
        }
        b.iter(|| black_box(g.find_cycle_from(TxnId::new(0))));
    });
}

fn ordering(c: &mut Criterion) {
    c.bench_function("fwdlist/order_window_50", |b| {
        b.iter(|| {
            let mut dag = PrecedenceDag::new();
            let pending: Vec<PendingReq> = (0..50u32)
                .map(|i| PendingReq {
                    entry: FlEntry::new(
                        TxnId::new(i),
                        ClientId::new(i),
                        if i % 3 == 0 {
                            LockMode::Exclusive
                        } else {
                            LockMode::Shared
                        },
                    ),
                    arrival: u64::from(i),
                    restarts: 0,
                })
                .collect();
            black_box(OrderingRule::default().order(pending, &mut dag))
        });
    });
}

criterion_group!(benches, calendar, lock_table, wfg_cycles, ordering);
criterion_main!(benches);
