//! # g2pl-bench
//!
//! Benchmark support for the g-2PL reproduction: shared configuration
//! constructors used by the Criterion benches and the `repro` binary.
//!
//! * `cargo run --release --bin repro -- all` regenerates every table and
//!   figure of the paper (see `g2pl_core::experiments` for the mapping).
//! * `cargo bench` runs Criterion micro- and cell-benchmarks: one
//!   representative cell per figure (`benches/figures.rs`), substrate
//!   microbenches (`benches/substrates.rs`), and the g-2PL optimization
//!   ablations (`benches/ablations.rs`).

pub mod chaos;
pub mod harness;

use g2pl_core::prelude::*;

/// A small-but-meaningful configuration for benchmarking one simulation
/// cell: the Fig-3 hot spot (50 clients, pr = 0.6) at the given latency,
/// scaled down to `measured` transactions.
pub fn bench_cell(protocol: ProtocolKind, latency: u64, measured: u64) -> EngineConfig {
    let mut cfg = EngineConfig::table1(protocol, 50, latency, 0.6);
    cfg.warmup_txns = 100;
    cfg.measured_txns = measured;
    cfg
}

fn cell(protocol: ProtocolKind, clients: u32, latency: u64, pr: f64) -> EngineConfig {
    let mut c = EngineConfig::table1(protocol, clients, latency, pr);
    c.warmup_txns = 100;
    c.measured_txns = 500;
    c
}

/// The representative cell of each figure: `(figure id, config)`.
///
/// Running each cell once per Criterion sample keeps `cargo bench`
/// tractable while still exercising exactly the code paths the full
/// figure sweeps use; the full sweeps live in the `repro` binary.
pub fn figure_cells() -> Vec<(&'static str, EngineConfig)> {
    let g = ProtocolKind::g2pl_paper;
    let capped = || {
        ProtocolKind::G2pl(G2plOpts {
            fl_cap: Some(3),
            ..Default::default()
        })
    };
    vec![
        ("fig2_pr0.0_l500", cell(g(), 50, 500, 0.0)),
        ("fig3_pr0.6_l500", cell(g(), 50, 500, 0.6)),
        ("fig4_pr1.0_l500", cell(g(), 50, 500, 1.0)),
        ("fig5_sslan_pr0.5", cell(g(), 50, 1, 0.5)),
        ("fig6_man_pr0.5", cell(g(), 50, 250, 0.5)),
        ("fig7_lwan_pr0.5", cell(g(), 50, 750, 0.5)),
        ("fig8_aborts_pr0.6", cell(g(), 50, 250, 0.6)),
        ("fig9_aborts_pr0.8", cell(g(), 50, 250, 0.8)),
        ("fig10_readonly_l1", cell(g(), 50, 1, 1.0)),
        ("fig11_flcap3", cell(capped(), 50, 1, 1.0)),
        ("fig12_resp_pr0.25_c100", cell(g(), 100, 500, 0.25)),
        ("fig13_aborts_pr0.25_c100", cell(g(), 100, 500, 0.25)),
        ("fig14_resp_pr0.75_c100", cell(g(), 100, 500, 0.75)),
        ("fig15_aborts_pr0.75_c100", cell(g(), 100, 500, 0.75)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_cell_is_valid() {
        assert!(bench_cell(ProtocolKind::S2pl, 500, 100).validate().is_ok());
    }

    #[test]
    fn every_figure_has_a_cell() {
        let cells = figure_cells();
        assert!(cells.len() >= 14, "one representative cell per figure");
        for (id, cfg) in cells {
            assert!(cfg.validate().is_ok(), "{id} invalid");
        }
    }
}
