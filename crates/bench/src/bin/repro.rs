//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--scale smoke|default|full] [--out DIR] [--trace-out DIR]
//!       [--no-verify] [--bench-out FILE] [--baseline FILE] <artifact>...
//!
//! artifacts: table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!            fig10 fig11 fig12 fig13 fig14 fig15 headline all bench
//!            fig_faults fig_faults_aborts fig_server_faults fig_tail
//!            fig_scale scale-bench list
//! ```
//!
//! Figures are dispatched from the declarative registry
//! (`g2pl_core::experiments::FIGURES`); `repro list` prints it. `all`
//! regenerates exactly the paper's artifacts; the fault figures
//! (`fig_faults`, `fig_faults_aborts`) sweep message-loss probability
//! with the fault-injection subsystem on and are requested by name.
//!
//! Markdown goes to stdout; with `--out DIR`, each figure's raw data is
//! also written as `DIR/<id>.csv` — and, for figures that carry pooled
//! tail-quantile sketches (response-time metrics), a side file
//! `DIR/<id>_tail.csv` with `p50,p90,p99,p999,max,count` columns per
//! sweep point. Existing `<id>.csv` files are unchanged byte-for-byte.
//! `--ascii` appends a terminal chart under each table. With
//! `--trace-out DIR`, replication 0 of every data point dumps its span
//! events as `DIR/*.jsonl` for the `trace-explain` analyzer.
//!
//! Every data point self-verifies by default: replication 0 of each
//! configuration is re-checked against the protocol trace properties
//! P1–P7 and conflict-serializability, and the run aborts with
//! diagnostics on any violation. `--no-verify` (or `--verify=off`)
//! disables this for quick, unchecked regeneration.
//!
//! `repro bench` runs the measurement harness (engine hot-spot cells
//! plus timed figure sweeps), prints the report, and writes it as JSON
//! to `--bench-out FILE` (default `BENCH_pr7.json`). With
//! `--baseline FILE`, the run fails if aggregate engine throughput
//! regressed more than 30% below the baseline's — the CI gate.
//!
//! `repro scale-bench` runs one big sharded scale-out cell on the
//! conservative PDES (10k/100k/1M clients at smoke/default/full scale),
//! prints the datapoint, and writes it as JSON to `--bench-out FILE`
//! (default `results/scale_datapoint.json`). `--baseline FILE` adds the
//! committed engine-cell throughput for comparison.

use g2pl_bench::harness;
use g2pl_core::experiments::{self, Scale};
use g2pl_core::extensions;
use g2pl_core::figure::FigureData;
use std::io::Write as _;
use std::path::PathBuf;

const ALL: [&str; 18] = [
    "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "headline",
];

/// Extension studies beyond the paper's figures (see
/// `g2pl_core::extensions`). Included in `ext` but not in `all`, which
/// regenerates exactly the paper.
const EXTS: [&str; 10] = [
    "ext-protocols",
    "ext-skew",
    "ext-bandwidth",
    "ext-abort-effect",
    "ext-window-hold",
    "ext-ordering",
    "ext-victims",
    "ext-read-expansion",
    "ext-log-retention",
    "ext-server-cpu",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale smoke|default|full] [--out DIR] [--trace-out DIR] \
         [--no-verify] [--bench-out FILE] [--baseline FILE] <artifact>...\n\
         artifacts: {} all\n\
         fault studies: fig_faults fig_faults_aborts fig_server_faults\n\
         tail study: fig_tail (p99/p999 vs load, all three engines)\n\
         extensions: {} ext scorecard bench; `list` prints the figure registry\n\
         verification of every data point is on by default; --no-verify skips it\n\
         --trace-out DIR dumps replication 0 of each point as a JSONL span \
         trace for trace-explain\n\
         bench times engine cells + figure sweeps, writes --bench-out \
         (default BENCH_pr7.json), and fails on >30% throughput regression \
         vs --baseline FILE\n\
         scale-bench runs one big sharded PDES cell, writes --bench-out \
         (default results/scale_datapoint.json); --baseline FILE adds the \
         engine-cell throughput comparison",
        ALL.join(" "),
        EXTS.join(" ")
    );
    std::process::exit(2);
}

fn emit_figure(fig: &FigureData, out_dir: &Option<PathBuf>) {
    println!("{}", fig.to_markdown());
    if std::env::args().any(|a| a == "--ascii") {
        println!("```\n{}```\n", fig.to_ascii(64, 16));
    }
    if let Some(dir) = out_dir {
        // lint:allow(L3): CLI fails fast when the output directory cannot be created
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join(format!("{}.csv", fig.id));
        // lint:allow(L3): CLI fails fast when the CSV cannot be created
        let mut f = std::fs::File::create(&path).expect("create csv");
        // lint:allow(L3): CLI fails fast when the CSV cannot be written
        f.write_all(fig.to_csv().as_bytes()).expect("write csv");
        eprintln!("wrote {}", path.display());
        if let Some(tail_csv) = fig.to_tail_csv() {
            let tail_path = dir.join(format!("{}_tail.csv", fig.id));
            // lint:allow(L3): CLI fails fast when the tail CSV cannot be written
            std::fs::write(&tail_path, tail_csv).expect("write tail csv");
            eprintln!("wrote {}", tail_path.display());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut out_dir: Option<PathBuf> = None;
    let mut bench_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut artifacts: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("default") => Scale::Default,
                    Some("full") => Scale::Full,
                    _ => usage(),
                };
            }
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--trace-out" => {
                i += 1;
                g2pl_core::set_trace_out(Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| usage()),
                )));
            }
            "--ascii" => {} // handled in emit_figure
            "--no-verify" | "--verify=off" => g2pl_core::set_verify(false),
            "--verify" | "--verify=on" => g2pl_core::set_verify(true),
            "--bench-out" => {
                i += 1;
                bench_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--baseline" => {
                i += 1;
                baseline = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "all" => artifacts.extend(ALL.iter().map(std::string::ToString::to_string)),
            "ext" => artifacts.extend(EXTS.iter().map(std::string::ToString::to_string)),
            "scorecard" => artifacts.push("scorecard".to_string()),
            "bench" => artifacts.push("bench".to_string()),
            "scale-bench" => artifacts.push("scale-bench".to_string()),
            "list" => artifacts.push("list".to_string()),
            a if ALL.contains(&a) || EXTS.contains(&a) || experiments::figure(a).is_some() => {
                artifacts.push(a.to_string());
            }
            _ => usage(),
        }
        i += 1;
    }
    if artifacts.is_empty() {
        usage();
    }

    let mut failed = false;
    for a in &artifacts {
        // lint:allow(L2): host-side wall-clock self-timing of the bench run, reported to stderr
        let started = std::time::Instant::now();
        match a.as_str() {
            "table1" => println!("{}", experiments::table1()),
            "table2" => println!("{}", experiments::table2()),
            "fig1" => println!("{}", experiments::fig1()),
            "headline" => println!("{}", experiments::headline(scale)),
            "list" => print!("{}", experiments::list_figures()),
            "ext-protocols" => emit_figure(&extensions::ext_protocols(scale), &out_dir),
            "ext-skew" => emit_figure(&extensions::ext_skew(scale), &out_dir),
            "ext-bandwidth" => emit_figure(&extensions::ext_bandwidth(scale), &out_dir),
            "ext-abort-effect" => emit_figure(&extensions::ext_abort_effect(scale), &out_dir),
            "ext-window-hold" => emit_figure(&extensions::ext_window_hold(scale), &out_dir),
            "ext-ordering" => emit_figure(&extensions::ext_ordering(scale), &out_dir),
            "ext-victims" => emit_figure(&extensions::ext_victims(scale), &out_dir),
            "ext-read-expansion" => {
                emit_figure(&extensions::ext_read_expansion(scale), &out_dir);
            }
            "ext-log-retention" => {
                emit_figure(&extensions::ext_log_retention(scale), &out_dir);
            }
            "ext-server-cpu" => {
                emit_figure(&extensions::ext_server_cpu(scale), &out_dir);
            }
            "scorecard" => println!("{}", g2pl_core::scorecard::run_scorecard(scale)),
            fig if experiments::figure(fig).is_some() => {
                // lint:allow(L3): the arm guard just looked it up
                let spec = experiments::figure(fig).expect("guarded above");
                emit_figure(&spec.build(scale), &out_dir);
            }
            "bench" => {
                let report = harness::run_bench(scale);
                println!("{}", report.render());
                let path = bench_out
                    .clone()
                    .unwrap_or_else(|| PathBuf::from("BENCH_pr7.json"));
                // lint:allow(L3): CLI fails fast when the bench report cannot be written
                std::fs::write(&path, report.to_json()).expect("write bench report");
                eprintln!("wrote {}", path.display());
                if let Some(base) = &baseline {
                    // lint:allow(L3): CLI fails fast when the --baseline file is unreadable
                    let text = std::fs::read_to_string(base).expect("read bench baseline");
                    match harness::regression_vs(&text, &report, 0.30) {
                        Some(msg) => {
                            eprintln!("bench: {msg}");
                            failed = true;
                        }
                        None => {
                            eprintln!("bench: within 30% of baseline {}", base.display());
                        }
                    }
                }
            }
            "scale-bench" => {
                let (clients, shards) = harness::scale_bench_size(scale);
                let baseline_text = baseline
                    .as_deref()
                    .or(Some(std::path::Path::new("BENCH_pr7.json")))
                    .and_then(|p| std::fs::read_to_string(p).ok());
                let (md, json) =
                    harness::run_scale_bench(scale, clients, shards, baseline_text.as_deref());
                println!("{md}");
                let path = bench_out
                    .clone()
                    .unwrap_or_else(|| PathBuf::from("results/scale_datapoint.json"));
                if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                    // lint:allow(L3): CLI fails fast when the output directory cannot be created
                    std::fs::create_dir_all(dir).expect("create output directory");
                }
                // lint:allow(L3): CLI fails fast when the datapoint cannot be written
                std::fs::write(&path, json).expect("write scale datapoint");
                eprintln!("wrote {}", path.display());
            }
            _ => unreachable!("validated above"),
        }
        // Throughput trailer: what the engines did during this artifact
        // (the counters are drained per artifact, so each line stands
        // alone). `bench` drains them itself and reports via its table.
        let perf = g2pl_core::take_perf();
        let wall = started.elapsed().as_secs_f64();
        if perf.runs > 0 {
            eprintln!(
                "[{a}: {wall:.1}s — {} runs, {} events, {:.2}M events/s, peak calendar {}]",
                perf.runs,
                perf.events,
                perf.events_per_sec() / 1e6,
                perf.peak_calendar
            );
        } else {
            eprintln!("[{a}: {wall:.1}s]");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
