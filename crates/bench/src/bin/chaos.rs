//! `chaos` — randomized fault-plan search over the three engines.
//!
//! ```text
//! chaos [--trials N] [--seed S] [--engine g2pl|s2pl|c2pl] [--verbose]
//! chaos --repro --engine E --seed S [fault flags...]
//! ```
//!
//! Search mode samples `--trials` `(seed, FaultPlan)` pairs from the
//! master `--seed` (every trial is its own derived RNG stream, so the
//! whole search replays bit-for-bit), runs each through a short drained
//! simulation, and verifies engine invariants, trace properties P1–P10
//! and conflict-serializability. Failures are shrunk to a minimal
//! reproducer and printed as a ready-to-paste `--repro` command line;
//! the exit code is the number of failing trials (capped at process
//! exit-code range).
//!
//! Repro mode replays exactly one case from its flags — the shrinker's
//! output format — and exits non-zero if it still fails.

use g2pl_bench::chaos;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: chaos [--trials N] [--seed S] [--engine g2pl|s2pl|c2pl] [--verbose]\n\
         \u{20}      chaos --repro --engine E --seed S [--drop P] [--dup P]\n\
         \u{20}            [--delay P --delay-extra T] [--server-crash shard:at:down:jitter]...\n\
         \u{20}            [--client-crash client:at:down]... [--shard-partition a:b:from:until]...\n\
         \u{20}            [--shards N]\n\
         search mode samples (seed, FaultPlan) pairs, verifies each run\n\
         (P1-P10 + serializability + drain invariants), and shrinks any\n\
         failure to a minimal reproducer command line"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--repro") {
        let tail: Vec<String> = args.into_iter().filter(|a| a != "--repro").collect();
        return run_repro(&tail);
    }
    run_search(&args)
}

fn run_repro(args: &[String]) -> ExitCode {
    let case = match chaos::parse_case(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("chaos: {e}");
            return usage();
        }
    };
    println!("replaying {}", chaos::repro_command(&case));
    match chaos::run_case(&case) {
        Ok(()) => {
            println!("PASS: the case verifies (P1-P10, serializability, drain)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_search(args: &[String]) -> ExitCode {
    let mut trials: u64 = 20;
    let mut seed: u64 = 1;
    let mut engine: Option<&'static str> = None;
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trials" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => trials = n,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--engine" => {
                match it
                    .next()
                    .and_then(|v| chaos::ENGINES.iter().find(|e| *e == v))
                {
                    Some(e) => engine = Some(e),
                    None => return usage(),
                }
            }
            "--verbose" => verbose = true,
            _ => return usage(),
        }
    }
    println!(
        "chaos: {trials} trials, master seed {seed}, engine {}",
        engine.unwrap_or("sampled")
    );
    let mut failures: u32 = 0;
    for trial in 0..trials {
        let case = chaos::sample_case(seed, trial, engine);
        if verbose {
            println!(
                "trial {trial}: {} seed {} | {} server outage(s), {} client crash(es), \
                 drop {:.3} dup {:.3} delay {:.3}",
                case.engine,
                case.seed,
                case.plan.server_crashes.len(),
                case.plan.crashes.len(),
                case.plan.drop_prob,
                case.plan.dup_prob,
                case.plan.delay_prob,
            );
        }
        let Err(error) = chaos::run_case(&case) else {
            continue;
        };
        failures += 1;
        println!("trial {trial} FAILED: {error}");
        println!("  shrinking...");
        let (small, small_err, runs) = chaos::shrink(&case, error);
        println!("  shrunk after {runs} runs; still fails with: {small_err}");
        println!("  reproduce with:\n  {}", chaos::repro_command(&small));
    }
    if failures == 0 {
        println!("chaos: all {trials} trials verified (P1-P10, serializability, drain)");
        ExitCode::SUCCESS
    } else {
        println!("chaos: {failures}/{trials} trials failed");
        ExitCode::from(failures.min(101) as u8)
    }
}
