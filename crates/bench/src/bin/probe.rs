use g2pl_core::prelude::*;
use std::time::Instant;

fn main() {
    for p in [ProtocolKind::S2pl, ProtocolKind::g2pl_paper()] {
        let label = p.label();
        let mut cfg = EngineConfig::table1(p, 150, 500, 0.25);
        cfg.warmup_txns = 500;
        cfg.measured_txns = 5000;
        let t = Instant::now();
        let m = run(&cfg);
        println!(
            "{label}: {:.1}s wall, resp={:.0}, abort%={:.1}, msgs={}",
            t.elapsed().as_secs_f64(),
            m.mean_response(),
            m.abort_pct(),
            m.net.messages()
        );
    }
}
