//! `trace-explain` — analyze exported span traces.
//!
//! ```text
//! trace-explain [--timelines N] [--tail] <trace.jsonl>...
//! trace-explain --best-case
//! ```
//!
//! File mode replays a JSONL span trace (written by `repro --trace-out`)
//! through the phase-attribution state machine and renders, per file:
//!
//! - a per-phase latency breakdown table (mean / max / share of the
//!   measured response time),
//! - Fig-1-style ASCII timelines of the first few measured transactions,
//! - the round-count histogram with its observed mean, and
//! - a `phase-sum check` line: the five response phases must sum to the
//!   run's mean response time within 1% (the attribution is a partition
//!   of [first request, commit], so anything else is a bug).
//!
//! `--tail` switches file mode to tail attribution: instead of means it
//! prints the engine-exported p99/p999, a per-phase tail table (p50 /
//! p99 / max per phase, from the replayed quantile sketches), and the
//! flight recorder's worst-k measured transactions with the phase that
//! dominates each, plus their timelines. It also cross-checks the
//! `slow_txn` markers the exporter appended against the flight the
//! replay rebuilds (`tail-check:` line; skipped on truncated traces).
//!
//! `--best-case` runs the §3.1 worked example instead: every client
//! issues single-item exclusive transactions against a one-item database
//! so nothing can deadlock, then checks the empirical round counters
//! against the paper's analytic claim — s-2PL spends 3 rounds per
//! transaction (`3m` for `m` transactions) while g-2PL spends `2m + 1`
//! per collection window, i.e. `2·commits + windows` in total.
//!
//! Every check prints a line starting `round-check:` or
//! `phase-sum check:`; any FAIL sets a non-zero exit status.

use g2pl_obs::{
    parse_jsonl, ObsReport, Phase, RunMeta, SpanKind, SpanRecorder, TraceFile, TxnDetail,
};
use g2pl_protocols::{run, EngineConfig, ProtocolKind, RunMetrics};

const TIMELINE_COLS: usize = 60;

fn usage() -> ! {
    eprintln!(
        "usage: trace-explain [--timelines N] [--tail] <trace.jsonl>...\n\
         \u{20}      trace-explain --best-case\n\
         file mode replays JSONL span traces (from `repro --trace-out DIR`)\n\
         and prints per-phase breakdowns, ASCII timelines and round counts;\n\
         --tail prints tail attribution instead: per-phase p99, the worst-k\n\
         flight-recorder transactions and their dominant phases, checked\n\
         against the exporter's slow_txn markers;\n\
         --best-case runs the paper's \u{a7}3.1 workload and asserts the\n\
         analytic round counts (3m for s-2PL, 2m+1 for g-2PL)"
    );
    std::process::exit(2);
}

/// One-character glyph per phase for the ASCII timelines.
fn glyph(p: Phase) -> char {
    match p {
        Phase::ReqProp => '>',
        Phase::ServerQueue => 'q',
        Phase::Migration => 'w',
        Phase::DispatchProp => '<',
        Phase::ClientProc => 'c',
        Phase::CommitReturn => 'r',
    }
}

fn legend() -> String {
    Phase::ALL
        .iter()
        .map(|p| format!("{}={}", glyph(*p), p.name()))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Render one transaction's critical path as a scaled character strip.
fn timeline(d: &TxnDetail) -> String {
    let span = d.end.units().saturating_sub(d.start.units()).max(1);
    let mut cells = vec![' '; TIMELINE_COLS];
    for (phase, from, to) in &d.intervals {
        let a = (from.units().saturating_sub(d.start.units())) as f64 / span as f64;
        let b = (to.units().saturating_sub(d.start.units())) as f64 / span as f64;
        let lo = ((a * TIMELINE_COLS as f64) as usize).min(TIMELINE_COLS - 1);
        let hi = ((b * TIMELINE_COLS as f64) as usize).clamp(lo + 1, TIMELINE_COLS);
        for cell in &mut cells[lo..hi] {
            *cell = glyph(*phase);
        }
    }
    cells.into_iter().collect()
}

fn print_timelines(details: &[TxnDetail], limit: usize) {
    let picked: Vec<&TxnDetail> = details.iter().filter(|d| d.measured).take(limit).collect();
    let picked: Vec<&TxnDetail> = if picked.is_empty() {
        details.iter().take(limit).collect()
    } else {
        picked
    };
    if picked.is_empty() {
        println!("  (no finalized transactions to draw)");
        return;
    }
    println!("  {}", legend());
    for d in picked {
        println!(
            "  txn {:>5}  t={:>8}..{:<8} rounds={:>2}  |{}|",
            d.txn.0,
            d.start.units(),
            d.end.units(),
            d.rounds,
            timeline(d)
        );
    }
}

fn print_breakdown(report: &ObsReport, mean_response: f64) {
    let b = &report.breakdown;
    println!(
        "  {:<14} {:>8} {:>12} {:>12} {:>8}",
        "phase", "count", "mean", "max", "share"
    );
    for p in Phase::ALL {
        let s = b.phase(p);
        let share = if mean_response > 0.0 && p.index() < Phase::RESPONSE_PHASES {
            format!("{:>7.1}%", 100.0 * s.mean() / mean_response)
        } else {
            "      --".to_string()
        };
        println!(
            "  {:<14} {:>8} {:>12.1} {:>12.1} {}",
            p.name(),
            s.count(),
            s.mean(),
            s.max().unwrap_or(0.0),
            share
        );
    }
    println!(
        "  rounds: total={} mean={:.2} over {} measured commits ({} server returns)",
        b.rounds_total,
        b.mean_rounds(),
        b.measured_commits,
        b.server_returns
    );
    let hist = &b.rounds;
    let peak = hist.counts().iter().copied().max().unwrap_or(0).max(1);
    for (i, &n) in hist.counts().iter().enumerate() {
        if n == 0 {
            continue;
        }
        let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
        println!("    {i:>3} rounds | {bar} {n}");
    }
    if hist.overflow() > 0 {
        println!("    >64 rounds | {} (overflow)", hist.overflow());
    }
}

/// The five response phases must partition [first request, commit]:
/// their means sum to the mean response time, within 1%.
fn phase_sum_check(report: &ObsReport, mean_response: f64, label: &str) -> bool {
    let sum = report.breakdown.mean_phase_sum();
    if report.breakdown.measured_commits == 0 {
        println!("phase-sum check: SKIP ({label}: no measured commits)");
        return true;
    }
    let rel = if mean_response > 0.0 {
        (sum - mean_response).abs() / mean_response
    } else {
        sum.abs()
    };
    let ok = rel <= 0.01;
    println!(
        "phase-sum check: {} ({label}: phase means sum to {sum:.1}, mean response {mean_response:.1}, \
         {:.3}% apart)",
        if ok { "PASS" } else { "FAIL" },
        100.0 * rel
    );
    ok
}

/// Tail attribution: engine-exported quantiles, the per-phase tail
/// table from the replayed sketches, and the flight recorder's worst-k
/// transactions with the phase that dominates each.
fn print_tail(report: &ObsReport, meta_p99: u64, meta_p999: u64) {
    let b = &report.breakdown;
    println!(
        "  engine-side response quantiles: p99={meta_p99} p999={meta_p999} \
         ({} measured commits)",
        b.measured_commits
    );
    println!(
        "  {:<14} {:>8} {:>10} {:>10} {:>10}",
        "phase", "count", "p50", "p99", "max"
    );
    for p in Phase::ALL {
        let t = b.tail(p);
        println!(
            "  {:<14} {:>8} {:>10} {:>10} {:>10}",
            p.name(),
            t.count(),
            t.quantile(0.5).unwrap_or(0),
            t.quantile(0.99).unwrap_or(0),
            t.max().unwrap_or(0),
        );
    }
    if report.flight.is_empty() {
        println!("  flight recorder: empty (no measured commits)");
        return;
    }
    println!(
        "  flight recorder: {} worst measured transactions (dominant response phase)",
        report.flight.len()
    );
    println!("  {}", legend());
    for (rank, d) in report.flight.iter().enumerate() {
        let response = d.commit.units().saturating_sub(d.start.units());
        let mut dom = Phase::ALL[0];
        for p in &Phase::ALL[..Phase::RESPONSE_PHASES] {
            if d.phases[p.index()] > d.phases[dom.index()] {
                dom = *p;
            }
        }
        let share = if response > 0 {
            100.0 * d.phases[dom.index()] as f64 / response as f64
        } else {
            0.0
        };
        println!(
            "  #{:<3} txn {:>5} response={:>8} {}={:.0}%  |{}|",
            rank + 1,
            d.txn.0,
            response,
            dom.name(),
            share,
            timeline(d)
        );
    }
}

/// The `slow_txn` markers the exporter appended must name exactly the
/// transactions the replayed flight recorder retains, in rank order —
/// the trace is self-describing or it is wrong. Truncated traces skip
/// the check: the markers cover the full run but the replay only sees
/// the surviving prefix.
fn tail_check(tf: &TraceFile, report: &ObsReport, dropped: u64, label: &str) -> bool {
    if dropped > 0 {
        println!("tail-check: SKIP ({label}: trace truncated, replay sees only a prefix)");
        return true;
    }
    let mut markers: Vec<(u32, u32)> = tf
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::SlowTxn)
        .filter_map(|e| e.txn.map(|t| (e.n, t.0)))
        .collect();
    markers.sort_unstable_by_key(|&(n, _)| n);
    let marked: Vec<u32> = markers.into_iter().map(|(_, t)| t).collect();
    let replayed: Vec<u32> = report.flight.iter().map(|d| d.txn.0).collect();
    let ok = marked == replayed;
    if ok {
        println!(
            "tail-check: PASS ({label}: {} slow_txn markers match the replayed flight recorder)",
            marked.len()
        );
    } else {
        println!(
            "tail-check: FAIL ({label}: markers name txns {marked:?} but the replay \
             retains {replayed:?})"
        );
    }
    ok
}

fn explain_file(path: &str, timelines: usize, tail: bool) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-explain: cannot read {path}: {e}");
            return false;
        }
    };
    let tf = match parse_jsonl(&text) {
        Ok(tf) => tf,
        Err(e) => {
            eprintln!("trace-explain: {path}: {e}");
            return false;
        }
    };
    let RunMeta {
        protocol,
        clients,
        latency,
        read_prob,
        seed,
        committed,
        aborted,
        measured,
        mean_response,
        dropped,
        lease_expiries,
        recovery_stall,
        server_crashes,
        response_p99,
        response_p999,
    } = tf.meta.clone();
    println!("== {path}");
    println!(
        "  {protocol}  clients={clients} latency={latency} pr={read_prob} seed={seed}  \
         committed={committed} aborted={aborted} measured={measured}"
    );
    if dropped > 0 {
        println!(
            "  WARNING: recorder dropped {dropped} span events past its cap; \
             the trace is a prefix and every number below is an undercount"
        );
    }
    let report = SpanRecorder::replay(&tf.events).finish();
    if tail {
        print_tail(&report, response_p99, response_p999);
        let ok = tail_check(&tf, &report, dropped, &protocol);
        return ok && (dropped > 0 || phase_sum_check(&report, mean_response, &protocol));
    }
    print_breakdown(&report, mean_response);
    if server_crashes > 0 {
        println!("  recovery: survived {server_crashes} server crash/restart cycles");
    }
    if lease_expiries > 0 || recovery_stall > 0.0 {
        let share = if mean_response > 0.0 && measured > 0 {
            100.0 * (recovery_stall / measured as f64) / mean_response
        } else {
            0.0
        };
        println!(
            "  recovery: {lease_expiries} lease expiries, {recovery_stall:.0} stalled \
             ({:.1} per measured commit, {share:.1}% of mean response)",
            if measured > 0 {
                recovery_stall / measured as f64
            } else {
                0.0
            }
        );
    }
    print_timelines(&report.details, timelines);
    // A truncated trace cannot pass a partition check honestly.
    dropped > 0 || phase_sum_check(&report, mean_response, &protocol)
}

/// The §3.1 worked example: one hot item, exclusive single-item
/// transactions, nothing can deadlock, every commit is measured.
fn best_case_cfg(protocol: ProtocolKind) -> EngineConfig {
    let mut cfg = EngineConfig::table1(protocol, 8, 200, 0.0);
    cfg.items = g2pl_protocols::ItemSpace::single(1);
    cfg.profile.min_items = 1;
    cfg.profile.max_items = 1;
    cfg.warmup_txns = 0;
    cfg.measured_txns = 200;
    cfg.drain = true;
    cfg.trace_events = true;
    cfg.seed = 7;
    cfg
}

fn replay_run(m: &RunMetrics) -> ObsReport {
    let spans = m.spans.as_deref().unwrap_or(&[]);
    SpanRecorder::replay(spans).finish()
}

fn best_case() -> bool {
    let mut ok = true;

    // s-2PL: every single-item transaction is request + grant +
    // commit-release — exactly 3 network rounds, 3m in total.
    // lint:allow(L3): the best-case config is constructed in this binary and statically valid
    let m = run(&best_case_cfg(ProtocolKind::S2pl)).expect("valid config");
    let report = replay_run(&m);
    let n = report.details.len();
    let off: Vec<&TxnDetail> = report.details.iter().filter(|d| d.rounds != 3).collect();
    if off.is_empty() && n > 0 {
        println!(
            "round-check: PASS (s-2PL best case: 3 rounds for each of {n} commits; analytic 3m = {})",
            3 * n
        );
    } else {
        ok = false;
        println!(
            "round-check: FAIL (s-2PL best case: {} of {n} commits deviate from 3 rounds: {:?})",
            off.len(),
            off.iter()
                .take(5)
                .map(|d| (d.txn.0, d.rounds))
                .collect::<Vec<_>>()
        );
    }
    ok &= phase_sum_check(&report, m.response.mean(), "s-2PL best case");

    // g-2PL: a collection window of m transactions costs m requests,
    // m grants (each mid-window release rides its successor's grant),
    // and 1 final server return: 2m + 1. Summed over the run that is
    // 2·commits + windows.
    // lint:allow(L3): the best-case config is constructed in this binary and statically valid
    let m = run(&best_case_cfg(ProtocolKind::g2pl_paper())).expect("valid config");
    let report = replay_run(&m);
    let n = report.details.len() as u64;
    let total: u64 = report.details.iter().map(|d| u64::from(d.rounds)).sum();
    let analytic = 2 * n + m.window_closes;
    if total == analytic && n > 0 {
        println!(
            "round-check: PASS (g-2PL best case: {total} rounds over {n} commits in {} windows; \
             analytic 2m+1 per window = {analytic})",
            m.window_closes
        );
    } else {
        ok = false;
        println!(
            "round-check: FAIL (g-2PL best case: {total} rounds over {n} commits, expected \
             2*{n}+{} = {analytic})",
            m.window_closes
        );
    }
    ok &= phase_sum_check(&report, m.response.mean(), "g-2PL best case");

    println!();
    println!("  s-2PL \u{a7}3.1 timelines:");
    // lint:allow(L3): the best-case config is constructed in this binary and statically valid
    let s = replay_run(&run(&best_case_cfg(ProtocolKind::S2pl)).expect("valid config"));
    print_timelines(&s.details, 4);
    println!("  g-2PL \u{a7}3.1 timelines:");
    print_timelines(&report.details, 4);
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut timelines = 4usize;
    let mut files: Vec<String> = Vec::new();
    let mut run_best_case = false;
    let mut tail = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--best-case" => run_best_case = true,
            "--tail" => tail = true,
            "--timelines" => {
                i += 1;
                timelines = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            a if a.starts_with('-') => usage(),
            a => files.push(a.to_string()),
        }
        i += 1;
    }
    if !run_best_case && files.is_empty() {
        usage();
    }

    let mut ok = true;
    if run_best_case {
        ok &= best_case();
    }
    for f in &files {
        ok &= explain_file(f, timelines, tail);
        println!();
    }
    if !ok {
        std::process::exit(1);
    }
}
