//! The `repro bench` measurement harness.
//!
//! Times two kinds of work and reports engine throughput for both:
//!
//! * **Engine cells** — single hot-spot simulations (one per protocol,
//!   the old `probe` binary's configuration: 150 clients on an s-WAN,
//!   pr = 0.25), run raw with no verification. These measure pure
//!   engine events/second and are the regression-gate signal: the
//!   number is scale-independent, so a smoke-scale CI run is comparable
//!   to a committed default-scale baseline.
//! * **Figures** — whole figure sweeps through the grid scheduler with
//!   whatever verification setting is active, timed end to end. These
//!   measure what a `repro` user actually waits for.
//!
//! The report renders as markdown for stdout and serialises to the
//! `BENCH_*.json` schema documented in `EXPERIMENTS.md` (hand-rolled
//! JSON, like the span exporter — the workspace vendors no JSON crate).

use g2pl_core::prelude::*;
use std::fmt::Write as _;
// lint:allow(L2): the harness's whole job is wall-clock timing of the host run; simulation code never sees it
use std::time::Instant;

/// One timed unit of work (an engine cell or a figure sweep).
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Cell or figure id, e.g. `cell_g2pl` or `fig2`.
    pub id: String,
    /// Elapsed wall-clock seconds.
    pub wall_secs: f64,
    /// Simulation events processed.
    pub events: u64,
    /// `events / wall_secs` for cells; events per engine-second for
    /// figures (the grid may run cells on several workers).
    pub events_per_sec: f64,
    /// Largest calendar high-water mark observed.
    pub peak_calendar: usize,
}

/// Everything one `repro bench` invocation measured.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Scale label: `smoke`, `default`, or `full`.
    pub scale: &'static str,
    /// Raw engine cells (no verification).
    pub cells: Vec<BenchEntry>,
    /// Figure sweeps (verification as configured).
    pub figures: Vec<BenchEntry>,
}

/// The figures `repro bench` times by default: the headline
/// response-vs-latency sweep, the (cheap) read-only-deadlock sweep, and
/// the fault-injection loss sweep (recovery-path throughput).
pub const BENCH_FIGURES: [&str; 3] = ["fig2", "fig10", "fig_faults"];

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Default => "default",
        Scale::Full => "full",
    }
}

/// The engine hot-spot cells, one per protocol: the retired `probe`
/// binary's configuration. The workload is deliberately **fixed**
/// regardless of `--scale` — the regression gate compares a smoke-scale
/// CI run against a default-scale committed baseline, so the cell
/// throughput number must not depend on scale, and the run must be long
/// enough (~20k transactions) that timer noise stays well under the
/// gate's 30% tolerance.
fn engine_cells() -> Vec<(String, EngineConfig)> {
    [
        ProtocolKind::S2pl,
        ProtocolKind::g2pl_paper(),
        ProtocolKind::C2pl,
    ]
    .into_iter()
    .map(|p| {
        let id = format!(
            "cell_{}",
            p.label().replace('-', "").to_lowercase() // "s-2PL" -> "s2pl"
        );
        let mut cfg = EngineConfig::table1(p, 150, 500, 0.25);
        cfg.warmup_txns = 500;
        cfg.measured_txns = 20_000;
        (id, cfg)
    })
    .collect()
}

/// Repeats per engine cell; the fastest wall time wins. The simulation
/// is deterministic, so repeats differ only in scheduling noise — the
/// minimum is the least-perturbed measurement.
const CELL_REPEATS: u32 = 3;

fn run_figure(id: &str, scale: Scale) -> FigureData {
    experiments::figure(id)
        .unwrap_or_else(|| panic!("repro bench cannot time figure {id}")) // lint:allow(L3): CLI input validated upstream
        .build(scale)
}

/// Run the full harness: every engine cell (fixed workload, best of
/// [`CELL_REPEATS`]), then every figure in [`BENCH_FIGURES`] at `scale`.
pub fn run_bench(scale: Scale) -> BenchReport {
    let mut cells = Vec::new();
    for (id, cfg) in engine_cells() {
        let mut best = f64::INFINITY;
        // lint:allow(L3): bench cells come from the figure registry, validated at registration
        let mut m = run(&cfg).expect("bench cell config is valid");
        for _ in 0..CELL_REPEATS {
            // lint:allow(L2): wall-clock timing is the harness's measurement, not simulation input
            let t = Instant::now();
            // lint:allow(L3): bench cells come from the figure registry, validated at registration
            m = run(&cfg).expect("bench cell config is valid");
            best = best.min(t.elapsed().as_secs_f64().max(1e-9));
        }
        cells.push(BenchEntry {
            id,
            wall_secs: best,
            events: m.events,
            events_per_sec: m.events as f64 / best,
            peak_calendar: m.peak_calendar,
        });
    }
    let mut figures = Vec::new();
    for fig in BENCH_FIGURES {
        let _ = take_perf(); // drain whatever ran before
                             // lint:allow(L2): wall-clock timing is the harness's measurement, not simulation input
        let t = Instant::now();
        let _data = run_figure(fig, scale);
        let wall = t.elapsed().as_secs_f64().max(1e-9);
        let perf = take_perf();
        figures.push(BenchEntry {
            id: fig.to_string(),
            wall_secs: wall,
            events: perf.events,
            events_per_sec: perf.events_per_sec(),
            peak_calendar: perf.peak_calendar,
        });
    }
    BenchReport {
        scale: scale_name(scale),
        cells,
        figures,
    }
}

impl BenchReport {
    /// Aggregate raw-engine throughput over every cell — the
    /// regression-gate number.
    pub fn cells_events_per_sec(&self) -> f64 {
        let events: u64 = self.cells.iter().map(|c| c.events).sum();
        let secs: f64 = self.cells.iter().map(|c| c.wall_secs).sum();
        if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        }
    }

    /// Serialise to the `BENCH_*.json` schema (see `EXPERIMENTS.md`).
    pub fn to_json(&self) -> String {
        fn entries(out: &mut String, list: &[BenchEntry]) {
            for (i, e) in list.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(
                    out,
                    "{sep}\n    {{\"id\":\"{}\",\"wall_secs\":{:.4},\"events\":{},\
                     \"events_per_sec\":{:.0},\"peak_calendar\":{}}}",
                    e.id, e.wall_secs, e.events, e.events_per_sec, e.peak_calendar
                );
            }
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"g2pl-bench/1\",\n  \"scale\": \"{}\",\n  \"cells\": [",
            self.scale
        );
        entries(&mut out, &self.cells);
        let _ = write!(out, "\n  ],\n  \"figures\": [");
        entries(&mut out, &self.figures);
        let _ = write!(
            out,
            "\n  ],\n  \"cells_events_per_sec\": {:.0}\n}}\n",
            self.cells_events_per_sec()
        );
        out
    }

    /// Render a human-readable markdown summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### bench — engine throughput, scale={}", self.scale);
        let _ = writeln!(
            out,
            "| unit | wall (s) | events | events/s | peak calendar |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|");
        for e in self.cells.iter().chain(&self.figures) {
            let _ = writeln!(
                out,
                "| {} | {:.2} | {} | {:.2}M | {} |",
                e.id,
                e.wall_secs,
                e.events,
                e.events_per_sec / 1e6,
                e.peak_calendar
            );
        }
        let _ = writeln!(
            out,
            "\naggregate cell throughput: {:.2}M events/s",
            self.cells_events_per_sec() / 1e6
        );
        out
    }
}

/// The cell sizes `repro scale-bench` runs per `--scale`: (clients,
/// shards). The default-scale datapoint (100k clients) is the committed
/// `results/scale_datapoint.json`; full is the million-client target.
pub fn scale_bench_size(scale: Scale) -> (u32, u32) {
    match scale {
        Scale::Smoke => (10_000, 4),
        Scale::Default => (100_000, 8),
        Scale::Full => (1_000_000, 64),
    }
}

/// One big sharded scale-out datapoint (`repro scale-bench`): run a
/// `fig_scale`-flavored cell at the given size on the PDES (one worker
/// per shard up to the core count), and report simulation throughput
/// next to the committed engine baseline's aggregate cell number when a
/// `BENCH_*.json` document is supplied. Returns `(markdown, json)`.
pub fn run_scale_bench(
    scale: Scale,
    clients: u32,
    shards: u32,
    baseline_json: Option<&str>,
) -> (String, String) {
    let cfg = experiments::scale_cell(clients, shards);
    // lint:allow(L3): the registry cell is valid by construction
    let m = run_scale(&cfg).unwrap_or_else(|e| panic!("scale-bench: {e}"));
    let eps = m.events_per_sec();
    let tail = m.tail.summary();
    let baseline = baseline_json.and_then(|j| json_number_field(j, "cells_events_per_sec"));

    let mut md = String::new();
    let _ = writeln!(
        md,
        "### scale-bench — sharded PDES scale-out, scale={}",
        scale_name(scale)
    );
    let _ = writeln!(
        md,
        "| clients | shards | committed | multi-home | events | wall (s) | events/s | p99 resp |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
    let _ = writeln!(
        md,
        "| {} | {} | {} | {} | {} | {:.2} | {:.2}M | {} |",
        m.clients,
        m.shards,
        m.committed,
        m.multi_home,
        m.events,
        m.wall.as_secs_f64(),
        eps / 1e6,
        tail.p99
    );
    if let Some(base) = baseline {
        let _ = writeln!(
            md,
            "\nvs committed engine-cell baseline: {:.2}M events/s (scale-out at {:.2}x)",
            base / 1e6,
            eps / base
        );
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"schema\": \"g2pl-scale-bench/1\",\n  \"scale\": \"{}\",\n  \
         \"clients\": {},\n  \"shards\": {},\n  \"committed\": {},\n  \
         \"multi_home\": {},\n  \"events\": {},\n  \"messages\": {},\n  \
         \"rounds\": {},\n  \"cross_messages\": {},\n  \"mean_response\": {:.4},\n  \
         \"p99_response\": {},\n  \"wall_secs\": {:.4},\n  \"events_per_sec\": {:.0}",
        scale_name(scale),
        m.clients,
        m.shards,
        m.committed,
        m.multi_home,
        m.events,
        m.messages,
        m.rounds,
        m.cross_messages,
        m.response.mean(),
        tail.p99,
        m.wall.as_secs_f64(),
        eps
    );
    if let Some(base) = baseline {
        let _ = write!(
            json,
            ",\n  \"baseline_cells_events_per_sec\": {base:.0},\n  \
             \"vs_baseline_cells\": {:.3}",
            eps / base
        );
    }
    json.push_str("\n}\n");
    (md, json)
}

/// Extract a top-level numeric field from a `BENCH_*.json` document.
/// (The workspace vendors no JSON parser; the schema is flat enough for
/// a textual scan.)
pub fn json_number_field(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compare against a committed baseline: `Some(message)` when aggregate
/// cell throughput fell more than `tolerance` (e.g. 0.30) below the
/// baseline's, `None` otherwise.
pub fn regression_vs(baseline_json: &str, report: &BenchReport, tolerance: f64) -> Option<String> {
    let base = json_number_field(baseline_json, "cells_events_per_sec")?;
    if base <= 0.0 {
        return None;
    }
    let now = report.cells_events_per_sec();
    let floor = base * (1.0 - tolerance);
    (now < floor).then(|| {
        format!(
            "engine throughput regressed: {:.2}M events/s vs baseline {:.2}M \
             (floor at -{:.0}%: {:.2}M)",
            now / 1e6,
            base / 1e6,
            tolerance * 100.0,
            floor / 1e6
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_cells_cover_every_protocol() {
        let cells = engine_cells();
        let ids: Vec<&str> = cells.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, ["cell_s2pl", "cell_g2pl", "cell_c2pl"]);
        for (id, cfg) in &cells {
            assert!(cfg.validate().is_ok(), "{id} invalid");
        }
    }

    #[test]
    fn json_number_field_reads_the_schema() {
        let doc = "{\n  \"cells_events_per_sec\": 123456,\n  \"x\": -1.5e3\n}";
        assert_eq!(
            json_number_field(doc, "cells_events_per_sec"),
            Some(123456.0)
        );
        assert_eq!(json_number_field(doc, "x"), Some(-1500.0));
        assert_eq!(json_number_field(doc, "missing"), None);
    }

    #[test]
    fn regression_gate_trips_only_past_tolerance() {
        let report = BenchReport {
            scale: "smoke",
            cells: vec![BenchEntry {
                id: "cell_s2pl".into(),
                wall_secs: 1.0,
                events: 650_000,
                events_per_sec: 650_000.0,
                peak_calendar: 10,
            }],
            figures: vec![],
        };
        let baseline = "{\"cells_events_per_sec\": 1000000}";
        assert!(regression_vs(baseline, &report, 0.30).is_some(), "35% off");
        let baseline = "{\"cells_events_per_sec\": 900000}";
        assert!(
            regression_vs(baseline, &report, 0.30).is_none(),
            "within tolerance"
        );
        assert!(regression_vs("not json", &report, 0.30).is_none());
    }

    #[test]
    fn report_round_trips_through_its_own_parser() {
        let report = BenchReport {
            scale: "smoke",
            cells: vec![BenchEntry {
                id: "cell_g2pl".into(),
                wall_secs: 0.5,
                events: 500_000,
                events_per_sec: 1_000_000.0,
                peak_calendar: 321,
            }],
            figures: vec![],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"g2pl-bench/1\""));
        assert_eq!(
            json_number_field(&json, "cells_events_per_sec"),
            Some(1_000_000.0)
        );
        assert!(report.render().contains("cell_g2pl"));
    }
}
