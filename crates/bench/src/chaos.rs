//! Chaos search: randomized `(seed, FaultPlan)` sampling with shrinking.
//!
//! Each trial derives a case from its own [`RngStream`] (master seed +
//! trial index, so the whole search is reproducible), runs a short
//! drained simulation of one engine under that fault plan, and verifies
//! the result end to end: engine-internal drain invariants (via panic
//! capture), trace properties P1–P10 and conflict-serializability. A
//! failing case is then *shrunk* — fault components are removed or
//! simplified greedily while the failure persists — and reported as a
//! minimal single-case reproducer command line.
//!
//! The `chaos` binary drives this module; `ci/check.sh` runs a small
//! smoke search on every commit.

use g2pl_core::{check_serializable, check_trace_with, TraceCheckOpts};
use g2pl_protocols::{
    run, CrashWindow, Endpoint, EngineConfig, FaultPlan, ItemSpace, LinkPartition, ProtocolKind,
    ServerCrashWindow, ShardMix,
};
use g2pl_simcore::RngStream;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Engine labels the sampler draws from (CLI `--engine` values).
pub const ENGINES: [&str; 3] = ["g2pl", "s2pl", "c2pl"];

/// Clients in every chaos configuration (client crash windows index
/// into this range).
pub const CLIENTS: u32 = 8;

/// Map an engine label to its protocol. `None` for unknown labels.
pub fn protocol_of(engine: &str) -> Option<ProtocolKind> {
    match engine {
        "g2pl" => Some(ProtocolKind::g2pl_paper()),
        "s2pl" => Some(ProtocolKind::S2pl),
        "c2pl" => Some(ProtocolKind::C2pl),
        _ => None,
    }
}

/// One sampled chaos case: which engine, which workload seed, which
/// fault plan.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosCase {
    /// Engine label (one of [`ENGINES`]).
    pub engine: &'static str,
    /// Workload seed of the run.
    pub seed: u64,
    /// The sampled fault plan.
    pub plan: FaultPlan,
    /// Server shard count (1 = the paper's single server). Crash
    /// windows may hit any shard; the surviving shards must ride them
    /// out, and in-flight multi-home commits must stay atomic.
    pub shards: u32,
}

/// Canonicalize an engine label to its `'static` spelling.
fn intern_engine(engine: &str) -> Option<&'static str> {
    ENGINES.iter().find(|e| **e == engine).copied()
}

/// Sample trial `trial` of the search seeded by `master`.
///
/// Every draw comes from one stream derived as `chaos-trial-<n>`, so a
/// failing trial is reproducible from `(master, trial)` alone and
/// resampling one trial never perturbs another. `engine` pins the
/// engine; `None` samples it too.
pub fn sample_case(master: u64, trial: u64, engine: Option<&'static str>) -> ChaosCase {
    let mut rng = RngStream::derive_indexed(master, "chaos-trial", trial);
    let engine = engine.unwrap_or_else(|| ENGINES[rng.index(ENGINES.len())]);
    let seed = rng.uniform_incl(0, u64::from(u32::MAX));
    // Half the trials run sharded: faults must compose with multi-home
    // commit, and the P9/P10 crash-window checks are per site. Sampled
    // up front so crash windows can target any shard.
    let shards: u32 = [1, 1, 2, 4][rng.index(4)];
    let mut plan = FaultPlan::default();
    if rng.bernoulli(0.5) {
        plan.drop_prob = rng.unit_f64() * 0.04;
    }
    if rng.bernoulli(0.25) {
        plan.dup_prob = rng.unit_f64() * 0.02;
    }
    if rng.bernoulli(0.25) {
        plan.delay_prob = rng.unit_f64() * 0.05;
        plan.delay_extra = rng.uniform_incl(50, 500);
    }
    // One or two server outages, spaced so windows can never overlap
    // even at maximum jitter (FaultPlan::validate rejects per-shard
    // overlap; the global spacing is stricter than it demands). Each
    // window picks its own victim shard, so a sharded trial can lose a
    // non-zero shard mid multi-home commit.
    let outages = 1 + usize::from(rng.bernoulli(0.4));
    let mut cursor = rng.uniform_incl(2_000, 8_000);
    for _ in 0..outages {
        let shard = rng.index(shards as usize) as u32;
        let down_for = rng.uniform_incl(100, 2_000);
        let jitter = rng.uniform_incl(0, 400);
        plan.server_crashes.push(ServerCrashWindow {
            shard,
            at: cursor,
            down_for,
            jitter,
        });
        cursor += down_for + jitter + rng.uniform_incl(1_500, 8_000);
    }
    // Sometimes a client dies too: crash-recovery must compose with the
    // lease machinery, not just run beside it.
    if rng.bernoulli(0.4) {
        plan.crashes.push(CrashWindow {
            client: rng.index(CLIENTS as usize) as u32,
            at: rng.uniform_incl(2_000, 15_000),
            down_for: rng.uniform_incl(500, 3_000),
        });
    }
    // Sharded trials sometimes sever a shard-to-shard link: recovery
    // commit queries must survive a partitioned peer (retry until the
    // window lifts, or fall back to the commit oracle).
    if shards > 1 && rng.bernoulli(0.35) {
        let a = rng.index(shards as usize) as u32;
        let b = (a + 1 + rng.index(shards as usize - 1) as u32) % shards;
        let from = rng.uniform_incl(2_000, 12_000);
        let until = from + rng.uniform_incl(300, 2_500);
        plan.partitions
            .push(LinkPartition::between_shards(a, b, from, until));
    }
    ChaosCase {
        engine,
        seed,
        plan,
        shards,
    }
}

/// The fixed simulation cell a case runs in: small enough for hundreds
/// of trials, long enough that both sampled outage windows land inside
/// the run. Drain mode forces every surviving transaction to finish, so
/// recovery liveness is checked by completion itself.
pub fn case_config(case: &ChaosCase) -> Option<EngineConfig> {
    let mut cfg = EngineConfig::table1(protocol_of(case.engine)?, CLIENTS, 50, 0.5);
    cfg.seed = case.seed;
    cfg.warmup_txns = 50;
    cfg.measured_txns = 250;
    cfg.drain = true;
    cfg.trace_events = true;
    cfg.record_history = true;
    cfg.enable_wal = true;
    if case.shards > 1 {
        // Keep the pool at the paper's hot size, spread across shards,
        // with 30% of transactions crossing shard boundaries.
        cfg.items = ItemSpace::sharded(case.shards, 25_u32.div_ceil(case.shards));
        cfg.profile.shard_mix = Some(ShardMix {
            cross_frac: 0.3,
            shard_theta: 0.5,
        });
    }
    cfg.faults = Some(case.plan.clone());
    Some(cfg)
}

/// Run one case and verify it; `Err` carries the first failure found.
pub fn run_case(case: &ChaosCase) -> Result<(), String> {
    let Some(cfg) = case_config(case) else {
        return Err(format!("unknown engine label {:?}", case.engine));
    };
    if let Err(e) = cfg.validate() {
        return Err(format!("invalid config: {e}"));
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| run(&cfg)));
    let metrics = match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            return Err(format!("engine panicked: {msg}"));
        }
        Ok(Err(e)) => return Err(format!("invalid config: {e}")),
        Ok(Ok(m)) => m,
    };
    if metrics.trace_truncated() {
        return Err("trace truncated: cannot verify honestly".to_string());
    }
    let Some(trace) = &metrics.trace else {
        return Err("engine returned no trace with trace_events on".to_string());
    };
    check_trace_with(trace, TraceCheckOpts::for_config(&cfg))
        .map_err(|e| format!("trace property: {e}"))?;
    let Some(history) = &metrics.history else {
        return Err("engine returned no history with record_history on".to_string());
    };
    check_serializable(history).map_err(|e| format!("serializability: {e}"))?;
    Ok(())
}

/// Shrink a failing case with an injectable failure oracle (`Some(err)`
/// = still fails). Greedy: apply the first simplification that keeps
/// the case failing, restart from the top, stop at a fixpoint or after
/// `max_runs` oracle calls. Returns the shrunk case and the error it
/// still fails with.
pub fn shrink_with(
    case: &ChaosCase,
    error: String,
    mut fails: impl FnMut(&ChaosCase) -> Option<String>,
    max_runs: u32,
) -> (ChaosCase, String, u32) {
    let mut best = case.clone();
    let mut best_err = error;
    let mut runs = 0;
    'outer: loop {
        for candidate in candidates(&best) {
            if runs >= max_runs {
                break 'outer;
            }
            runs += 1;
            if let Some(e) = fails(&candidate) {
                best = candidate;
                best_err = e;
                continue 'outer;
            }
        }
        break;
    }
    (best, best_err, runs)
}

/// Shrink a failing case by re-running the real simulation.
pub fn shrink(case: &ChaosCase, error: String) -> (ChaosCase, String, u32) {
    shrink_with(case, error, |c| run_case(c).err(), 100)
}

/// Candidate one-step simplifications of a case, simplest-first.
fn candidates(case: &ChaosCase) -> Vec<ChaosCase> {
    let mut out = Vec::new();
    if case.shards > 1 {
        // Simplest first: does the failure survive without sharding?
        // Collapsing retargets every crash window at the sole remaining
        // shard and drops shard partitions (the link no longer exists);
        // retargeting can merge windows into a per-shard overlap, in
        // which case the candidate is skipped as invalid.
        let mut p = case.plan.clone();
        for w in &mut p.server_crashes {
            w.shard = 0;
        }
        p.partitions
            .retain(|lp| !matches!((lp.a, lp.b), (Endpoint::Shard(_), Endpoint::Shard(_))));
        if p.validate().is_ok() {
            out.push(ChaosCase {
                shards: 1,
                plan: p,
                ..case.clone()
            });
        }
    }
    let mut push = |plan: FaultPlan| {
        out.push(ChaosCase {
            plan,
            ..case.clone()
        });
    };
    // Drop every window of one victim shard at once (a whole fault
    // domain at a time), then windows one by one.
    let mut victim_shards: Vec<u32> = case.plan.server_crashes.iter().map(|w| w.shard).collect();
    victim_shards.sort_unstable();
    victim_shards.dedup();
    if victim_shards.len() > 1 {
        for s in victim_shards {
            let mut p = case.plan.clone();
            p.server_crashes.retain(|w| w.shard != s);
            push(p);
        }
    }
    for i in 0..case.plan.server_crashes.len() {
        let mut p = case.plan.clone();
        p.server_crashes.remove(i);
        push(p);
    }
    for i in 0..case.plan.crashes.len() {
        let mut p = case.plan.clone();
        p.crashes.remove(i);
        push(p);
    }
    for i in 0..case.plan.partitions.len() {
        let mut p = case.plan.clone();
        p.partitions.remove(i);
        push(p);
    }
    if case.plan.drop_prob > 0.0 {
        let mut p = case.plan.clone();
        p.drop_prob = 0.0;
        push(p);
    }
    if case.plan.dup_prob > 0.0 {
        let mut p = case.plan.clone();
        p.dup_prob = 0.0;
        push(p);
    }
    if case.plan.delay_prob > 0.0 {
        let mut p = case.plan.clone();
        p.delay_prob = 0.0;
        p.delay_extra = 0;
        push(p);
    }
    for (i, w) in case.plan.server_crashes.iter().enumerate() {
        if w.jitter > 0 {
            let mut p = case.plan.clone();
            p.server_crashes[i].jitter = 0;
            push(p);
        }
        if w.down_for > 200 {
            let mut p = case.plan.clone();
            p.server_crashes[i].down_for = w.down_for / 2;
            push(p);
        }
    }
    out
}

/// The single-case reproducer command line for a (shrunk) case.
pub fn repro_command(case: &ChaosCase) -> String {
    use std::fmt::Write as _;
    let mut cmd = format!(
        "cargo run --release -p g2pl-bench --bin chaos -- --repro \
         --engine {} --seed {}",
        case.engine, case.seed
    );
    let p = &case.plan;
    if p.drop_prob > 0.0 {
        let _ = write!(cmd, " --drop {}", p.drop_prob);
    }
    if p.dup_prob > 0.0 {
        let _ = write!(cmd, " --dup {}", p.dup_prob);
    }
    if p.delay_prob > 0.0 {
        let _ = write!(
            cmd,
            " --delay {} --delay-extra {}",
            p.delay_prob, p.delay_extra
        );
    }
    for w in &p.server_crashes {
        let _ = write!(
            cmd,
            " --server-crash {}:{}:{}:{}",
            w.shard, w.at, w.down_for, w.jitter
        );
    }
    for w in &p.crashes {
        let _ = write!(cmd, " --client-crash {}:{}:{}", w.client, w.at, w.down_for);
    }
    for lp in &p.partitions {
        if let (Endpoint::Shard(a), Endpoint::Shard(b)) = (lp.a, lp.b) {
            let _ = write!(cmd, " --shard-partition {a}:{b}:{}:{}", lp.from, lp.until);
        }
    }
    if case.shards > 1 {
        let _ = write!(cmd, " --shards {}", case.shards);
    }
    cmd
}

/// Parse the `--repro` flag tail back into a case (the inverse of
/// [`repro_command`]).
pub fn parse_case(args: &[String]) -> Result<ChaosCase, String> {
    let mut engine = None;
    let mut seed = None;
    let mut shards = 1u32;
    let mut plan = FaultPlan::default();
    let mut it = args.iter();
    let next_val = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--engine" => {
                let v = next_val("--engine", &mut it)?;
                engine = Some(intern_engine(&v).ok_or_else(|| format!("unknown engine {v:?}"))?);
            }
            "--seed" => seed = Some(parse_num(&next_val("--seed", &mut it)?)?),
            "--shards" => {
                let v = parse_num(&next_val("--shards", &mut it)?)?;
                shards = u32::try_from(v)
                    .ok()
                    .filter(|s| (1..=64).contains(s))
                    .ok_or_else(|| format!("shard count out of range: {v}"))?;
            }
            "--drop" => plan.drop_prob = parse_prob(&next_val("--drop", &mut it)?)?,
            "--dup" => plan.dup_prob = parse_prob(&next_val("--dup", &mut it)?)?,
            "--delay" => plan.delay_prob = parse_prob(&next_val("--delay", &mut it)?)?,
            "--delay-extra" => {
                plan.delay_extra = parse_num(&next_val("--delay-extra", &mut it)?)?;
            }
            "--server-crash" => {
                let v = next_val("--server-crash", &mut it)?;
                // Four fields address a shard; the legacy three-field
                // form described "the server" and keeps meaning shard 0.
                let (shard, at, down_for, jitter) = match parse_parts(&v)?[..] {
                    [at, down_for, jitter] => (0, at, down_for, jitter),
                    [shard, at, down_for, jitter] => (
                        u32::try_from(shard).map_err(|_| format!("shard {shard} out of range"))?,
                        at,
                        down_for,
                        jitter,
                    ),
                    _ => return Err(format!("expected [shard:]at:down:jitter, got {v:?}")),
                };
                plan.server_crashes.push(ServerCrashWindow {
                    shard,
                    at,
                    down_for,
                    jitter,
                });
            }
            "--shard-partition" => {
                let v = next_val("--shard-partition", &mut it)?;
                let [a, b, from, until] = parse_parts(&v)?[..] else {
                    return Err(format!("expected a:b:from:until, got {v:?}"));
                };
                let shard = |x: u64| u32::try_from(x).map_err(|_| format!("shard {x} too large"));
                plan.partitions.push(LinkPartition::between_shards(
                    shard(a)?,
                    shard(b)?,
                    from,
                    until,
                ));
            }
            "--client-crash" => {
                let v = next_val("--client-crash", &mut it)?;
                let [client, at, down_for] = parse_triple(&v)?;
                let client = u32::try_from(client)
                    .map_err(|_| format!("client index {client} out of range"))?;
                plan.crashes.push(CrashWindow {
                    client,
                    at,
                    down_for,
                });
            }
            other => return Err(format!("unknown repro flag {other:?}")),
        }
    }
    let engine = engine.ok_or("--repro needs --engine")?;
    let seed = seed.ok_or("--repro needs --seed")?;
    Ok(ChaosCase {
        engine,
        seed,
        plan,
        shards,
    })
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("not a number: {s:?}"))
}

fn parse_prob(s: &str) -> Result<f64, String> {
    s.parse()
        .ok()
        .filter(|p| (0.0..=1.0).contains(p))
        .ok_or_else(|| format!("not a probability: {s:?}"))
}

fn parse_triple(s: &str) -> Result<[u64; 3], String> {
    match parse_parts(s)?[..] {
        [a, b, c] => Ok([a, b, c]),
        _ => Err(format!("expected a:b:c, got {s:?}")),
    }
}

/// Split a colon-separated numeric tuple of any arity.
fn parse_parts(s: &str) -> Result<Vec<u64>, String> {
    s.split(':').map(parse_num).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_trial() {
        let a = sample_case(7, 3, None);
        let b = sample_case(7, 3, None);
        assert_eq!(a, b);
        let c = sample_case(7, 4, None);
        assert_ne!(a, c, "distinct trials must differ");
    }

    #[test]
    fn sampled_plans_are_valid() {
        for trial in 0..50 {
            let case = sample_case(42, trial, None);
            assert!(
                case.plan.validate().is_ok(),
                "trial {trial} sampled an invalid plan: {:?}",
                case.plan
            );
            assert!(
                case.plan.has_server_crashes(),
                "every case crashes the server"
            );
            let cfg = case_config(&case).expect("known engine");
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn engine_pin_is_honored() {
        for trial in 0..10 {
            let case = sample_case(1, trial, Some("s2pl"));
            assert_eq!(case.engine, "s2pl");
        }
    }

    #[test]
    fn repro_command_round_trips() {
        for trial in 0..20 {
            let case = sample_case(99, trial, None);
            let cmd = repro_command(&case);
            let tail: Vec<String> = cmd
                .split(" --repro ")
                .nth(1)
                .expect("repro marker")
                .split_whitespace()
                .map(str::to_string)
                .collect();
            let parsed = parse_case(&tail).expect("parses");
            assert_eq!(parsed, case, "{cmd}");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        let args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();
        assert!(parse_case(&args("--engine g2pl")).is_err(), "missing seed");
        assert!(parse_case(&args("--seed 4")).is_err(), "missing engine");
        assert!(parse_case(&args("--engine x2pl --seed 4")).is_err());
        assert!(parse_case(&args("--engine g2pl --seed 4 --drop 1.5")).is_err());
        assert!(parse_case(&args("--engine g2pl --seed 4 --server-crash 1:2")).is_err());
        assert!(parse_case(&args("--engine g2pl --seed 4 --bogus 1")).is_err());
    }

    #[test]
    fn shrink_reaches_a_minimal_failing_case() {
        // Oracle: fails while any server crash window remains. The
        // shrinker must strip everything else and keep exactly one.
        let case = sample_case(11, 2, Some("g2pl"));
        let (small, err, runs) = shrink_with(
            &case,
            "seed failure".to_string(),
            |c| {
                c.plan
                    .has_server_crashes()
                    .then(|| "still fails".to_string())
            },
            1_000,
        );
        assert!(runs > 0);
        assert_eq!(err, "still fails");
        assert_eq!(small.plan.server_crashes.len(), 1);
        assert!(small.plan.crashes.is_empty());
        assert_eq!(small.plan.drop_prob, 0.0);
        assert_eq!(small.plan.dup_prob, 0.0);
        assert_eq!(small.plan.delay_prob, 0.0);
        assert_eq!(small.plan.server_crashes[0].jitter, 0);
        assert!(small.plan.server_crashes[0].down_for <= 200);
    }

    #[test]
    fn shrink_respects_the_run_budget() {
        // Plenty of components left to strip, but only 2 runs allowed.
        let mut plan = FaultPlan::default();
        for i in 0..4 {
            plan.server_crashes
                .push(ServerCrashWindow::fixed(2_000 + i * 5_000, 1_000));
        }
        plan.drop_prob = 0.01;
        let case = ChaosCase {
            engine: "g2pl",
            seed: 7,
            plan,
            shards: 1,
        };
        let (small, _, runs) = shrink_with(&case, "e".to_string(), |_| Some("e".to_string()), 2);
        assert_eq!(runs, 2);
        assert_eq!(
            small.plan.server_crashes.len(),
            2,
            "two accepted removals, then the budget stops the search"
        );
    }

    #[test]
    fn chaos_trials_pass_on_the_current_engines() {
        // A miniature in-process smoke search: one trial per engine.
        for (i, engine) in ENGINES.iter().enumerate() {
            let case = sample_case(5, i as u64, intern_engine(engine));
            assert_eq!(run_case(&case), Ok(()), "{engine} trial failed");
        }
    }

    #[test]
    fn sharded_chaos_trials_pass_on_every_engine() {
        // Crashing shard 0 while other shards stay live, with 30%
        // multi-home transactions: faults must compose with sharding.
        for (i, engine) in ENGINES.iter().enumerate() {
            let mut case = sample_case(21, i as u64, intern_engine(engine));
            case.shards = 4;
            assert_eq!(run_case(&case), Ok(()), "{engine} sharded trial failed");
        }
    }

    #[test]
    fn sampler_emits_sharded_cases() {
        let mut seen_multi = false;
        let mut seen_single = false;
        for trial in 0..30 {
            let case = sample_case(13, trial, None);
            assert!((1..=64).contains(&case.shards));
            seen_multi |= case.shards > 1;
            seen_single |= case.shards == 1;
        }
        assert!(seen_multi && seen_single, "both layouts must be sampled");
    }
}
