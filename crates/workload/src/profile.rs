//! The per-client transaction profile (Table 1 of the paper).

use crate::dist::AccessDistribution;
use g2pl_simcore::{RngStream, SimTime};
use serde::{Deserialize, Serialize};

/// Cross-shard access mix for sharded item spaces.
///
/// The paper's single-server workload has no notion of placement; with
/// the item pool partitioned across server shards, these two knobs
/// control how transactions span it:
///
/// * `cross_frac` — among transactions with two or more accesses, the
///   probability that the transaction is *multi-home*, i.e. guaranteed
///   to touch at least two shards (single-access transactions can never
///   cross). The rest pin every access to one home shard.
/// * `shard_theta` — Zipf exponent over shard popularity: 0 spreads
///   homes uniformly, larger values concentrate traffic on low-numbered
///   shards (hot-shard skew).
///
/// On a one-shard space the mix is inert by construction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardMix {
    /// Fraction of eligible (≥2-access) transactions forced multi-home.
    pub cross_frac: f64,
    /// Zipf exponent of the shard-popularity distribution (0 = uniform).
    pub shard_theta: f64,
}

impl ShardMix {
    /// Uniform shard popularity with the given multi-home fraction.
    pub fn uniform(cross_frac: f64) -> Self {
        ShardMix {
            cross_frac,
            shard_theta: 0.0,
        }
    }
}

/// Statistical profile of the transactions a client runs.
///
/// Defaults are exactly Table 1:
/// 1–5 items per transaction, think time 1–3 units per operation, idle
/// time 2–10 units between transactions, uniform access over the item
/// pool. The read probability is the experiment's sweep variable and has
/// no meaningful default, so it is a required constructor argument.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TxnProfile {
    /// Minimum number of distinct items per transaction (Table 1: 1).
    pub min_items: u32,
    /// Maximum number of distinct items per transaction (Table 1: 5).
    pub max_items: u32,
    /// Probability that an individual access is a read; writes have
    /// probability `1 - read_prob`.
    pub read_prob: f64,
    /// Minimum think (computation) time per operation (Table 1: 1).
    pub think_min: u64,
    /// Maximum think time per operation (Table 1: 3).
    pub think_max: u64,
    /// Minimum idle time between transactions (Table 1: 2).
    pub idle_min: u64,
    /// Maximum idle time between transactions (Table 1: 10).
    pub idle_max: u64,
    /// How items are selected from the pool.
    pub access: AccessDistribution,
    /// Issue accesses in ascending item order (static lock ordering).
    /// Canonical ordering makes wait-for cycles impossible for s-2PL and
    /// nearly so for g-2PL — an ablation for separating deadlock costs
    /// from pipeline costs. The paper's workload does not sort.
    pub sorted_access: bool,
    /// Cross-shard mix for sharded item spaces. `None` draws items over
    /// the whole pool with no placement awareness — on one shard this is
    /// the paper's workload, bit for bit.
    pub shard_mix: Option<ShardMix>,
}

impl TxnProfile {
    /// The Table 1 profile with the given read probability.
    ///
    /// # Panics
    /// Panics if `read_prob` is outside `[0, 1]`.
    pub fn table1(read_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&read_prob),
            "read probability out of range: {read_prob}"
        );
        TxnProfile {
            min_items: 1,
            max_items: 5,
            read_prob,
            think_min: 1,
            think_max: 3,
            idle_min: 2,
            idle_max: 10,
            access: AccessDistribution::Uniform,
            sorted_access: false,
            shard_mix: None,
        }
    }

    /// Draw a think time.
    pub fn draw_think(&self, rng: &mut RngStream) -> SimTime {
        SimTime::new(rng.uniform_incl(self.think_min, self.think_max))
    }

    /// Draw an idle time.
    pub fn draw_idle(&self, rng: &mut RngStream) -> SimTime {
        SimTime::new(rng.uniform_incl(self.idle_min, self.idle_max))
    }

    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self, pool_size: u32) -> Result<(), String> {
        if self.min_items == 0 {
            return Err("min_items must be at least 1".into());
        }
        if self.min_items > self.max_items {
            return Err(format!(
                "min_items ({}) exceeds max_items ({})",
                self.min_items, self.max_items
            ));
        }
        if self.max_items > pool_size {
            return Err(format!(
                "max_items ({}) exceeds item pool size ({pool_size})",
                self.max_items
            ));
        }
        if !(0.0..=1.0).contains(&self.read_prob) {
            return Err(format!("read_prob out of [0,1]: {}", self.read_prob));
        }
        if self.think_min > self.think_max {
            return Err("think_min exceeds think_max".into());
        }
        if self.idle_min > self.idle_max {
            return Err("idle_min exceeds idle_max".into());
        }
        if let Some(mix) = &self.shard_mix {
            if !(0.0..=1.0).contains(&mix.cross_frac) {
                return Err(format!(
                    "shard_mix.cross_frac out of [0,1]: {}",
                    mix.cross_frac
                ));
            }
            if mix.shard_theta.is_nan() || mix.shard_theta < 0.0 {
                return Err(format!(
                    "shard_mix.shard_theta must be non-negative: {}",
                    mix.shard_theta
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let p = TxnProfile::table1(0.6);
        assert_eq!((p.min_items, p.max_items), (1, 5));
        assert_eq!((p.think_min, p.think_max), (1, 3));
        assert_eq!((p.idle_min, p.idle_max), (2, 10));
        assert_eq!(p.read_prob, 0.6);
        assert!(p.validate(25).is_ok());
    }

    #[test]
    fn draws_respect_bounds() {
        let p = TxnProfile::table1(0.5);
        let mut rng = RngStream::new(5);
        for _ in 0..500 {
            let t = p.draw_think(&mut rng).units();
            assert!((1..=3).contains(&t));
            let i = p.draw_idle(&mut rng).units();
            assert!((2..=10).contains(&i));
        }
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let mut p = TxnProfile::table1(0.5);
        p.min_items = 0;
        assert!(p.validate(25).is_err());

        let mut p = TxnProfile::table1(0.5);
        p.min_items = 6;
        p.max_items = 5;
        assert!(p.validate(25).is_err());

        let mut p = TxnProfile::table1(0.5);
        p.max_items = 30;
        assert!(p.validate(25).is_err());

        let mut p = TxnProfile::table1(0.5);
        p.think_min = 9;
        assert!(p.validate(25).is_err());
    }

    #[test]
    #[should_panic(expected = "read probability")]
    fn invalid_read_prob_panics() {
        TxnProfile::table1(1.5);
    }
}
