//! # g2pl-workload
//!
//! Transaction workload generation for the g-2PL reproduction.
//!
//! The paper's system model (§4 / Table 1): identical clients, one
//! transaction at a time per client, each transaction accessing 1–5
//! distinct items uniformly drawn from a deliberately small pool of M = 25
//! hot items; each access is a read with probability `pr`; requests are
//! issued *sequentially*, separated by a think time uniform on 1–3 units;
//! a finished (or aborted) transaction is replaced after an idle time
//! uniform on 2–10 units.
//!
//! * [`profile::TxnProfile`] — the per-client statistical profile;
//! * [`dist::AccessDistribution`] — uniform (the paper) plus Zipf-skewed
//!   item selection (extension for hot/cold ablations);
//! * [`generator::TxnGenerator`] — draws [`generator::TxnSpec`]s;
//! * [`trace::Trace`] — record/replay of generated workloads so two
//!   protocol engines can be driven by *identical* transaction streams.

pub mod dist;
pub mod generator;
pub mod profile;
pub mod trace;

pub use dist::AccessDistribution;
pub use generator::{AccessMode, TxnGenerator, TxnSpec};
pub use profile::{ShardMix, TxnProfile};
pub use trace::Trace;
