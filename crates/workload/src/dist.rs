//! Item-selection distributions.
//!
//! The paper draws items uniformly from a small pool ("M is purposely
//! kept small to emulate hot data access"). We additionally provide a
//! Zipf-skewed selection so the benches can study a *mixed* hot/cold
//! database, an extension the paper's conclusion motivates ("the more a
//! certain data item is requested … more is the performance gain").

use g2pl_simcore::RngStream;
use serde::{Deserialize, Serialize};

/// How a transaction's items are drawn from the pool of `M` items.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AccessDistribution {
    /// Uniform over the whole pool — the paper's model.
    Uniform,
    /// Zipf with exponent `theta` (> 0): item 0 is the hottest. Drawn by
    /// inversion over the precomputable harmonic weights.
    Zipf {
        /// Skew exponent; 0 degenerates to uniform, ~0.99 is the classic
        /// TPC-C-style hot skew.
        theta: f64,
    },
}

impl AccessDistribution {
    /// Draw one item index from `0..pool`.
    ///
    /// # Panics
    /// Panics if `pool == 0`.
    pub fn draw_one(&self, pool: usize, rng: &mut RngStream) -> u32 {
        assert!(pool > 0, "empty pool");
        match self {
            AccessDistribution::Uniform => rng.uniform_incl(0, pool as u64 - 1) as u32,
            AccessDistribution::Zipf { theta } => {
                let weights = zipf_cdf(pool, *theta);
                let u = rng.unit_f64();
                let idx = weights.partition_point(|&c| c < u) as u32;
                idx.min(pool as u32 - 1)
            }
        }
    }

    /// Draw `k` *distinct* item indices from `0..pool`.
    ///
    /// # Panics
    /// Panics if `k > pool`.
    pub fn draw_distinct(&self, k: usize, pool: usize, rng: &mut RngStream) -> Vec<u32> {
        assert!(k <= pool, "cannot draw {k} distinct items from {pool}");
        match self {
            AccessDistribution::Uniform => rng.distinct(k, pool),
            AccessDistribution::Zipf { theta } => {
                let weights = zipf_cdf(pool, *theta);
                let mut out: Vec<u32> = Vec::with_capacity(k);
                // Rejection on duplicates: k ≤ 5 and pool ≥ 25 in every
                // paper configuration, so retries are rare.
                while out.len() < k {
                    let u = rng.unit_f64();
                    let idx = weights.partition_point(|&c| c < u) as u32;
                    let idx = idx.min(pool as u32 - 1);
                    if !out.contains(&idx) {
                        out.push(idx);
                    }
                }
                out
            }
        }
    }
}

/// Cumulative Zipf distribution over `n` ranks with exponent `theta`.
pub(crate) fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    assert!(n > 0, "empty pool");
    assert!(theta >= 0.0, "negative Zipf exponent");
    let mut cdf = Vec::with_capacity(n);
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
        cdf.push(sum);
    }
    for c in &mut cdf {
        *c /= sum;
    }
    cdf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distinct_covers_pool() {
        let mut rng = RngStream::new(2);
        let d = AccessDistribution::Uniform;
        let mut seen = [false; 25];
        for _ in 0..500 {
            for i in d.draw_distinct(5, 25, &mut rng) {
                seen[i as usize] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "every item should eventually appear"
        );
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = RngStream::new(3);
        let d = AccessDistribution::Zipf { theta: 1.0 };
        let mut counts = [0u64; 25];
        for _ in 0..5000 {
            for i in d.draw_distinct(1, 25, &mut rng) {
                counts[i as usize] += 1;
            }
        }
        assert!(
            counts[0] > counts[24] * 3,
            "rank 0 ({}) should dominate rank 24 ({})",
            counts[0],
            counts[24]
        );
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let mut rng = RngStream::new(4);
        let d = AccessDistribution::Zipf { theta: 0.0 };
        let mut counts = [0u64; 10];
        let n = 20_000;
        for _ in 0..n {
            for i in d.draw_distinct(1, 10, &mut rng) {
                counts[i as usize] += 1;
            }
        }
        let expect = n as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < expect * 0.15,
                "rank {i} count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn distinct_holds_for_zipf() {
        let mut rng = RngStream::new(5);
        let d = AccessDistribution::Zipf { theta: 1.2 };
        for _ in 0..200 {
            let mut v = d.draw_distinct(5, 25, &mut rng);
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), 5);
        }
    }

    #[test]
    fn cdf_is_monotone_and_normalised() {
        let cdf = zipf_cdf(25, 0.8);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((cdf[24] - 1.0).abs() < 1e-12);
    }
}
