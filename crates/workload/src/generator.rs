//! Transaction spec generation.

use crate::dist::zipf_cdf;
use crate::profile::TxnProfile;
use g2pl_simcore::{ItemId, RngStream};
use serde::{Deserialize, Serialize};

/// Whether an access reads or writes the item.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// Shared access.
    Read,
    /// Exclusive access.
    Write,
}

impl AccessMode {
    /// True for [`AccessMode::Write`].
    pub fn is_write(self) -> bool {
        self == AccessMode::Write
    }
}

/// The full access list of one transaction, in issue order.
///
/// Accesses are issued sequentially by the client (§4: "requests for data
/// items are generated sequentially, with each request being generated
/// only after the previous request has been granted").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// `(item, mode)` pairs in issue order; items are distinct.
    pub accesses: Vec<(ItemId, AccessMode)>,
}

impl TxnSpec {
    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when the spec has no accesses (never produced by the
    /// generator; exists for completeness).
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// True when every access is a read.
    pub fn is_read_only(&self) -> bool {
        self.accesses.iter().all(|(_, m)| !m.is_write())
    }

    /// The access at issue position `idx`.
    pub fn access(&self, idx: usize) -> (ItemId, AccessMode) {
        self.accesses[idx]
    }
}

/// Draws [`TxnSpec`]s according to a [`TxnProfile`] over a pool of
/// `num_shards * items_per_shard` items (shard `s` owns the contiguous
/// range `s*items_per_shard .. (s+1)*items_per_shard`).
#[derive(Clone, Debug)]
pub struct TxnGenerator {
    profile: TxnProfile,
    num_shards: u32,
    items_per_shard: u32,
    /// Cumulative shard-popularity distribution, precomputed when the
    /// profile has a shard mix and the space has ≥2 shards.
    shard_cdf: Option<Vec<f64>>,
}

impl TxnGenerator {
    /// A generator for `profile` over a single-shard pool of `pool_size`
    /// items (the paper's layout).
    ///
    /// # Panics
    /// Panics if the profile fails validation against the pool size.
    pub fn new(profile: TxnProfile, pool_size: u32) -> Self {
        Self::new_sharded(profile, 1, pool_size)
    }

    /// A generator over `num_shards` shards of `items_per_shard` items
    /// each. When the profile carries a [`crate::ShardMix`] and the
    /// space has at least two shards, draws become placement-aware;
    /// otherwise items are drawn over the whole pool exactly as the
    /// unsharded generator would.
    ///
    /// # Panics
    /// Panics if the profile fails validation against the pool size.
    pub fn new_sharded(profile: TxnProfile, num_shards: u32, items_per_shard: u32) -> Self {
        let pool_size = num_shards * items_per_shard;
        profile
            .validate(pool_size)
            // lint:allow(L3): documented `# Panics` contract: an invalid profile is a caller bug
            .unwrap_or_else(|e| panic!("invalid profile: {e}"));
        let shard_cdf = match (&profile.shard_mix, num_shards) {
            (Some(mix), n) if n >= 2 => Some(zipf_cdf(n as usize, mix.shard_theta)),
            _ => None,
        };
        TxnGenerator {
            profile,
            num_shards,
            items_per_shard,
            shard_cdf,
        }
    }

    /// The profile this generator draws from.
    pub fn profile(&self) -> &TxnProfile {
        &self.profile
    }

    /// Total items across every shard.
    fn pool_size(&self) -> u32 {
        self.num_shards * self.items_per_shard
    }

    /// Draw one transaction spec.
    pub fn draw(&self, rng: &mut RngStream) -> TxnSpec {
        let k =
            rng.uniform_incl(self.profile.min_items as u64, self.profile.max_items as u64) as usize;
        let mut items = match &self.shard_cdf {
            None => self
                .profile
                .access
                .draw_distinct(k, self.pool_size() as usize, rng),
            Some(cdf) => self.draw_placed(k, cdf, rng),
        };
        if self.profile.sorted_access {
            items.sort_unstable();
        }
        let accesses = items
            .into_iter()
            .map(|i| {
                let mode = if rng.bernoulli(self.profile.read_prob) {
                    AccessMode::Read
                } else {
                    AccessMode::Write
                };
                (ItemId::new(i), mode)
            })
            .collect();
        TxnSpec { accesses }
    }

    /// Draw one shard index from the popularity distribution.
    fn draw_shard(&self, cdf: &[f64], rng: &mut RngStream) -> u32 {
        let u = rng.unit_f64();
        (cdf.partition_point(|&c| c < u) as u32).min(self.num_shards - 1)
    }

    /// Placement-aware selection of `k` distinct items.
    ///
    /// Single-home transactions draw every item inside one popularity-
    /// weighted home shard (`k` capped at the shard size). Multi-home
    /// transactions draw each item's shard independently, then — if the
    /// draws happened to collapse onto one shard — re-home the last item
    /// so the transaction really crosses.
    fn draw_placed(&self, k: usize, cdf: &[f64], rng: &mut RngStream) -> Vec<u32> {
        // lint:allow(L3): draw() built `cdf` from a present shard_mix
        let mix = self.profile.shard_mix.as_ref().expect("cdf implies mix");
        let per_shard = self.items_per_shard as usize;
        let home = self.draw_shard(cdf, rng);
        let cross = k >= 2 && rng.bernoulli(mix.cross_frac);
        if !cross {
            let k = k.min(per_shard);
            return self
                .profile
                .access
                .draw_distinct(k, per_shard, rng)
                .into_iter()
                .map(|i| home * self.items_per_shard + i)
                .collect();
        }
        let mut out: Vec<u32> = Vec::with_capacity(k);
        while out.len() < k {
            let last = out.len() == k - 1;
            let single_homed_so_far = out
                .iter()
                .all(|&i| i / self.items_per_shard == out[0] / self.items_per_shard);
            let shard = if last && single_homed_so_far {
                // Force the crossing: re-draw until the shard differs
                // from the (unique) one used so far.
                let used = out[0] / self.items_per_shard;
                loop {
                    let s = self.draw_shard(cdf, rng);
                    if s != used {
                        break s;
                    }
                }
            } else {
                self.draw_shard(cdf, rng)
            };
            let item = shard * self.items_per_shard + self.profile.access.draw_one(per_shard, rng);
            if !out.contains(&item) {
                out.push(item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(pr: f64) -> TxnGenerator {
        TxnGenerator::new(TxnProfile::table1(pr), 25)
    }

    #[test]
    fn sizes_respect_profile_bounds() {
        let g = generator(0.5);
        let mut rng = RngStream::new(1);
        let mut seen_min = false;
        let mut seen_max = false;
        for _ in 0..1000 {
            let s = g.draw(&mut rng);
            assert!((1..=5).contains(&s.len()));
            seen_min |= s.len() == 1;
            seen_max |= s.len() == 5;
        }
        assert!(seen_min && seen_max);
    }

    #[test]
    fn items_are_distinct_and_in_pool() {
        let g = generator(0.5);
        let mut rng = RngStream::new(2);
        for _ in 0..500 {
            let s = g.draw(&mut rng);
            let mut items: Vec<u32> = s.accesses.iter().map(|(i, _)| i.0).collect();
            assert!(items.iter().all(|&i| i < 25));
            items.sort_unstable();
            items.dedup();
            assert_eq!(items.len(), s.len());
        }
    }

    #[test]
    fn read_prob_extremes() {
        let mut rng = RngStream::new(3);
        let all_reads = generator(1.0);
        let all_writes = generator(0.0);
        for _ in 0..100 {
            assert!(all_reads.draw(&mut rng).is_read_only());
            assert!(all_writes
                .draw(&mut rng)
                .accesses
                .iter()
                .all(|(_, m)| m.is_write()));
        }
    }

    #[test]
    fn read_fraction_approximates_pr() {
        let g = generator(0.6);
        let mut rng = RngStream::new(4);
        let mut reads = 0u64;
        let mut total = 0u64;
        for _ in 0..3000 {
            for (_, m) in g.draw(&mut rng).accesses {
                total += 1;
                reads += u64::from(!m.is_write());
            }
        }
        let frac = reads as f64 / total as f64;
        assert!((frac - 0.6).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generator(0.5);
        let mut a = RngStream::new(9);
        let mut b = RngStream::new(9);
        for _ in 0..100 {
            assert_eq!(g.draw(&mut a), g.draw(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "invalid profile")]
    fn oversized_profile_panics() {
        let mut p = TxnProfile::table1(0.5);
        p.max_items = 26;
        TxnGenerator::new(p, 25);
    }

    fn shard_of(item: u32, items_per_shard: u32) -> u32 {
        item / items_per_shard
    }

    fn shards_touched(spec: &TxnSpec, items_per_shard: u32) -> usize {
        let mut shards: Vec<u32> = spec
            .accesses
            .iter()
            .map(|(i, _)| shard_of(i.0, items_per_shard))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards.len()
    }

    #[test]
    fn sharded_generator_without_mix_matches_unsharded_exactly() {
        // Same profile, same pool, same seed: the sharded constructor
        // with no mix must replay the unsharded stream bit for bit.
        let flat = TxnGenerator::new(TxnProfile::table1(0.5), 24);
        let sharded = TxnGenerator::new_sharded(TxnProfile::table1(0.5), 4, 6);
        let mut a = RngStream::new(77);
        let mut b = RngStream::new(77);
        for _ in 0..300 {
            assert_eq!(flat.draw(&mut a), sharded.draw(&mut b));
        }
    }

    #[test]
    fn cross_frac_controls_multi_home_fraction() {
        use crate::profile::ShardMix;
        let mut p = TxnProfile::table1(0.5);
        p.min_items = 2; // every txn is crossing-eligible
        p.shard_mix = Some(ShardMix::uniform(0.3));
        let g = TxnGenerator::new_sharded(p, 4, 8);
        let mut rng = RngStream::new(11);
        let mut crossing = 0u64;
        let n = 4000;
        for _ in 0..n {
            let s = g.draw(&mut rng);
            assert!(s.len() >= 2);
            if shards_touched(&s, 8) >= 2 {
                crossing += 1;
            }
        }
        let frac = crossing as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "multi-home fraction {frac}");
    }

    #[test]
    fn cross_frac_extremes() {
        use crate::profile::ShardMix;
        let mut p = TxnProfile::table1(0.5);
        p.min_items = 2;
        let mut rng = RngStream::new(12);
        for (frac, want_cross) in [(0.0, false), (1.0, true)] {
            let mut prof = p.clone();
            prof.shard_mix = Some(ShardMix::uniform(frac));
            let g = TxnGenerator::new_sharded(prof, 4, 8);
            for _ in 0..300 {
                let s = g.draw(&mut rng);
                assert_eq!(shards_touched(&s, 8) >= 2, want_cross, "frac {frac}");
            }
        }
    }

    #[test]
    fn shard_theta_skews_shard_popularity() {
        use crate::profile::ShardMix;
        let mut p = TxnProfile::table1(0.5);
        p.shard_mix = Some(ShardMix {
            cross_frac: 0.2,
            shard_theta: 1.2,
        });
        let g = TxnGenerator::new_sharded(p, 8, 4);
        let mut rng = RngStream::new(13);
        let mut counts = [0u64; 8];
        for _ in 0..4000 {
            for (item, _) in g.draw(&mut rng).accesses {
                counts[shard_of(item.0, 4) as usize] += 1;
            }
        }
        assert!(
            counts[0] > counts[7] * 3,
            "shard 0 ({}) should dominate shard 7 ({})",
            counts[0],
            counts[7]
        );
    }

    #[test]
    fn sharded_draws_stay_distinct_and_deterministic() {
        use crate::profile::ShardMix;
        let mut p = TxnProfile::table1(0.5);
        p.shard_mix = Some(ShardMix {
            cross_frac: 0.5,
            shard_theta: 0.8,
        });
        let g = TxnGenerator::new_sharded(p, 4, 2); // tiny shards stress dedup
        let mut a = RngStream::new(14);
        let mut b = RngStream::new(14);
        for _ in 0..500 {
            let s = g.draw(&mut a);
            assert_eq!(s, g.draw(&mut b));
            let mut items: Vec<u32> = s.accesses.iter().map(|(i, _)| i.0).collect();
            assert!(items.iter().all(|&i| i < 8));
            items.sort_unstable();
            items.dedup();
            assert_eq!(items.len(), s.len());
        }
    }
}
