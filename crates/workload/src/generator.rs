//! Transaction spec generation.

use crate::profile::TxnProfile;
use g2pl_simcore::{ItemId, RngStream};
use serde::{Deserialize, Serialize};

/// Whether an access reads or writes the item.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// Shared access.
    Read,
    /// Exclusive access.
    Write,
}

impl AccessMode {
    /// True for [`AccessMode::Write`].
    pub fn is_write(self) -> bool {
        self == AccessMode::Write
    }
}

/// The full access list of one transaction, in issue order.
///
/// Accesses are issued sequentially by the client (§4: "requests for data
/// items are generated sequentially, with each request being generated
/// only after the previous request has been granted").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// `(item, mode)` pairs in issue order; items are distinct.
    pub accesses: Vec<(ItemId, AccessMode)>,
}

impl TxnSpec {
    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when the spec has no accesses (never produced by the
    /// generator; exists for completeness).
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// True when every access is a read.
    pub fn is_read_only(&self) -> bool {
        self.accesses.iter().all(|(_, m)| !m.is_write())
    }

    /// The access at issue position `idx`.
    pub fn access(&self, idx: usize) -> (ItemId, AccessMode) {
        self.accesses[idx]
    }
}

/// Draws [`TxnSpec`]s according to a [`TxnProfile`] over a pool of
/// `pool_size` items.
#[derive(Clone, Debug)]
pub struct TxnGenerator {
    profile: TxnProfile,
    pool_size: u32,
}

impl TxnGenerator {
    /// A generator for `profile` over `pool_size` items.
    ///
    /// # Panics
    /// Panics if the profile fails validation against the pool size.
    pub fn new(profile: TxnProfile, pool_size: u32) -> Self {
        profile
            .validate(pool_size)
            // lint:allow(L3): documented `# Panics` contract: an invalid profile is a caller bug
            .unwrap_or_else(|e| panic!("invalid profile: {e}"));
        TxnGenerator { profile, pool_size }
    }

    /// The profile this generator draws from.
    pub fn profile(&self) -> &TxnProfile {
        &self.profile
    }

    /// Draw one transaction spec.
    pub fn draw(&self, rng: &mut RngStream) -> TxnSpec {
        let k =
            rng.uniform_incl(self.profile.min_items as u64, self.profile.max_items as u64) as usize;
        let mut items = self
            .profile
            .access
            .draw_distinct(k, self.pool_size as usize, rng);
        if self.profile.sorted_access {
            items.sort_unstable();
        }
        let accesses = items
            .into_iter()
            .map(|i| {
                let mode = if rng.bernoulli(self.profile.read_prob) {
                    AccessMode::Read
                } else {
                    AccessMode::Write
                };
                (ItemId::new(i), mode)
            })
            .collect();
        TxnSpec { accesses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(pr: f64) -> TxnGenerator {
        TxnGenerator::new(TxnProfile::table1(pr), 25)
    }

    #[test]
    fn sizes_respect_profile_bounds() {
        let g = generator(0.5);
        let mut rng = RngStream::new(1);
        let mut seen_min = false;
        let mut seen_max = false;
        for _ in 0..1000 {
            let s = g.draw(&mut rng);
            assert!((1..=5).contains(&s.len()));
            seen_min |= s.len() == 1;
            seen_max |= s.len() == 5;
        }
        assert!(seen_min && seen_max);
    }

    #[test]
    fn items_are_distinct_and_in_pool() {
        let g = generator(0.5);
        let mut rng = RngStream::new(2);
        for _ in 0..500 {
            let s = g.draw(&mut rng);
            let mut items: Vec<u32> = s.accesses.iter().map(|(i, _)| i.0).collect();
            assert!(items.iter().all(|&i| i < 25));
            items.sort_unstable();
            items.dedup();
            assert_eq!(items.len(), s.len());
        }
    }

    #[test]
    fn read_prob_extremes() {
        let mut rng = RngStream::new(3);
        let all_reads = generator(1.0);
        let all_writes = generator(0.0);
        for _ in 0..100 {
            assert!(all_reads.draw(&mut rng).is_read_only());
            assert!(all_writes
                .draw(&mut rng)
                .accesses
                .iter()
                .all(|(_, m)| m.is_write()));
        }
    }

    #[test]
    fn read_fraction_approximates_pr() {
        let g = generator(0.6);
        let mut rng = RngStream::new(4);
        let mut reads = 0u64;
        let mut total = 0u64;
        for _ in 0..3000 {
            for (_, m) in g.draw(&mut rng).accesses {
                total += 1;
                reads += u64::from(!m.is_write());
            }
        }
        let frac = reads as f64 / total as f64;
        assert!((frac - 0.6).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generator(0.5);
        let mut a = RngStream::new(9);
        let mut b = RngStream::new(9);
        for _ in 0..100 {
            assert_eq!(g.draw(&mut a), g.draw(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "invalid profile")]
    fn oversized_profile_panics() {
        let mut p = TxnProfile::table1(0.5);
        p.max_items = 26;
        TxnGenerator::new(p, 25);
    }
}
