//! Workload traces: record a generated transaction stream once, replay it
//! into several protocol engines.
//!
//! Paired comparison (g-2PL vs s-2PL on the *same* transactions) removes
//! workload variance from the protocol difference — the simulation-side
//! analogue of the paper running both protocols under one parameterisation.

use crate::generator::{TxnGenerator, TxnSpec};
use g2pl_simcore::{ClientId, RngStream};
use serde::{Deserialize, Serialize};

/// A per-client sequence of transaction specs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    per_client: Vec<Vec<TxnSpec>>,
}

impl Trace {
    /// Record a trace of `txns_per_client` transactions for each of
    /// `clients` clients, each client drawing from its own derived stream.
    pub fn record(
        generator: &TxnGenerator,
        clients: u32,
        txns_per_client: usize,
        master_seed: u64,
    ) -> Self {
        let per_client = (0..clients)
            .map(|c| {
                let mut rng = RngStream::derive_indexed(master_seed, "trace-client", c as u64);
                (0..txns_per_client)
                    .map(|_| generator.draw(&mut rng))
                    .collect()
            })
            .collect();
        Trace { per_client }
    }

    /// Number of clients in the trace.
    pub fn clients(&self) -> u32 {
        self.per_client.len() as u32
    }

    /// The `n`-th transaction of `client`, or `None` past the end.
    pub fn get(&self, client: ClientId, n: usize) -> Option<&TxnSpec> {
        self.per_client.get(client.index())?.get(n)
    }

    /// Total number of specs across all clients.
    pub fn total_txns(&self) -> usize {
        self.per_client.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TxnProfile;

    fn trace() -> Trace {
        let g = TxnGenerator::new(TxnProfile::table1(0.5), 25);
        Trace::record(&g, 4, 10, 77)
    }

    #[test]
    fn shape_matches_request() {
        let t = trace();
        assert_eq!(t.clients(), 4);
        assert_eq!(t.total_txns(), 40);
        assert!(t.get(ClientId::new(0), 9).is_some());
        assert!(t.get(ClientId::new(0), 10).is_none());
        assert!(t.get(ClientId::new(4), 0).is_none());
    }

    #[test]
    fn recording_is_deterministic() {
        let g = TxnGenerator::new(TxnProfile::table1(0.5), 25);
        let a = Trace::record(&g, 3, 5, 123);
        let b = Trace::record(&g, 3, 5, 123);
        for c in 0..3 {
            for n in 0..5 {
                assert_eq!(a.get(ClientId::new(c), n), b.get(ClientId::new(c), n));
            }
        }
    }

    #[test]
    fn clients_have_independent_streams() {
        let t = trace();
        let a = t.get(ClientId::new(0), 0).unwrap();
        let b = t.get(ClientId::new(1), 0).unwrap();
        // Not a hard guarantee for any single pair, but with 10 specs each
        // the full sequences should differ.
        let seq_a: Vec<&TxnSpec> = (0..10)
            .map(|n| t.get(ClientId::new(0), n).unwrap())
            .collect();
        let seq_b: Vec<&TxnSpec> = (0..10)
            .map(|n| t.get(ClientId::new(1), n).unwrap())
            .collect();
        assert!(seq_a != seq_b || a != b);
    }
}
