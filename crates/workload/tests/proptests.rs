//! Property-based tests of the workload generator.

use g2pl_simcore::RngStream;
use g2pl_workload::{AccessDistribution, Trace, TxnGenerator, TxnProfile};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = (TxnProfile, u32)> {
    (
        1u32..6,       // min items
        0u32..4,       // extra max over min
        0u32..=10,     // read prob tenths
        1u64..5,       // think min
        0u64..5,       // think extra
        1u64..10,      // idle min
        0u64..10,      // idle extra
        any::<bool>(), // zipf?
        any::<bool>(), // sorted?
        10u32..60,     // pool
    )
        .prop_map(
            |(min_i, extra_i, pr, tmin, textra, imin, iextra, zipf, sorted, pool)| {
                let mut p = TxnProfile::table1(f64::from(pr) / 10.0);
                p.min_items = min_i;
                p.max_items = (min_i + extra_i).min(pool);
                p.think_min = tmin;
                p.think_max = tmin + textra;
                p.idle_min = imin;
                p.idle_max = imin + iextra;
                p.sorted_access = sorted;
                if zipf {
                    p.access = AccessDistribution::Zipf { theta: 0.9 };
                }
                (p, pool)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generated specs always satisfy the profile bounds.
    #[test]
    fn specs_satisfy_profile((profile, pool) in arb_profile(), seed in any::<u64>()) {
        let generator = TxnGenerator::new(profile.clone(), pool);
        let mut rng = RngStream::new(seed);
        for _ in 0..50 {
            let spec = generator.draw(&mut rng);
            prop_assert!(spec.len() >= profile.min_items as usize);
            prop_assert!(spec.len() <= profile.max_items as usize);
            let mut items: Vec<u32> = spec.accesses.iter().map(|(i, _)| i.0).collect();
            prop_assert!(items.iter().all(|&i| i < pool));
            if profile.sorted_access {
                prop_assert!(items.windows(2).all(|w| w[0] < w[1]), "sorted order violated");
            }
            items.sort_unstable();
            items.dedup();
            prop_assert_eq!(items.len(), spec.len(), "duplicate items");
            if profile.read_prob == 0.0 {
                prop_assert!(spec.accesses.iter().all(|(_, m)| m.is_write()));
            }
            if profile.read_prob == 1.0 {
                prop_assert!(spec.is_read_only());
            }
        }
    }

    /// Timing draws stay inside the configured windows.
    #[test]
    fn timing_draws_in_bounds((profile, _) in arb_profile(), seed in any::<u64>()) {
        let mut rng = RngStream::new(seed);
        for _ in 0..100 {
            let t = profile.draw_think(&mut rng).units();
            prop_assert!(t >= profile.think_min && t <= profile.think_max);
            let i = profile.draw_idle(&mut rng).units();
            prop_assert!(i >= profile.idle_min && i <= profile.idle_max);
        }
    }

    /// Traces replay identically and cover the requested shape.
    #[test]
    fn trace_shape_and_determinism(
        clients in 1u32..6,
        txns in 1usize..10,
        seed in any::<u64>(),
    ) {
        let generator = TxnGenerator::new(TxnProfile::table1(0.5), 25);
        let a = Trace::record(&generator, clients, txns, seed);
        let b = Trace::record(&generator, clients, txns, seed);
        prop_assert_eq!(a.clients(), clients);
        prop_assert_eq!(a.total_txns(), clients as usize * txns);
        for c in 0..clients {
            for n in 0..txns {
                prop_assert_eq!(
                    a.get(g2pl_simcore::ClientId::new(c), n),
                    b.get(g2pl_simcore::ClientId::new(c), n)
                );
            }
        }
    }
}
