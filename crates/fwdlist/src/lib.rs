//! # g2pl-fwdlist
//!
//! The forward-list machinery that turns s-2PL into g-2PL (§3.2–3.4 of
//! the paper).
//!
//! While a data item is checked out of the server, new lock requests for
//! it accumulate in a **collection window** ([`window::CollectionWindow`]).
//! When the item returns, the server closes the window: the pending
//! requests are ordered into a **forward list** ([`list::ForwardList`]) —
//! a sequence of *segments*, each either a group of concurrent readers or
//! a single writer — and the item migrates down the list client-to-client,
//! merging each lock release with the next lock grant.
//!
//! The **deadlock-avoidance optimization** (§3.3) requires all forward
//! lists to order any two transactions the same way. We maintain a global
//! **transaction precedence DAG** ([`dag::PrecedenceDag`]) of the orders
//! already fixed by dispatched lists, and close every window with a stable
//! topological sort against it ([`order::OrderingRule`]).

pub mod dag;
pub mod list;
pub mod order;
pub mod window;

pub use dag::PrecedenceDag;
pub use list::{FlEntry, ForwardList, Segment};
pub use order::OrderingRule;
pub use window::CollectionWindow;
