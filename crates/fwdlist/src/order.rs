//! Window-close ordering rules (§3.2–3.3).
//!
//! "The forward list may be created according to one of several ordering
//! rules to improve performance further. The default rule is
//! First-In-First-Out… the second and third optimizations capture two
//! ordering rules that attempt to reduce the number of deadlocks."

use crate::dag::PrecedenceDag;
use crate::list::{FlEntry, ForwardList};
use crate::window::PendingReq;
use serde::{Deserialize, Serialize};

/// How a collection window is ordered into a forward list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderingRule {
    /// Base priority of otherwise-unconstrained requests.
    pub base: BaseOrder,
    /// Respect (and extend) the global precedence DAG — the §3.3 deadlock
    /// avoidance optimization. When false, the order ignores precedence
    /// constraints and deadlocks must be *detected* instead.
    pub consistent: bool,
    /// Move the window's readers ahead of its writers (subject to DAG
    /// constraints when `consistent`), maximising the size of shared
    /// reader groups. An extension ablation, not part of the paper's
    /// default g-2PL.
    pub coalesce_readers: bool,
}

/// Base priority among unconstrained pending requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaseOrder {
    /// Arrival order — the paper's default.
    Fifo,
    /// Requests of transactions with more restarts sort first ("repeated
    /// (cyclic) restarts can be avoided … using an aging mechanism"),
    /// ties broken by arrival.
    Aging,
}

impl Default for OrderingRule {
    /// The paper's evaluated g-2PL configuration: FIFO base with
    /// consistent (deadlock-avoiding) reordering.
    fn default() -> Self {
        OrderingRule {
            base: BaseOrder::Fifo,
            consistent: true,
            coalesce_readers: false,
        }
    }
}

impl OrderingRule {
    /// Plain FIFO without deadlock avoidance (the "basic g-2PL" of §3.2).
    pub fn fifo() -> Self {
        OrderingRule {
            base: BaseOrder::Fifo,
            consistent: false,
            coalesce_readers: false,
        }
    }

    /// Order the drained window into a forward list and, when
    /// `consistent`, record the produced order into `dag` so later windows
    /// stay consistent with it.
    ///
    /// The order produced is a linear extension of `dag` restricted to the
    /// window (when `consistent`), choosing at each step the
    /// minimum-priority request among those with no unplaced DAG
    /// predecessor inside the window. Because the DAG is acyclic, a valid
    /// choice always exists — this is the formal reason the §3.3 scheme
    /// "does not require predeclaration" and cannot get stuck at window
    /// close.
    pub fn order(self, mut pending: Vec<PendingReq>, dag: &mut PrecedenceDag) -> ForwardList {
        let key = |r: &PendingReq| -> (u8, i64, u64) {
            let reader_rank = if self.coalesce_readers {
                u8::from(r.entry.mode.is_exclusive())
            } else {
                0
            };
            let age_rank = match self.base {
                BaseOrder::Fifo => 0,
                BaseOrder::Aging => -i64::from(r.restarts),
            };
            (reader_rank, age_rank, r.arrival)
        };

        let mut out: Vec<FlEntry> = Vec::with_capacity(pending.len());
        while !pending.is_empty() {
            // Eligible: no DAG predecessor still unplaced in the window.
            let eligible = |i: usize, pending: &[PendingReq]| -> bool {
                if !self.consistent {
                    return true;
                }
                let me = pending[i].entry.txn;
                pending
                    .iter()
                    .enumerate()
                    .all(|(j, other)| j == i || !dag.precedes(other.entry.txn, me))
            };
            let pick = (0..pending.len())
                .filter(|&i| eligible(i, &pending))
                .min_by_key(|&i| key(&pending[i]))
                // lint:allow(L3): the DAG is acyclic, so some pending request is unconstrained
                .expect("acyclic DAG always leaves an eligible request");
            let req = pending.remove(pick);
            out.push(req.entry);
        }

        if self.consistent {
            for w in out.windows(2) {
                // Chain edges are enough: precedence is transitive.
                if !dag.precedes(w[0].txn, w[1].txn) {
                    dag.add_order(w[0].txn, w[1].txn);
                }
            }
        }
        ForwardList::from_entries(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g2pl_lockmgr::LockMode::{Exclusive, Shared};
    use g2pl_simcore::{ClientId, TxnId};

    fn req(t: u32, mode: g2pl_lockmgr::LockMode, arrival: u64, restarts: u32) -> PendingReq {
        PendingReq {
            entry: FlEntry::new(TxnId::new(t), ClientId::new(t), mode),
            arrival,
            restarts,
        }
    }

    fn txns(fl: &ForwardList) -> Vec<u32> {
        fl.entries().iter().map(|e| e.txn.0).collect()
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut dag = PrecedenceDag::new();
        let pending = vec![
            req(3, Exclusive, 5, 0),
            req(1, Shared, 2, 0),
            req(2, Shared, 9, 0),
        ];
        let fl = OrderingRule::fifo().order(pending, &mut dag);
        assert_eq!(txns(&fl), vec![1, 3, 2]);
        assert_eq!(dag.constrained_count(), 0, "fifo must not touch the DAG");
    }

    #[test]
    fn consistent_order_respects_existing_constraints() {
        let mut dag = PrecedenceDag::new();
        // A previous window fixed 2 before 1.
        dag.add_order(TxnId::new(2), TxnId::new(1));
        let pending = vec![req(1, Exclusive, 0, 0), req(2, Exclusive, 10, 0)];
        let fl = OrderingRule::default().order(pending, &mut dag);
        // FIFO would put 1 first, but the constraint forces 2 first.
        assert_eq!(txns(&fl), vec![2, 1]);
    }

    #[test]
    fn consistent_order_records_new_constraints() {
        let mut dag = PrecedenceDag::new();
        let pending = vec![req(5, Exclusive, 0, 0), req(6, Exclusive, 1, 0)];
        OrderingRule::default().order(pending, &mut dag);
        assert!(dag.precedes(TxnId::new(5), TxnId::new(6)));
        assert!(dag.is_acyclic());
    }

    #[test]
    fn transitive_constraints_respected() {
        let mut dag = PrecedenceDag::new();
        dag.add_order(TxnId::new(3), TxnId::new(2));
        dag.add_order(TxnId::new(2), TxnId::new(1));
        // 1 arrives first but transitively follows 3.
        let pending = vec![req(1, Shared, 0, 0), req(3, Shared, 99, 0)];
        let fl = OrderingRule::default().order(pending, &mut dag);
        assert_eq!(txns(&fl), vec![3, 1]);
    }

    #[test]
    fn aging_prioritises_restarted_txns() {
        let mut dag = PrecedenceDag::new();
        let rule = OrderingRule {
            base: BaseOrder::Aging,
            consistent: true,
            coalesce_readers: false,
        };
        let pending = vec![
            req(1, Exclusive, 0, 0),
            req(2, Exclusive, 5, 3), // restarted thrice: jumps the queue
        ];
        let fl = rule.order(pending, &mut dag);
        assert_eq!(txns(&fl), vec![2, 1]);
    }

    #[test]
    fn coalesce_readers_moves_reads_ahead() {
        let mut dag = PrecedenceDag::new();
        let rule = OrderingRule {
            base: BaseOrder::Fifo,
            consistent: true,
            coalesce_readers: true,
        };
        let pending = vec![
            req(1, Exclusive, 0, 0),
            req(2, Shared, 1, 0),
            req(3, Shared, 2, 0),
        ];
        let fl = rule.order(pending, &mut dag);
        assert_eq!(txns(&fl), vec![2, 3, 1]);
    }

    #[test]
    fn coalesce_readers_still_respects_dag() {
        let mut dag = PrecedenceDag::new();
        dag.add_order(TxnId::new(1), TxnId::new(2));
        let rule = OrderingRule {
            base: BaseOrder::Fifo,
            consistent: true,
            coalesce_readers: true,
        };
        // Reader 2 would coalesce ahead, but must follow writer 1.
        let pending = vec![req(1, Exclusive, 0, 0), req(2, Shared, 1, 0)];
        let fl = rule.order(pending, &mut dag);
        assert_eq!(txns(&fl), vec![1, 2]);
    }

    #[test]
    fn empty_window_orders_to_empty_list() {
        let mut dag = PrecedenceDag::new();
        let fl = OrderingRule::default().order(Vec::new(), &mut dag);
        assert!(fl.is_empty());
    }

    #[test]
    fn any_two_windows_are_mutually_consistent() {
        // Close two windows over overlapping transaction sets; the pairwise
        // order of shared members must agree.
        let mut dag = PrecedenceDag::new();
        let w1 = vec![
            req(1, Exclusive, 0, 0),
            req(2, Exclusive, 1, 0),
            req(3, Exclusive, 2, 0),
        ];
        let fl1 = OrderingRule::default().order(w1, &mut dag);
        // Second window sees 3 and 1 arrive in the *opposite* order.
        let w2 = vec![req(3, Exclusive, 0, 0), req(1, Exclusive, 1, 0)];
        let fl2 = OrderingRule::default().order(w2, &mut dag);
        let pos1 = |fl: &ForwardList, t: u32| fl.position_of(TxnId::new(t)).unwrap();
        assert!(pos1(&fl1, 1) < pos1(&fl1, 3));
        assert!(pos1(&fl2, 1) < pos1(&fl2, 3), "order must match window 1");
        assert!(dag.is_acyclic());
    }
}
