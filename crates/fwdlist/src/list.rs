//! Forward lists and their segment structure.

use g2pl_lockmgr::LockMode;
use g2pl_simcore::{ClientId, TxnId};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One entry of a forward list: a transaction at a client that will
/// receive the data item in the given mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlEntry {
    /// The transaction that requested the item.
    pub txn: TxnId,
    /// The client site the transaction runs at.
    pub client: ClientId,
    /// Shared (read) or exclusive (write) access.
    pub mode: LockMode,
}

impl FlEntry {
    /// Convenience constructor.
    pub fn new(txn: TxnId, client: ClientId, mode: LockMode) -> Self {
        FlEntry { txn, client, mode }
    }
}

/// A maximal run of the forward list that executes "together": either a
/// group of readers that all hold the item concurrently, or one writer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Segment {
    /// Index range of a maximal contiguous run of readers.
    Readers(Range<usize>),
    /// Index of a single writer.
    Writer(usize),
}

impl Segment {
    /// Index range covered by the segment.
    pub fn range(&self) -> Range<usize> {
        match self {
            Segment::Readers(r) => r.clone(),
            Segment::Writer(i) => *i..*i + 1,
        }
    }

    /// Index just past the segment.
    pub fn end(&self) -> usize {
        self.range().end
    }
}

/// An ordered forward list for one data item (§3.2): "a list with
/// appropriate markers to delimit the parallel shared accesses and the
/// serial exclusive access."
///
/// The list structure is pure data; the migration *protocol* interpreting
/// it lives in `g2pl-protocols`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardList {
    entries: Vec<FlEntry>,
}

impl ForwardList {
    /// An empty forward list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from entries in dispatch order.
    pub fn from_entries(entries: Vec<FlEntry>) -> Self {
        ForwardList { entries }
    }

    /// Append an entry at the tail.
    pub fn push(&mut self, e: FlEntry) {
        self.entries.push(e);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry at `idx`.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn entry(&self, idx: usize) -> FlEntry {
        self.entries[idx]
    }

    /// All entries in order.
    pub fn entries(&self) -> &[FlEntry] {
        &self.entries
    }

    /// Position of `txn` in the list.
    pub fn position_of(&self, txn: TxnId) -> Option<usize> {
        self.entries.iter().position(|e| e.txn == txn)
    }

    /// The segment starting at `start` (which must be a segment boundary:
    /// either 0, or just past a writer, or just past a reader group).
    ///
    /// Returns `None` when `start` is past the end of the list.
    pub fn segment_at(&self, start: usize) -> Option<Segment> {
        if start >= self.entries.len() {
            return None;
        }
        if self.entries[start].mode.is_exclusive() {
            return Some(Segment::Writer(start));
        }
        let mut end = start;
        while end < self.entries.len() && self.entries[end].mode.is_shared() {
            end += 1;
        }
        Some(Segment::Readers(start..end))
    }

    /// The first segment of the list.
    pub fn first_segment(&self) -> Option<Segment> {
        self.segment_at(0)
    }

    /// The segment *containing* index `idx`.
    pub fn segment_of(&self, idx: usize) -> Segment {
        assert!(idx < self.entries.len(), "index {idx} out of range");
        if self.entries[idx].mode.is_exclusive() {
            return Segment::Writer(idx);
        }
        let mut start = idx;
        while start > 0 && self.entries[start - 1].mode.is_shared() {
            start -= 1;
        }
        // lint:allow(L3): caller-checked index; segment_at(start) <= idx always exists
        self.segment_at(start).expect("idx is in range")
    }

    /// The segment after the one containing `idx`, if any.
    pub fn next_segment_after(&self, idx: usize) -> Option<Segment> {
        self.segment_at(self.segment_of(idx).end())
    }

    /// Index of the first writer at or after `idx`, if any.
    pub fn next_writer_at_or_after(&self, idx: usize) -> Option<usize> {
        (idx..self.entries.len()).find(|&i| self.entries[i].mode.is_exclusive())
    }

    /// Iterate over all segments in order.
    pub fn segments(&self) -> SegmentIter<'_> {
        SegmentIter { list: self, at: 0 }
    }
}

/// Iterator over the segments of a forward list.
pub struct SegmentIter<'a> {
    list: &'a ForwardList,
    at: usize,
}

impl Iterator for SegmentIter<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        let seg = self.list.segment_at(self.at)?;
        self.at = seg.end();
        Some(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive, Shared};

    fn e(t: u32, mode: LockMode) -> FlEntry {
        FlEntry::new(TxnId::new(t), ClientId::new(t), mode)
    }

    fn rwlist() -> ForwardList {
        // [R0 R1] W2 [R3] W4 W5 [R6 R7 R8]
        ForwardList::from_entries(vec![
            e(0, Shared),
            e(1, Shared),
            e(2, Exclusive),
            e(3, Shared),
            e(4, Exclusive),
            e(5, Exclusive),
            e(6, Shared),
            e(7, Shared),
            e(8, Shared),
        ])
    }

    #[test]
    fn segments_partition_the_list() {
        let fl = rwlist();
        let segs: Vec<Segment> = fl.segments().collect();
        assert_eq!(
            segs,
            vec![
                Segment::Readers(0..2),
                Segment::Writer(2),
                Segment::Readers(3..4),
                Segment::Writer(4),
                Segment::Writer(5),
                Segment::Readers(6..9),
            ]
        );
        // The segments tile the index space exactly.
        let covered: usize = segs.iter().map(|s| s.range().len()).sum();
        assert_eq!(covered, fl.len());
    }

    #[test]
    fn segment_of_finds_containing_group() {
        let fl = rwlist();
        assert_eq!(fl.segment_of(0), Segment::Readers(0..2));
        assert_eq!(fl.segment_of(1), Segment::Readers(0..2));
        assert_eq!(fl.segment_of(2), Segment::Writer(2));
        assert_eq!(fl.segment_of(7), Segment::Readers(6..9));
    }

    #[test]
    fn next_segment_navigation() {
        let fl = rwlist();
        assert_eq!(fl.next_segment_after(0), Some(Segment::Writer(2)));
        assert_eq!(fl.next_segment_after(1), Some(Segment::Writer(2)));
        assert_eq!(fl.next_segment_after(2), Some(Segment::Readers(3..4)));
        assert_eq!(fl.next_segment_after(8), None);
    }

    #[test]
    fn next_writer_lookup() {
        let fl = rwlist();
        assert_eq!(fl.next_writer_at_or_after(0), Some(2));
        assert_eq!(fl.next_writer_at_or_after(3), Some(4));
        assert_eq!(fl.next_writer_at_or_after(5), Some(5));
        assert_eq!(fl.next_writer_at_or_after(6), None);
    }

    #[test]
    fn empty_list_has_no_segments() {
        let fl = ForwardList::new();
        assert!(fl.first_segment().is_none());
        assert_eq!(fl.segments().count(), 0);
        assert!(fl.is_empty());
    }

    #[test]
    fn single_writer_list() {
        let fl = ForwardList::from_entries(vec![e(0, Exclusive)]);
        assert_eq!(fl.first_segment(), Some(Segment::Writer(0)));
        assert_eq!(fl.segments().count(), 1);
    }

    #[test]
    fn position_of_txn() {
        let fl = rwlist();
        assert_eq!(fl.position_of(TxnId::new(4)), Some(4));
        assert_eq!(fl.position_of(TxnId::new(99)), None);
    }

    #[test]
    fn segment_range_accessors() {
        assert_eq!(Segment::Writer(3).range(), 3..4);
        assert_eq!(Segment::Readers(1..4).end(), 4);
    }
}
