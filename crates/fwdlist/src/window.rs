//! Collection windows (§3.2).
//!
//! "We define the period during which the server does not possess the lock
//! on a data item and is collecting requests as the *collection window*
//! for the data item." A [`CollectionWindow`] is that request buffer: it
//! accumulates pending requests for one item while the item is checked
//! out, and is drained (ordered into a forward list) when the item comes
//! home.

use crate::list::FlEntry;
use serde::{Deserialize, Serialize};

/// A pending request inside a collection window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingReq {
    /// Who wants the item, where, and in which mode.
    pub entry: FlEntry,
    /// Global arrival sequence number (FIFO base order).
    pub arrival: u64,
    /// How many times this transaction has been aborted and restarted —
    /// input to the aging ordering rule that prevents cyclic restarts.
    pub restarts: u32,
}

/// The pending-request buffer for one data item.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CollectionWindow {
    pending: Vec<PendingReq>,
}

impl CollectionWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Add a request to the window.
    pub fn push(&mut self, req: PendingReq) {
        debug_assert!(
            !self.pending.iter().any(|p| p.entry.txn == req.entry.txn),
            "duplicate pending request for {:?}",
            req.entry.txn
        );
        self.pending.push(req);
    }

    /// Remove the pending request of `txn` (it aborted); returns whether a
    /// request was removed.
    pub fn remove_txn(&mut self, txn: g2pl_simcore::TxnId) -> bool {
        let before = self.pending.len();
        self.pending.retain(|p| p.entry.txn != txn);
        before != self.pending.len()
    }

    /// Pending requests in arrival order (the order pushed).
    pub fn pending(&self) -> &[PendingReq] {
        &self.pending
    }

    /// Drain up to `cap` requests (all of them when `cap` is `None`),
    /// *in arrival order*, leaving the overflow pending for the next
    /// window. The cap is the forward-list length limit swept in Fig 11.
    pub fn drain(&mut self, cap: Option<usize>) -> Vec<PendingReq> {
        let n = cap.map_or(self.pending.len(), |c| c.min(self.pending.len()));
        self.pending.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use g2pl_lockmgr::LockMode;
    use g2pl_simcore::{ClientId, TxnId};

    fn req(t: u32, arrival: u64) -> PendingReq {
        PendingReq {
            entry: FlEntry::new(TxnId::new(t), ClientId::new(t), LockMode::Shared),
            arrival,
            restarts: 0,
        }
    }

    #[test]
    fn push_and_drain_all() {
        let mut w = CollectionWindow::new();
        w.push(req(1, 10));
        w.push(req(2, 11));
        assert_eq!(w.len(), 2);
        let drained = w.drain(None);
        assert_eq!(drained.len(), 2);
        assert!(w.is_empty());
        assert_eq!(drained[0].entry.txn, TxnId::new(1));
    }

    #[test]
    fn capped_drain_leaves_overflow() {
        let mut w = CollectionWindow::new();
        for i in 0..5 {
            w.push(req(i, i as u64));
        }
        let first = w.drain(Some(3));
        assert_eq!(first.len(), 3);
        assert_eq!(w.len(), 2);
        // Overflow drains in original order next time.
        let second = w.drain(Some(10));
        assert_eq!(second[0].entry.txn, TxnId::new(3));
        assert_eq!(second[1].entry.txn, TxnId::new(4));
    }

    #[test]
    fn remove_txn_filters_pending() {
        let mut w = CollectionWindow::new();
        w.push(req(1, 0));
        w.push(req(2, 1));
        assert!(w.remove_txn(TxnId::new(1)));
        assert!(!w.remove_txn(TxnId::new(1)));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pending()[0].entry.txn, TxnId::new(2));
    }

    #[test]
    fn drain_zero_cap_returns_nothing() {
        let mut w = CollectionWindow::new();
        w.push(req(1, 0));
        assert!(w.drain(Some(0)).is_empty());
        assert_eq!(w.len(), 1);
    }
}
