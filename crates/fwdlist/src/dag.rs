//! The global transaction precedence DAG (§3.3).
//!
//! "The forward list for each data item can be represented by a
//! transaction precedence graph… In order to ensure linear ordering,
//! transaction precedence graphs need to be made consistent. That is, two
//! transactions Ti and Tj must follow the same order in every precedence
//! graph involving Ti and Tj."
//!
//! We maintain the *union* of all per-item precedence graphs as one DAG.
//! Every window close orders its pending requests by a linear extension of
//! this DAG and inserts the resulting edges, so the union stays acyclic by
//! construction and any two dispatched forward lists order any two
//! transactions consistently — which eliminates deadlocks among
//! transactions whose conflicting requests land in the same collection
//! windows.

use g2pl_simcore::TxnId;
use std::collections::{BTreeMap, BTreeSet};

/// An acyclic precedence relation over active transactions.
#[derive(Clone, Debug, Default)]
pub struct PrecedenceDag {
    succ: BTreeMap<TxnId, BTreeSet<TxnId>>,
    pred: BTreeMap<TxnId, BTreeSet<TxnId>>,
}

impl PrecedenceDag {
    /// Empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `before` precedes `after` in some forward list.
    ///
    /// # Panics
    /// Panics (in debug builds) if the edge would create a cycle — the
    /// window-close ordering must only add edges along a linear extension,
    /// so a cycle here is an engine bug, not an input condition.
    pub fn add_order(&mut self, before: TxnId, after: TxnId) {
        assert_ne!(before, after, "a transaction cannot precede itself");
        debug_assert!(
            !self.precedes(after, before),
            "adding {before:?} -> {after:?} would create a precedence cycle"
        );
        self.succ.entry(before).or_default().insert(after);
        self.pred.entry(after).or_default().insert(before);
    }

    /// True when `a` (transitively) precedes `b`.
    pub fn precedes(&self, a: TxnId, b: TxnId) -> bool {
        if a == b {
            return false;
        }
        // DFS from a.
        let mut stack = vec![a];
        let mut seen = BTreeSet::new();
        while let Some(t) = stack.pop() {
            if let Some(next) = self.succ.get(&t) {
                for &n in next {
                    if n == b {
                        return true;
                    }
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        false
    }

    /// Remove a finished transaction, preserving transitive constraints:
    /// every predecessor becomes a direct predecessor of every successor.
    ///
    /// Keeping the closure matters: if `a < t` and `t < b` were fixed by
    /// dispatched lists, then after `t` commits the serialization order
    /// between the still-active `a` and `b` is already determined and
    /// future windows must not order them the other way.
    pub fn remove_txn(&mut self, txn: TxnId) {
        let preds = self.pred.remove(&txn).unwrap_or_default();
        let succs = self.succ.remove(&txn).unwrap_or_default();
        for &p in &preds {
            if let Some(s) = self.succ.get_mut(&p) {
                s.remove(&txn);
            }
        }
        for &s in &succs {
            if let Some(p) = self.pred.get_mut(&s) {
                p.remove(&txn);
            }
        }
        for &p in &preds {
            for &s in &succs {
                if p != s {
                    self.succ.entry(p).or_default().insert(s);
                    self.pred.entry(s).or_default().insert(p);
                }
            }
        }
    }

    /// Number of transactions with at least one constraint.
    pub fn constrained_count(&self) -> usize {
        let mut nodes: BTreeSet<TxnId> = self.succ.keys().copied().collect();
        nodes.extend(self.pred.keys().copied());
        nodes.len()
    }

    /// Verify acyclicity by Kahn's algorithm (test/debug helper; the DAG
    /// is acyclic by construction in production use).
    pub fn is_acyclic(&self) -> bool {
        let mut indeg: BTreeMap<TxnId, usize> = BTreeMap::new();
        let mut nodes: BTreeSet<TxnId> = BTreeSet::new();
        for (&n, succs) in &self.succ {
            nodes.insert(n);
            for &s in succs {
                nodes.insert(s);
                *indeg.entry(s).or_insert(0) += 1;
            }
        }
        let mut ready: Vec<TxnId> = nodes
            .iter()
            .copied()
            .filter(|n| indeg.get(n).copied().unwrap_or(0) == 0)
            .collect();
        let mut removed = 0usize;
        while let Some(n) = ready.pop() {
            removed += 1;
            if let Some(succs) = self.succ.get(&n) {
                for &s in succs {
                    // lint:allow(L3): every edge target was given an indegree above
                    let d = indeg.get_mut(&s).expect("edge target has indegree");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(s);
                    }
                }
            }
        }
        removed == nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }

    #[test]
    fn direct_and_transitive_precedence() {
        let mut d = PrecedenceDag::new();
        d.add_order(t(1), t(2));
        d.add_order(t(2), t(3));
        assert!(d.precedes(t(1), t(2)));
        assert!(d.precedes(t(1), t(3)));
        assert!(!d.precedes(t(3), t(1)));
        assert!(!d.precedes(t(1), t(1)));
        assert!(d.is_acyclic());
    }

    #[test]
    fn removal_preserves_transitive_constraints() {
        let mut d = PrecedenceDag::new();
        d.add_order(t(1), t(2));
        d.add_order(t(2), t(3));
        d.remove_txn(t(2));
        assert!(d.precedes(t(1), t(3)), "closure edge must survive removal");
        assert!(!d.precedes(t(1), t(2)));
        assert!(!d.precedes(t(2), t(3)));
        assert!(d.is_acyclic());
    }

    #[test]
    fn removal_of_unknown_txn_is_noop() {
        let mut d = PrecedenceDag::new();
        d.add_order(t(1), t(2));
        d.remove_txn(t(99));
        assert!(d.precedes(t(1), t(2)));
    }

    #[test]
    fn diamond_closure() {
        let mut d = PrecedenceDag::new();
        d.add_order(t(1), t(2));
        d.add_order(t(1), t(3));
        d.add_order(t(2), t(4));
        d.add_order(t(3), t(4));
        d.remove_txn(t(2));
        d.remove_txn(t(3));
        assert!(d.precedes(t(1), t(4)));
        assert!(d.is_acyclic());
    }

    #[test]
    fn constrained_count_tracks_nodes() {
        let mut d = PrecedenceDag::new();
        assert_eq!(d.constrained_count(), 0);
        d.add_order(t(1), t(2));
        assert_eq!(d.constrained_count(), 2);
        d.add_order(t(2), t(3));
        assert_eq!(d.constrained_count(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot precede itself")]
    fn self_order_panics() {
        let mut d = PrecedenceDag::new();
        d.add_order(t(1), t(1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "precedence cycle")]
    fn cycle_insertion_panics_in_debug() {
        let mut d = PrecedenceDag::new();
        d.add_order(t(1), t(2));
        d.add_order(t(2), t(1));
    }
}
