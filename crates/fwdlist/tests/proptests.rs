//! Property-based tests of the forward-list machinery: ordering rules
//! must produce permutations that respect the precedence DAG, keep the
//! DAG acyclic, and stay mutually consistent across windows.

use g2pl_fwdlist::order::BaseOrder;
use g2pl_fwdlist::window::PendingReq;
use g2pl_fwdlist::{FlEntry, ForwardList, OrderingRule, PrecedenceDag, Segment};
use g2pl_lockmgr::LockMode;
use g2pl_simcore::{ClientId, TxnId};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_window(max_txn: u32) -> impl Strategy<Value = Vec<PendingReq>> {
    proptest::collection::vec((0..max_txn, any::<bool>(), 0..4u32), 1..12).prop_map(|v| {
        let mut seen = HashSet::new();
        v.into_iter()
            .filter(|(t, _, _)| seen.insert(*t))
            .enumerate()
            .map(|(i, (t, exclusive, restarts))| PendingReq {
                entry: FlEntry::new(
                    TxnId::new(t),
                    ClientId::new(t),
                    if exclusive {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    },
                ),
                arrival: i as u64,
                restarts,
            })
            .collect()
    })
}

fn arb_rule() -> impl Strategy<Value = OrderingRule> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(aging, consistent, coalesce)| {
        OrderingRule {
            base: if aging {
                BaseOrder::Aging
            } else {
                BaseOrder::Fifo
            },
            consistent,
            coalesce_readers: coalesce,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Ordering any window yields a permutation of its requests.
    #[test]
    fn order_is_a_permutation(pending in arb_window(30), rule in arb_rule()) {
        let mut dag = PrecedenceDag::new();
        let want: HashSet<TxnId> = pending.iter().map(|p| p.entry.txn).collect();
        let fl = rule.order(pending, &mut dag);
        let got: HashSet<TxnId> = fl.entries().iter().map(|e| e.txn).collect();
        prop_assert_eq!(want, got);
        prop_assert!(dag.is_acyclic());
    }

    /// With consistency on, successive windows over overlapping
    /// transaction sets order shared members identically.
    #[test]
    fn consistent_windows_agree_pairwise(
        w1 in arb_window(12),
        w2 in arb_window(12),
    ) {
        let rule = OrderingRule::default();
        let mut dag = PrecedenceDag::new();
        let fl1 = rule.order(w1, &mut dag);
        let fl2 = rule.order(w2, &mut dag);
        for a in fl1.entries() {
            for b in fl1.entries() {
                let (p1a, p1b) = (fl1.position_of(a.txn).unwrap(), fl1.position_of(b.txn).unwrap());
                if let (Some(p2a), Some(p2b)) = (fl2.position_of(a.txn), fl2.position_of(b.txn)) {
                    if p1a < p1b {
                        prop_assert!(
                            p2a < p2b,
                            "{:?} before {:?} in window 1 but after in window 2",
                            a.txn, b.txn
                        );
                    }
                }
            }
        }
        prop_assert!(dag.is_acyclic());
    }

    /// The produced order is a linear extension of the pre-existing DAG.
    #[test]
    fn order_respects_prior_constraints(
        pending in arb_window(10),
        edges in proptest::collection::vec((0u32..10, 0u32..10), 0..10),
    ) {
        let mut dag = PrecedenceDag::new();
        for (a, b) in edges {
            if a != b && !dag.precedes(TxnId::new(b), TxnId::new(a)) {
                dag.add_order(TxnId::new(a), TxnId::new(b));
            }
        }
        let snapshot = dag.clone();
        let fl = OrderingRule::default().order(pending, &mut dag);
        for (i, a) in fl.entries().iter().enumerate() {
            for b in &fl.entries()[i + 1..] {
                prop_assert!(
                    !snapshot.precedes(b.txn, a.txn),
                    "order violates prior constraint {:?} < {:?}",
                    b.txn, a.txn
                );
            }
        }
    }

    /// Segments tile the list: every position belongs to exactly one
    /// segment, reader segments contain only readers, writer segments
    /// exactly one writer.
    #[test]
    fn segments_tile_any_list(pending in arb_window(30)) {
        let mut dag = PrecedenceDag::new();
        let fl = OrderingRule::fifo().order(pending, &mut dag);
        let mut covered = vec![false; fl.len()];
        for seg in fl.segments() {
            match seg {
                Segment::Readers(r) => {
                    prop_assert!(!r.is_empty());
                    for i in r {
                        prop_assert!(fl.entry(i).mode.is_shared());
                        prop_assert!(!covered[i], "position {i} covered twice");
                        covered[i] = true;
                    }
                }
                Segment::Writer(i) => {
                    prop_assert!(fl.entry(i).mode.is_exclusive());
                    prop_assert!(!covered[i], "position {i} covered twice");
                    covered[i] = true;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "uncovered positions");
    }

    /// `segment_of` agrees with the segment iterator.
    #[test]
    fn segment_of_matches_iteration(pending in arb_window(30)) {
        let mut dag = PrecedenceDag::new();
        let fl = OrderingRule::fifo().order(pending, &mut dag);
        for seg in fl.segments() {
            for i in seg.range() {
                prop_assert_eq!(fl.segment_of(i), seg.clone());
            }
        }
    }

    /// DAG closure survives arbitrary removal orders: if a chain
    /// a -> b -> c is inserted, removing b keeps a before c.
    #[test]
    fn dag_closure_under_removal(chain in proptest::collection::vec(0u32..30, 3..10)) {
        let mut chain = chain;
        chain.dedup();
        prop_assume!(chain.len() >= 3);
        let mut seen = HashSet::new();
        chain.retain(|&t| seen.insert(t));
        prop_assume!(chain.len() >= 3);

        let mut dag = PrecedenceDag::new();
        for w in chain.windows(2) {
            dag.add_order(TxnId::new(w[0]), TxnId::new(w[1]));
        }
        // Remove every interior node.
        for &mid in &chain[1..chain.len() - 1] {
            dag.remove_txn(TxnId::new(mid));
        }
        prop_assert!(dag.precedes(
            TxnId::new(chain[0]),
            TxnId::new(*chain.last().unwrap())
        ));
        prop_assert!(dag.is_acyclic());
    }
}

/// The paper's §3.3 example, end-to-end: two read-only transactions
/// requesting x and y in opposite orders land in windows whose consistent
/// ordering agrees, so no forward-list-level inconsistency arises.
#[test]
fn paper_read_dependency_example_orders_consistently() {
    let rule = OrderingRule::default();
    let mut dag = PrecedenceDag::new();
    let t1 = TxnId::new(1);
    let t2 = TxnId::new(2);
    let req = |t: TxnId, arrival: u64| PendingReq {
        entry: FlEntry::new(t, ClientId::new(t.0), LockMode::Shared),
        arrival,
        restarts: 0,
    };
    // Window for x sees t1 then t2; window for y sees t2 then t1.
    let fx = rule.order(vec![req(t1, 0), req(t2, 1)], &mut dag);
    let fy = rule.order(vec![req(t2, 2), req(t1, 3)], &mut dag);
    let x1 = fx.position_of(t1).unwrap();
    let x2 = fx.position_of(t2).unwrap();
    let y1 = fy.position_of(t1).unwrap();
    let y2 = fy.position_of(t2).unwrap();
    assert_eq!(
        (x1 < x2),
        (y1 < y2),
        "both lists must order t1/t2 the same way"
    );
}

/// Reader coalescing produces one leading reader group when
/// unconstrained.
#[test]
fn coalescing_forms_single_group() {
    let rule = OrderingRule {
        base: BaseOrder::Fifo,
        consistent: false,
        coalesce_readers: true,
    };
    let mut dag = PrecedenceDag::new();
    let pending = (0..8u32)
        .map(|i| PendingReq {
            entry: FlEntry::new(
                TxnId::new(i),
                ClientId::new(i),
                if i % 2 == 0 {
                    LockMode::Shared
                } else {
                    LockMode::Exclusive
                },
            ),
            arrival: u64::from(i),
            restarts: 0,
        })
        .collect();
    let fl: ForwardList = rule.order(pending, &mut dag);
    let segs: Vec<Segment> = fl.segments().collect();
    assert!(matches!(segs[0], Segment::Readers(ref r) if r.len() == 4));
    assert_eq!(segs.len(), 5, "one reader group then four writers");
}
