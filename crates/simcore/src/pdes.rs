//! Conservative parallel DES over per-partition calendars.
//!
//! The serial [`crate::Calendar`] totally orders one run's events. To
//! execute a sharded simulation on multiple cores without giving up
//! bit-for-bit determinism, this module implements the classic
//! *conservative window* scheme (Chandy–Misra style, synchronous
//! variant): the model is split into logical processes (LPs), each
//! owning a private calendar, and time advances in global windows of
//! width `lookahead`.
//!
//! The contract that makes it correct:
//!
//! * every cross-LP interaction is an explicit message handed to the
//!   executor, delivered no sooner than `lookahead` after the sender's
//!   current time (in the database model, `lookahead` is the minimum
//!   one-way link latency — no remote effect can propagate faster than
//!   the network);
//! * within a window `[T, T + lookahead)`, where `T` is the global
//!   minimum next-event time, each LP processes only its own events, so
//!   LPs are data-independent and can run on any number of threads;
//! * messages emitted during a window are exchanged at the barrier and
//!   sorted into receiver calendars in a fixed order (source LP index,
//!   then emission order), so calendar sequence numbers — and therefore
//!   every tie-break — are identical no matter how threads interleave.
//!
//! The result: `run(..., workers = 1)` and `run(..., workers = k)`
//! visit the exact same event trajectory, which the scale-out tests
//! assert down to the last bit.

use crate::time::SimTime;

/// Buffer of outgoing cross-LP messages emitted during one window.
///
/// Order is preserved: the executor delivers a source's messages in
/// emission order, after all messages from lower-indexed sources.
pub struct Outbox<M> {
    sends: Vec<(usize, SimTime, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { sends: Vec::new() }
    }
}

impl<M> Outbox<M> {
    /// Queue `msg` for delivery to LP `dest` at absolute time `at`.
    ///
    /// `at` must be at or after the current window's horizon — i.e. at
    /// least `lookahead` after any event the sender processed this
    /// window. The executor asserts this conservative bound at the
    /// exchange barrier.
    pub fn send(&mut self, dest: usize, at: SimTime, msg: M) {
        self.sends.push((dest, at, msg));
    }
}

/// One logical process: a partition of the model owning a private
/// calendar.
pub trait Lp: Send {
    /// Cross-LP message type.
    type Msg: Send;

    /// Timestamp of the earliest pending local event, or `None` when
    /// this LP is idle. An idle LP may still be woken by a delivery.
    fn next_time(&mut self) -> Option<SimTime>;

    /// Process every local event with timestamp strictly before
    /// `horizon`, including events the processing itself schedules
    /// inside the window. Cross-LP sends go through `outbox`; local
    /// scheduling stays on the LP's own calendar.
    fn execute(&mut self, horizon: SimTime, outbox: &mut Outbox<Self::Msg>);

    /// Accept a message sent by another LP (or by this LP through the
    /// exchange), scheduling its effect at time `at`. Called at the
    /// window barrier, in deterministic order.
    fn deliver(&mut self, at: SimTime, msg: Self::Msg);
}

/// Executor accounting for one [`run`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PdesReport {
    /// Synchronization windows executed.
    pub rounds: u64,
    /// Messages exchanged across LP boundaries.
    pub cross_messages: u64,
}

/// Run the LP set to quiescence: rounds of *window execute → barrier →
/// message exchange* until no LP has a pending event.
///
/// `workers == 1` executes windows serially; `workers > 1` fans each
/// window over that many OS threads (capped at the LP count). Both
/// produce bit-identical LP end states by construction.
///
/// # Panics
/// Panics if `lookahead` is zero (a zero-latency link admits no
/// conservative window), or if an LP emits a cross-LP message that
/// would arrive before the window horizon (a causality violation — the
/// model's minimum link latency is smaller than the promised
/// lookahead).
pub fn run<L: Lp>(lps: &mut [L], lookahead: SimTime, workers: usize) -> PdesReport {
    assert!(
        lookahead > SimTime::ZERO,
        "conservative PDES needs a positive lookahead"
    );
    let n = lps.len();
    let workers = workers.clamp(1, n.max(1));
    let mut report = PdesReport::default();
    let mut outboxes: Vec<Outbox<L::Msg>> = (0..n).map(|_| Outbox::default()).collect();
    loop {
        let Some(t_min) = lps.iter_mut().filter_map(Lp::next_time).min() else {
            return report;
        };
        let horizon = t_min.after(lookahead);
        if workers == 1 {
            for (lp, outbox) in lps.iter_mut().zip(outboxes.iter_mut()) {
                lp.execute(horizon, outbox);
            }
        } else {
            // Disjoint contiguous chunks per worker; the scoped threads
            // borrow their chunk mutably and join at the window barrier.
            let chunk = n.div_ceil(workers);
            std::thread::scope(|scope| {
                for (lp_chunk, outbox_chunk) in
                    lps.chunks_mut(chunk).zip(outboxes.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for (lp, outbox) in lp_chunk.iter_mut().zip(outbox_chunk.iter_mut()) {
                            lp.execute(horizon, outbox);
                        }
                    });
                }
            });
        }
        // Exchange in fixed (source LP, emission) order so receiver
        // calendars assign identical sequence numbers on every run and
        // at every worker count.
        for outbox in &mut outboxes {
            for (dest, at, msg) in outbox.sends.drain(..) {
                assert!(
                    at >= horizon,
                    "cross-LP message at {at:?} violates the window horizon {horizon:?}"
                );
                lps[dest].deliver(at, msg);
                report.cross_messages += 1;
            }
        }
        report.rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::Calendar;

    /// Toy model: a ring of LPs passing a decrementing token; each hop
    /// takes exactly the link latency, and every LP also runs a local
    /// chatter timer to exercise intra-window scheduling.
    struct RingLp {
        index: usize,
        n: usize,
        latency: SimTime,
        cal: Calendar<RingEv>,
        log: Vec<(u64, u64)>, // (time, token)
        chatter: u64,
    }

    #[derive(PartialEq, Eq)]
    enum RingEv {
        Token(u64),
        Chatter(u64),
    }

    impl Lp for RingLp {
        type Msg = u64;

        fn next_time(&mut self) -> Option<SimTime> {
            self.cal.next_time()
        }

        fn execute(&mut self, horizon: SimTime, outbox: &mut Outbox<u64>) {
            while self.cal.next_time().is_some_and(|t| t < horizon) {
                // lint:allow(L3): guarded by the peek above
                let (now, ev) = self.cal.pop().expect("peeked");
                match ev {
                    RingEv::Token(t) => {
                        self.log.push((now.units(), t));
                        if t > 0 {
                            let dest = (self.index + 1) % self.n;
                            let at = now.after(self.latency);
                            if dest == self.index {
                                self.cal.schedule(at, RingEv::Token(t - 1));
                            } else {
                                outbox.send(dest, at, t - 1);
                            }
                        }
                    }
                    RingEv::Chatter(k) => {
                        self.chatter += 1;
                        if k > 0 {
                            // Sub-lookahead local event: must run in the
                            // same window it was scheduled in.
                            self.cal
                                .schedule(now.after(SimTime::new(1)), RingEv::Chatter(k - 1));
                        }
                    }
                }
            }
        }

        fn deliver(&mut self, at: SimTime, token: u64) {
            self.cal.schedule(at, RingEv::Token(token));
        }
    }

    fn ring(n: usize, hops: u64) -> Vec<RingLp> {
        let latency = SimTime::new(5);
        (0..n)
            .map(|index| {
                let mut cal = Calendar::new();
                if index == 0 {
                    cal.schedule(SimTime::new(3), RingEv::Token(hops));
                    cal.schedule(SimTime::new(1), RingEv::Chatter(7));
                }
                RingLp {
                    index,
                    n,
                    latency,
                    cal,
                    log: Vec::new(),
                    chatter: 0,
                }
            })
            .collect()
    }

    fn full_log(lps: &[RingLp]) -> Vec<(u64, usize, u64)> {
        let mut out = Vec::new();
        for lp in lps {
            for &(t, tok) in &lp.log {
                out.push((t, lp.index, tok));
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn token_walks_the_ring_at_link_latency() {
        let mut lps = ring(4, 9);
        let report = run(&mut lps, SimTime::new(5), 1);
        let log = full_log(&lps);
        assert_eq!(log.len(), 10, "token seen hops+1 times");
        // Hop i lands on LP (i % 4) at 3 + 5i.
        for (i, &(t, lp, tok)) in log.iter().enumerate() {
            let i = i as u64;
            assert_eq!(t, 3 + 5 * i);
            assert_eq!(lp as u64, i % 4);
            assert_eq!(tok, 9 - i);
        }
        assert_eq!(report.cross_messages, 9);
        assert_eq!(lps[0].chatter, 8, "local chatter all ran");
    }

    #[test]
    fn serial_and_parallel_agree_bit_for_bit() {
        for workers in [2, 3, 8] {
            let mut serial = ring(5, 23);
            let mut parallel = ring(5, 23);
            let rs = run(&mut serial, SimTime::new(5), 1);
            let rp = run(&mut parallel, SimTime::new(5), workers);
            assert_eq!(rs, rp);
            assert_eq!(full_log(&serial), full_log(&parallel), "workers={workers}");
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.chatter, b.chatter);
            }
        }
    }

    #[test]
    fn empty_lp_set_terminates_immediately() {
        let mut lps: Vec<RingLp> = Vec::new();
        let report = run(&mut lps, SimTime::new(1), 4);
        assert_eq!(report, PdesReport::default());
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let mut lps = ring(2, 1);
        run(&mut lps, SimTime::ZERO, 1);
    }

    #[test]
    #[should_panic(expected = "violates the window horizon")]
    fn undercutting_the_horizon_is_caught() {
        struct BadLp {
            cal: Calendar<()>,
        }
        impl Lp for BadLp {
            type Msg = ();
            fn next_time(&mut self) -> Option<SimTime> {
                self.cal.next_time()
            }
            fn execute(&mut self, _horizon: SimTime, outbox: &mut Outbox<()>) {
                if let Some((now, ())) = self.cal.pop() {
                    // Claims a 10-unit lookahead but sends at +1.
                    outbox.send(1, now.after(SimTime::new(1)), ());
                }
            }
            fn deliver(&mut self, at: SimTime, (): ()) {
                self.cal.schedule(at, ());
            }
        }
        let mut a = Calendar::new();
        a.schedule(SimTime::new(1), ());
        let mut lps = vec![
            BadLp { cal: a },
            BadLp {
                cal: Calendar::new(),
            },
        ];
        run(&mut lps, SimTime::new(10), 1);
    }
}
