//! Simulation time.
//!
//! The paper expresses every duration in abstract "simulation time units"
//! (Table 1) and notes that a conversion factor maps them to wall-clock
//! time (e.g. 1 unit = 0.5 ms makes the Table 2 latencies 0.5–375 ms).
//! We keep time as a `u64` wrapped in a newtype so that durations and
//! instants cannot be confused with other counters.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant (or duration) in simulation time units.
///
/// Arithmetic is saturating-free: overflow panics in debug builds, which is
/// the behaviour we want for a simulator (an overflowing clock is a bug,
/// not a value).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero, the start of every simulation run.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time; used as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw units.
    #[inline]
    pub const fn new(units: u64) -> Self {
        SimTime(units)
    }

    /// Raw unit count.
    #[inline]
    pub const fn units(self) -> u64 {
        self.0
    }

    /// `self + d`, as an explicit method for call-site clarity.
    #[inline]
    pub fn after(self, d: SimTime) -> SimTime {
        SimTime(self.0 + d.0)
    }

    /// Duration from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier > self` (a negative duration is always a bug).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimTime {
        assert!(
            earlier.0 <= self.0,
            "negative duration: {} since {}",
            self.0,
            earlier.0
        );
        SimTime(self.0 - earlier.0)
    }

    /// Convert to `f64` units (for statistics).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        self.since(rhs)
    }
}

impl From<u64> for SimTime {
    fn from(v: u64) -> Self {
        SimTime(v)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimTime::new(10);
        let b = SimTime::new(3);
        assert_eq!(a + b, SimTime::new(13));
        assert_eq!((a + b).since(a), b);
        assert_eq!(a.after(b), a + b);
        assert_eq!(a - b, SimTime::new(7));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        let _ = SimTime::new(1).since(SimTime::new(2));
    }

    #[test]
    fn ordering_matches_units() {
        assert!(SimTime::new(1) < SimTime::new(2));
        assert_eq!(SimTime::ZERO.units(), 0);
        assert!(SimTime::MAX > SimTime::new(u64::MAX - 1));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", SimTime::new(42)), "42");
        assert_eq!(format!("{:?}", SimTime::new(42)), "t42");
    }
}
