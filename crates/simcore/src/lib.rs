//! # g2pl-simcore
//!
//! Deterministic discrete-event simulation (DES) kernel used by every other
//! crate in the g-2PL reproduction workspace.
//!
//! The paper ("Network Latency Optimizations in Distributed Database
//! Systems", Banerjee & Chrysanthis, ICDE 1998) evaluated the s-2PL and
//! g-2PL protocols with a unit-time discrete simulation written in C. We
//! use the standard event-driven formulation instead: because every delay
//! in the model (network latency, think time, idle time) is an integral
//! number of simulation time units, the two formulations visit exactly the
//! same state trajectory; the event-driven one simply skips the empty
//! ticks.
//!
//! Design goals:
//!
//! * **Determinism.** Given the same seed, a simulation run produces
//!   bit-identical results. The event calendar breaks timestamp ties by
//!   insertion sequence number, and all randomness flows through
//!   explicitly-seeded [`rng::RngStream`]s.
//! * **No global state.** A [`calendar::Calendar`] is an ordinary value;
//!   many simulations can run concurrently on different threads.
//! * **Cheap events.** Events are plain enums owned by the calendar;
//!   scheduling is a binary-heap push.

pub mod calendar;
pub mod ids;
pub mod pdes;
pub mod rng;
pub mod slab;
pub mod time;

pub use calendar::{Calendar, EventHandle};
pub use ids::{ClientId, ItemId, ShardId, SiteId, TxnId, Version};
pub use rng::RngStream;
pub use slab::Slab;
pub use time::SimTime;
