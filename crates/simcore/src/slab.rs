//! Dense index-addressed maps for the engine hot paths.
//!
//! Transaction, item, and client ids in this workspace are dense
//! (`dense_id!` newtypes expose `.index()` precisely so they can subscript
//! vectors). A [`Slab`] is a map keyed by such an index: a plain `Vec`
//! that default-fills on growth, giving O(1) lookup with no pointer
//! chasing and — unlike hash maps — a deterministic iteration order, so
//! the `g2pl-lint` L1 rule is trivially satisfied wherever one is used.

/// A `Vec`-backed map from a dense index to `T`.
///
/// Reads out of bounds behave as reads of `T::default()`; writes grow the
/// backing vector on demand. `T::default()` is the "absent" value — use
/// `Slab<Option<V>>` when absence must be distinguishable from a default
/// payload.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    v: Vec<T>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab { v: Vec::new() }
    }
}

impl<T: Default> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty slab with room for `cap` slots before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            v: Vec::with_capacity(cap),
        }
    }

    /// Number of allocated slots (high-water mark of indices written).
    #[inline]
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True when no slot was ever written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Shared access to slot `i`, or `None` when `i` was never allocated.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        self.v.get(i)
    }

    /// Mutable access to slot `i` without growing, or `None` when `i` was
    /// never allocated.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        self.v.get_mut(i)
    }

    /// Mutable access to slot `i`, growing with defaults as needed.
    #[inline]
    pub fn ensure(&mut self, i: usize) -> &mut T {
        if self.v.len() <= i {
            self.v.resize_with(i + 1, T::default);
        }
        &mut self.v[i]
    }

    /// Iterate `(index, &value)` over allocated slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.v.iter().enumerate()
    }

    /// The allocated slots as a slice, in index order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_grows_and_get_reads_back() {
        let mut s: Slab<u32> = Slab::new();
        assert!(s.is_empty());
        assert_eq!(s.get(3), None);
        *s.ensure(3) = 7;
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(3), Some(&7));
        assert_eq!(s.get(2), Some(&0)); // default-filled
        assert_eq!(s.get(4), None);
    }

    #[test]
    fn get_mut_does_not_grow() {
        let mut s: Slab<Option<u8>> = Slab::new();
        assert!(s.get_mut(5).is_none());
        assert_eq!(s.len(), 0);
        *s.ensure(1) = Some(9);
        assert_eq!(s.get_mut(1).and_then(Option::take), Some(9));
        assert_eq!(s.get(1), Some(&None));
    }

    #[test]
    fn iter_is_in_index_order() {
        let mut s: Slab<u8> = Slab::new();
        *s.ensure(2) = 20;
        *s.ensure(0) = 10;
        let got: Vec<(usize, u8)> = s.iter().map(|(i, v)| (i, *v)).collect();
        assert_eq!(got, vec![(0, 10), (1, 0), (2, 20)]);
    }
}
