//! Seeded random-number streams.
//!
//! Every source of randomness in a simulation run flows through an
//! [`RngStream`] derived from the run's master seed, so runs are exactly
//! reproducible and independent replications (the paper uses 5 per data
//! point) are generated from documented, well-separated seeds.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, implemented
//! in-crate so the simulator has no external RNG dependency and the
//! stream of draws is stable across toolchain upgrades — a run's seed
//! fully identifies its trace, forever.

/// A named, seeded random stream.
///
/// Streams are derived from a master seed with a SplitMix64 hash of a
/// label, so adding a new consumer of randomness does not perturb the
/// draws seen by existing consumers (common random numbers across protocol
/// variants, which sharpens paired comparisons such as g-2PL vs s-2PL).
pub struct RngStream {
    state: [u64; 4],
}

/// SplitMix64 step: the standard seed-spreading finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngStream {
    /// A stream seeded directly from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::from_hashed(splitmix64(seed))
    }

    /// Derive an independent child stream from a master seed and a label.
    ///
    /// `derive(s, a)` and `derive(s, b)` are statistically independent for
    /// `a != b`, and both are deterministic functions of `s`.
    pub fn derive(master_seed: u64, label: &str) -> Self {
        let mut h = splitmix64(master_seed);
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        Self::from_hashed(h)
    }

    /// Derive one stream of an indexed family: `derive_indexed(s, "client",
    /// 3)` is byte-for-byte the stream `derive(s, "client-3")` would
    /// produce. Use this for per-entity streams (one per client, one per
    /// trial): the literal `prefix` keeps the family's name checkable for
    /// collisions by `g2pl-lint` (L4) without allocating a label string.
    pub fn derive_indexed(master_seed: u64, prefix: &str, n: u64) -> Self {
        let mut h = splitmix64(master_seed);
        for &b in prefix.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h ^ u64::from(b'-'));
        // Hash the decimal digits of `n` exactly as the formatted label
        // would contain them.
        let mut digits = [0u8; 20];
        let mut len = 0;
        let mut v = n;
        loop {
            digits[len] = b'0' + (v % 10) as u8;
            len += 1;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        for i in (0..len).rev() {
            h = splitmix64(h ^ u64::from(digits[i]));
        }
        Self::from_hashed(h)
    }

    /// Expand one well-mixed word into the full 256-bit xoshiro state via
    /// a SplitMix64 sequence, per the generator authors' recommendation.
    fn from_hashed(h: u64) -> Self {
        let mut sm = h;
        let mut state = [0u64; 4];
        for word in &mut state {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        RngStream { state }
    }

    /// Next raw draw: one xoshiro256++ step.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform draw in `[0, bound)` via Lemire's multiply-shift
    /// rejection method; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// This is the distribution Table 1 of the paper uses for think times
    /// (1–3), idle times (2–10) and items-per-transaction (1–5).
    pub fn uniform_incl(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Bernoulli draw: `true` with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit_f64() < p
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index into a collection of length `len` (> 0).
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from empty collection");
        self.below(len as u64) as usize
    }

    /// Draw `k` distinct values uniformly from `0..pool` (partial
    /// Fisher–Yates over a scratch vector). Used to pick the distinct data
    /// items a transaction accesses.
    pub fn distinct(&mut self, k: usize, pool: usize) -> Vec<u32> {
        assert!(k <= pool, "cannot draw {k} distinct from pool of {pool}");
        let mut scratch: Vec<u32> = (0..pool as u32).collect();
        for i in 0..k {
            let j = i + self.index(pool - i);
            scratch.swap(i, j);
        }
        scratch.truncate(k);
        scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_draws() {
        let mut a = RngStream::new(42);
        let mut b = RngStream::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_incl(0, 1000), b.uniform_incl(0, 1000));
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = RngStream::derive(42, "think");
        let mut b = RngStream::derive(42, "idle");
        let va: Vec<u64> = (0..32).map(|_| a.uniform_incl(0, u64::MAX / 2)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.uniform_incl(0, u64::MAX / 2)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_indexed_matches_formatted_label() {
        // The indexed form must reproduce the formatted-label streams it
        // replaced, byte for byte, or every seeded run would shift.
        for n in [0u64, 1, 7, 42, 999, 12_345, u64::MAX] {
            let mut a = RngStream::derive_indexed(42, "client", n);
            let mut b = RngStream::derive(42, &format!("client-{n}"));
            for _ in 0..64 {
                assert_eq!(
                    a.uniform_incl(0, u64::MAX),
                    b.uniform_incl(0, u64::MAX),
                    "n = {n}"
                );
            }
        }
    }

    #[test]
    fn derive_indexed_family_members_differ() {
        let mut a = RngStream::derive_indexed(42, "client", 1);
        let mut b = RngStream::derive_indexed(42, "client", 2);
        let va: Vec<u64> = (0..32).map(|_| a.uniform_incl(0, u64::MAX / 2)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.uniform_incl(0, u64::MAX / 2)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_incl_respects_bounds() {
        let mut r = RngStream::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.uniform_incl(2, 10);
            assert!((2..=10).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 10;
        }
        assert!(seen_lo && seen_hi, "endpoints should be reachable");
    }

    #[test]
    fn uniform_incl_full_range_does_not_overflow() {
        let mut r = RngStream::new(13);
        for _ in 0..10 {
            let _ = r.uniform_incl(0, u64::MAX);
        }
    }

    #[test]
    fn bernoulli_extremes_are_exact() {
        let mut r = RngStream::new(1);
        for _ in 0..100 {
            assert!(!r.bernoulli(0.0));
            assert!(r.bernoulli(1.0));
        }
    }

    #[test]
    fn bernoulli_mean_is_close() {
        let mut r = RngStream::new(3);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.25)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn distinct_draws_are_distinct_and_in_range() {
        let mut r = RngStream::new(9);
        for _ in 0..200 {
            let v = r.distinct(5, 25);
            assert_eq!(v.len(), 5);
            let mut s = v.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 5, "duplicates in {v:?}");
            assert!(v.iter().all(|&x| x < 25));
        }
    }

    #[test]
    fn distinct_full_pool_is_permutation() {
        let mut r = RngStream::new(11);
        let mut v = r.distinct(10, 10);
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<u32>>());
    }
}
