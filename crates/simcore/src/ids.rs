//! Entity identifiers shared across the workspace.
//!
//! All simulator entities are identified by small dense integers wrapped in
//! newtypes, so a `TxnId` can never be confused with an `ItemId` and the
//! per-entity state can live in plain `Vec`s indexed by the id.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! dense_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// Raw index, for use as a `Vec` subscript.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

dense_id!(
    /// A client site. Clients are numbered `0..num_clients`.
    ClientId,
    "C"
);

dense_id!(
    /// A data item in the server's (hot) database. The paper keeps the pool
    /// deliberately small (M = 25) to emulate hot-data contention.
    ItemId,
    "x"
);

dense_id!(
    /// A transaction instance. Ids are globally unique within one run and
    /// monotonically increasing in creation order, so comparing two
    /// `TxnId`s compares transaction ages (used by the "youngest victim"
    /// abort policy).
    TxnId,
    "T"
);

dense_id!(
    /// A server shard. The paper's model has exactly one server (Table 1:
    /// "Number of Servers: 1"), which is shard 0; the sharded scale-out
    /// partitions the hot-item pool across `0..num_shards`.
    ShardId,
    "S"
);

/// A committed version number of a data item. The server's initial copy of
/// every item is version 0; each committed writer increments it.
pub type Version = u64;

/// A network endpoint: one of the data-server shards or one of the clients.
///
/// The paper's model is a shared-nothing system with exactly one server
/// (Table 1: "Number of Servers: 1"); that case is `Server(ShardId(0))`,
/// available as [`SiteId::SERVER0`], and renders as plain `S` so
/// single-server traces and logs are unchanged.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SiteId {
    /// The data-server shard owning the authoritative copy of its items.
    Server(ShardId),
    /// A client workstation running transactions.
    Client(ClientId),
}

impl SiteId {
    /// The single server of the paper's one-server model: shard 0.
    pub const SERVER0: SiteId = SiteId::Server(ShardId(0));

    /// The server endpoint for the given raw shard index.
    #[inline]
    pub const fn server(shard: u32) -> SiteId {
        SiteId::Server(ShardId(shard))
    }

    /// True if this is a server endpoint (any shard).
    #[inline]
    pub fn is_server(self) -> bool {
        matches!(self, SiteId::Server(_))
    }

    /// The client id, if this is a client endpoint.
    #[inline]
    pub fn client(self) -> Option<ClientId> {
        match self {
            SiteId::Server(_) => None,
            SiteId::Client(c) => Some(c),
        }
    }

    /// The shard id, if this is a server endpoint.
    #[inline]
    pub fn shard(self) -> Option<ShardId> {
        match self {
            SiteId::Server(s) => Some(s),
            SiteId::Client(_) => None,
        }
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Shard 0 renders as plain `S` so single-server traces keep
            // their pre-sharding shape byte for byte.
            SiteId::Server(ShardId(0)) => write!(f, "S"),
            SiteId::Server(s) => write!(f, "{s:?}"),
            SiteId::Client(c) => write!(f, "{c:?}"),
        }
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<ClientId> for SiteId {
    fn from(c: ClientId) -> Self {
        SiteId::Client(c)
    }
}

impl From<ShardId> for SiteId {
    fn from(s: ShardId) -> Self {
        SiteId::Server(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_dense_indices() {
        let t = TxnId::new(7);
        assert_eq!(t.index(), 7);
        assert_eq!(format!("{t}"), "T7");
        let i = ItemId::from(3);
        assert_eq!(format!("{i:?}"), "x3");
    }

    #[test]
    fn txn_id_order_is_age_order() {
        // Lower id == created earlier == older.
        assert!(TxnId::new(1) < TxnId::new(2));
    }

    #[test]
    fn site_id_accessors() {
        assert!(SiteId::SERVER0.is_server());
        assert_eq!(SiteId::SERVER0.client(), None);
        let s: SiteId = ClientId::new(4).into();
        assert_eq!(s.client(), Some(ClientId::new(4)));
        assert_eq!(format!("{s}"), "C4");
        assert_eq!(format!("{}", SiteId::SERVER0), "S");
        assert_eq!(SiteId::SERVER0.shard(), Some(ShardId::new(0)));
    }

    #[test]
    fn server_shards_render_compactly() {
        // Shard 0 keeps the historical single-server rendering; higher
        // shards are distinguishable.
        assert_eq!(format!("{}", SiteId::server(0)), "S");
        assert_eq!(format!("{}", SiteId::server(3)), "S3");
        assert_eq!(SiteId::server(3).shard(), Some(ShardId::new(3)));
        let s: SiteId = ShardId::new(2).into();
        assert_eq!(s, SiteId::server(2));
    }
}
