//! The event calendar: a deterministic future-event list.
//!
//! A [`Calendar`] is a priority queue of `(time, seq, event)` triples. The
//! `seq` component is a monotonically increasing insertion counter that
//! breaks timestamp ties, so two events scheduled for the same instant pop
//! in the order they were scheduled. This makes whole simulation runs
//! reproducible bit-for-bit from a seed — a property every determinism
//! test in the workspace relies on.
//!
//! Events can be cancelled lazily through an [`EventHandle`]: each slot
//! carries two state bits (cancelled, fired) in a side bitmap indexed by
//! `seq`, so `cancel` is O(1) with no memmove and the pop loop skips dead
//! entries as it reaches them. A live-event counter is maintained
//! explicitly, which keeps `len()` exact even for the cancel-after-fire
//! race (a timer cancelled after it already popped must not count as a
//! pending tombstone).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Opaque handle to a scheduled event, used to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct EventHandle(u64);

#[derive(PartialEq, Eq)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; order entries so the *earliest* (time, seq)
// compares greatest via Reverse at the call sites. We implement Ord
// directly on (time, seq) and wrap in Reverse when pushing.
impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-seq lifecycle bits, two per slot, packed into u64 words.
///
/// Bit 0 of a pair: the event was cancelled while pending.
/// Bit 1 of a pair: the event fired (was returned from `pop`).
#[derive(Default)]
struct SlotBits {
    words: Vec<u64>,
}

const CANCELLED: u64 = 0b01;
const FIRED: u64 = 0b10;

impl SlotBits {
    #[inline]
    fn get(&self, seq: u64) -> u64 {
        let (word, shift) = (seq / 32, (seq % 32) * 2);
        self.words
            .get(word as usize)
            .map_or(0, |w| (w >> shift) & 0b11)
    }

    #[inline]
    fn set(&mut self, seq: u64, bits: u64) {
        let (word, shift) = (seq / 32, (seq % 32) * 2);
        let word = word as usize;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= bits << shift;
    }
}

/// Deterministic future-event list.
///
/// `E` is the simulation's event type; the calendar never interprets it.
///
/// # Example
/// ```
/// use g2pl_simcore::{Calendar, SimTime};
///
/// let mut cal: Calendar<&str> = Calendar::new();
/// cal.schedule(SimTime::new(5), "b");
/// cal.schedule(SimTime::new(3), "a");
/// cal.schedule(SimTime::new(5), "c"); // same instant as "b": FIFO
///
/// assert_eq!(cal.pop(), Some((SimTime::new(3), "a")));
/// assert_eq!(cal.pop(), Some((SimTime::new(5), "b")));
/// assert_eq!(cal.pop(), Some((SimTime::new(5), "c")));
/// assert_eq!(cal.pop(), None);
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    /// Two lifecycle bits per sequence number ever issued.
    slots: SlotBits,
    /// Exact number of scheduled, not-yet-fired, not-cancelled events.
    live: usize,
    /// High-water mark of `live` over the calendar's lifetime.
    peak_live: usize,
    /// Time of the most recently popped event; pops must never go backwards.
    now: SimTime,
}

impl<E: Eq> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> Calendar<E> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            slots: SlotBits::default(),
            live: 0,
            peak_live: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled, not-yet-fired) scheduled events.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Largest number of events that were simultaneously pending.
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (`at < now()`): a simulator that
    /// schedules into the past has corrupted causality.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        EventHandle(seq)
    }

    /// Schedule `event` a relative delay `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> EventHandle {
        self.schedule(self.now.after(delay), event)
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a silent no-op, which is
    /// the convenient semantics for timers raced by message arrivals.
    pub fn cancel(&mut self, handle: EventHandle) {
        // Sequence numbers from the future are impossible, and an event
        // that already fired or was already cancelled leaves no live slot
        // to retire — recording a tombstone for it would make `len()`
        // undercount forever.
        if handle.0 < self.next_seq && self.slots.get(handle.0) == 0 {
            self.slots.set(handle.0, CANCELLED);
            self.live -= 1;
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.slots.get(entry.seq) & CANCELLED != 0 {
                continue;
            }
            debug_assert!(entry.time >= self.now, "calendar time went backwards");
            self.slots.set(entry.seq, FIRED);
            self.live -= 1;
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Peek at the timestamp of the next live event without popping it.
    pub fn next_time(&mut self) -> Option<SimTime> {
        // Drain dead entries from the top so the peek is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.slots.get(entry.seq) & CANCELLED != 0 {
                self.heap.pop();
            } else {
                return Some(entry.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(10), 1u32);
        cal.schedule(SimTime::new(5), 2);
        cal.schedule(SimTime::new(10), 3);
        cal.schedule(SimTime::new(5), 4);
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(7), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::new(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(5), ());
        cal.pop();
        cal.schedule(SimTime::new(3), ());
    }

    #[test]
    fn cancel_skips_event() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1), "a");
        cal.schedule(SimTime::new(2), "b");
        cal.cancel(h);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop(), Some((SimTime::new(2), "b")));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1), "a");
        assert_eq!(cal.pop(), Some((SimTime::new(1), "a")));
        cal.cancel(h); // already fired
        cal.schedule(SimTime::new(2), "b");
        assert_eq!(cal.pop(), Some((SimTime::new(2), "b")));
    }

    #[test]
    fn cancel_after_fire_keeps_len_exact() {
        // Regression: cancelling a fired event used to insert a stale
        // tombstone, making `len()` undercount and eventually underflow.
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1), "a");
        assert_eq!(cal.pop(), Some((SimTime::new(1), "a")));
        assert!(cal.is_empty());
        cal.cancel(h); // already fired: must not change accounting
        assert_eq!(cal.len(), 0);
        assert!(cal.is_empty());
        cal.schedule(SimTime::new(2), "b");
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
        assert_eq!(cal.pop(), Some((SimTime::new(2), "b")));
        assert_eq!(cal.len(), 0);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1), "a");
        cal.cancel(h);
        cal.cancel(h);
        assert!(cal.is_empty());
        assert!(cal.pop().is_none());
    }

    #[test]
    fn double_cancel_keeps_len_exact() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1), "a");
        cal.schedule(SimTime::new(2), "b");
        cal.cancel(h);
        cal.cancel(h);
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn next_time_peeks_past_cancellations() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1), "a");
        cal.schedule(SimTime::new(9), "b");
        cal.cancel(h);
        assert_eq!(cal.next_time(), Some(SimTime::new(9)));
        assert_eq!(cal.pop(), Some((SimTime::new(9), "b")));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(4), 0u8);
        cal.pop();
        cal.schedule_in(SimTime::new(3), 1u8);
        assert_eq!(cal.pop(), Some((SimTime::new(7), 1u8)));
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut cal = Calendar::new();
        assert_eq!(cal.peak_len(), 0);
        let a = cal.schedule(SimTime::new(1), "a");
        cal.schedule(SimTime::new(2), "b");
        cal.schedule(SimTime::new(3), "c");
        assert_eq!(cal.peak_len(), 3);
        cal.cancel(a);
        cal.pop();
        assert_eq!(cal.len(), 1);
        // Peak is a lifetime high-water mark, not the current size.
        assert_eq!(cal.peak_len(), 3);
        cal.schedule(SimTime::new(9), "d");
        assert_eq!(cal.peak_len(), 3);
    }
}
