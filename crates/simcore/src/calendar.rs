//! The event calendar: a deterministic future-event list.
//!
//! A [`Calendar`] is a priority queue of `(time, seq, event)` triples. The
//! `seq` component is a monotonically increasing insertion counter that
//! breaks timestamp ties, so two events scheduled for the same instant pop
//! in the order they were scheduled. This makes whole simulation runs
//! reproducible bit-for-bit from a seed — a property every determinism
//! test in the workspace relies on.
//!
//! Events can be cancelled lazily through an [`EventHandle`]: cancellation
//! marks a slot in a side table and the pop loop skips dead entries.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Opaque handle to a scheduled event, used to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct EventHandle(u64);

#[derive(PartialEq, Eq)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; order entries so the *earliest* (time, seq)
// compares greatest via Reverse at the call sites. We implement Ord
// directly on (time, seq) and wrap in Reverse when pushing.
impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic future-event list.
///
/// `E` is the simulation's event type; the calendar never interprets it.
///
/// # Example
/// ```
/// use g2pl_simcore::{Calendar, SimTime};
///
/// let mut cal: Calendar<&str> = Calendar::new();
/// cal.schedule(SimTime::new(5), "b");
/// cal.schedule(SimTime::new(3), "a");
/// cal.schedule(SimTime::new(5), "c"); // same instant as "b": FIFO
///
/// assert_eq!(cal.pop(), Some((SimTime::new(3), "a")));
/// assert_eq!(cal.pop(), Some((SimTime::new(5), "b")));
/// assert_eq!(cal.pop(), Some((SimTime::new(5), "c")));
/// assert_eq!(cal.pop(), None);
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    /// Sorted list of cancelled sequence numbers awaiting their pop.
    cancelled: Vec<u64>,
    /// Time of the most recently popped event; pops must never go backwards.
    now: SimTime,
}

impl<E: Eq> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> Calendar<E> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (`at < now()`): a simulator that
    /// schedules into the past has corrupted causality.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
        EventHandle(seq)
    }

    /// Schedule `event` a relative delay `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> EventHandle {
        self.schedule(self.now.after(delay), event)
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a silent no-op, which is
    /// the convenient semantics for timers raced by message arrivals.
    pub fn cancel(&mut self, handle: EventHandle) {
        if let Err(pos) = self.cancelled.binary_search(&handle.0) {
            // Only remember the cancellation if the event could still be
            // pending: sequence numbers from the future are impossible.
            if handle.0 < self.next_seq {
                self.cancelled.insert(pos, handle.0);
            }
        }
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if let Ok(pos) = self.cancelled.binary_search(&entry.seq) {
                self.cancelled.remove(pos);
                continue;
            }
            debug_assert!(entry.time >= self.now, "calendar time went backwards");
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Peek at the timestamp of the next live event without popping it.
    pub fn next_time(&mut self) -> Option<SimTime> {
        // Drain dead entries from the top so the peek is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if let Ok(pos) = self.cancelled.binary_search(&entry.seq) {
                self.cancelled.remove(pos);
                self.heap.pop();
            } else {
                return Some(entry.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(10), 1u32);
        cal.schedule(SimTime::new(5), 2);
        cal.schedule(SimTime::new(10), 3);
        cal.schedule(SimTime::new(5), 4);
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(7), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::new(7));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(5), ());
        cal.pop();
        cal.schedule(SimTime::new(3), ());
    }

    #[test]
    fn cancel_skips_event() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1), "a");
        cal.schedule(SimTime::new(2), "b");
        cal.cancel(h);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop(), Some((SimTime::new(2), "b")));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1), "a");
        assert_eq!(cal.pop(), Some((SimTime::new(1), "a")));
        cal.cancel(h); // already fired
        cal.schedule(SimTime::new(2), "b");
        assert_eq!(cal.pop(), Some((SimTime::new(2), "b")));
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1), "a");
        cal.cancel(h);
        cal.cancel(h);
        assert!(cal.is_empty());
        assert!(cal.pop().is_none());
    }

    #[test]
    fn next_time_peeks_past_cancellations() {
        let mut cal = Calendar::new();
        let h = cal.schedule(SimTime::new(1), "a");
        cal.schedule(SimTime::new(9), "b");
        cal.cancel(h);
        assert_eq!(cal.next_time(), Some(SimTime::new(9)));
        assert_eq!(cal.pop(), Some((SimTime::new(9), "b")));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(4), 0u8);
        cal.pop();
        cal.schedule_in(SimTime::new(3), 1u8);
        assert_eq!(cal.pop(), Some((SimTime::new(7), 1u8)));
    }
}
