//! Property-based tests of the simulation kernel.

use g2pl_simcore::{Calendar, RngStream, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pops come out sorted by time, FIFO within a timestamp — i.e. the
    /// calendar is a stable priority queue.
    #[test]
    fn calendar_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1000, 1..300)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::new(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = cal.pop() {
            popped.push((t.units(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exact_subset(
        times in proptest::collection::vec(0u64..100, 1..100),
        kill_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut cal = Calendar::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, cal.schedule(SimTime::new(t), i)))
            .collect();
        let mut killed = Vec::new();
        for (i, h) in &handles {
            if *kill_mask.get(*i).unwrap_or(&false) {
                cal.cancel(*h);
                killed.push(*i);
            }
        }
        let mut survivors = Vec::new();
        while let Some((_, i)) = cal.pop() {
            survivors.push(i);
        }
        for k in &killed {
            prop_assert!(!survivors.contains(k), "cancelled event {k} fired");
        }
        prop_assert_eq!(survivors.len() + killed.len(), times.len());
    }

    /// The clock never runs backwards.
    #[test]
    fn clock_is_monotone(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut cal = Calendar::new();
        for &t in &times {
            cal.schedule(SimTime::new(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = cal.pop() {
            prop_assert!(t >= last);
            prop_assert_eq!(cal.now(), t);
            last = t;
        }
    }

    /// Derived RNG streams are deterministic and label-separated.
    #[test]
    fn rng_streams_deterministic(seed in any::<u64>()) {
        let mut a = RngStream::derive(seed, "alpha");
        let mut b = RngStream::derive(seed, "alpha");
        for _ in 0..16 {
            prop_assert_eq!(a.uniform_incl(0, u64::MAX / 2), b.uniform_incl(0, u64::MAX / 2));
        }
    }

    /// `distinct(k, pool)` always returns k unique in-range values.
    #[test]
    fn rng_distinct_property(seed in any::<u64>(), k in 1usize..20, extra in 0usize..30) {
        let pool = k + extra;
        let mut rng = RngStream::new(seed);
        let v = rng.distinct(k, pool);
        prop_assert_eq!(v.len(), k);
        let mut s = v.clone();
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), k);
        prop_assert!(v.iter().all(|&x| (x as usize) < pool));
    }

    /// SimTime arithmetic round-trips.
    #[test]
    fn simtime_roundtrip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (ta, tb) = (SimTime::new(a), SimTime::new(b));
        prop_assert_eq!((ta + tb).since(ta), tb);
        prop_assert_eq!(ta.after(tb), tb.after(ta));
    }
}
