//! One site's append-only write-ahead log.

use crate::record::{LogRecord, Lsn};
use g2pl_simcore::{ItemId, TxnId};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// Accumulated log statistics for one site.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LogMetrics {
    /// Total bytes appended over the run.
    pub bytes_written: u64,
    /// Bytes that had to be synchronously forced (commit records under
    /// the force-at-commit discipline).
    pub bytes_forced: u64,
    /// Number of force (fsync) operations.
    pub forces: u64,
    /// Largest number of live (non-collected) records ever resident.
    pub high_water_records: usize,
    /// Largest number of live bytes ever resident.
    pub high_water_bytes: u64,
    /// Records reclaimed by garbage collection.
    pub collected_records: u64,
}

/// A site's write-ahead log with permanence-driven garbage collection.
///
/// Appends are cheap bookkeeping; the log retains a transaction's records
/// until [`SiteLog::mark_permanent`] has been called for every item the
/// transaction updated *and* the transaction has terminated — the paper's
/// "garbage collects its log once the data are made permanent at the
/// server" rule. Aborted transactions' records are reclaimable as soon
/// as the abort record lands (their versions never become anyone's redo
/// responsibility).
#[derive(Clone, Debug, Default)]
pub struct SiteLog {
    next_lsn: Lsn,
    /// Live records, by LSN.
    live: BTreeMap<Lsn, (LogRecord, u64)>,
    /// Per transaction: outstanding items whose versions are not yet
    /// permanent at the server.
    awaiting: HashMap<TxnId, Vec<ItemId>>,
    /// Transactions that have terminated (committed or aborted).
    terminated: HashMap<TxnId, bool /* committed */>,
    item_size: u64,
    metrics: LogMetrics,
}

impl SiteLog {
    /// An empty log; `item_size` models the page size of update images.
    pub fn new(item_size: u64) -> Self {
        SiteLog {
            item_size,
            ..Default::default()
        }
    }

    /// Append a record, returning its LSN. Commit records are forced.
    pub fn append(&mut self, rec: LogRecord) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn = self.next_lsn.next();
        let size = rec.size_bytes(self.item_size);
        self.metrics.bytes_written += size;
        if matches!(rec, LogRecord::Commit { .. }) {
            self.metrics.bytes_forced += size;
            self.metrics.forces += 1;
        }
        match rec {
            LogRecord::Update { txn, item, .. } => {
                self.awaiting.entry(txn).or_default().push(item);
            }
            LogRecord::Commit { txn } => {
                // Terminal status is sticky: under faults a stale abort
                // notice can race a commit, and letting the later record
                // flip the flag would let `try_collect` reclaim a
                // committed transaction's redo records before its
                // versions are permanent at the server — a durability
                // hole. First terminal record wins; a conflicting one is
                // a protocol bug upstream.
                let prev = *self.terminated.entry(txn).or_insert(true);
                debug_assert!(prev, "commit record for already-aborted {txn:?}");
            }
            LogRecord::Abort { txn } => {
                let prev = *self.terminated.entry(txn).or_insert(false);
                debug_assert!(!prev, "abort record for already-committed {txn:?}");
            }
            LogRecord::Begin { .. } => {}
        }
        self.live.insert(lsn, (rec, size));
        self.metrics.high_water_records = self.metrics.high_water_records.max(self.live.len());
        self.metrics.high_water_bytes = self
            .metrics
            .high_water_bytes
            .max(self.live.values().map(|&(_, s)| s).sum());
        self.try_collect(rec.txn());
        lsn
    }

    /// The server has durably installed `txn`'s version of `item`; the
    /// corresponding redo obligation is lifted.
    pub fn mark_permanent(&mut self, txn: TxnId, item: ItemId) {
        if let Some(v) = self.awaiting.get_mut(&txn) {
            if let Some(pos) = v.iter().position(|&i| i == item) {
                v.swap_remove(pos);
            }
            if v.is_empty() {
                self.awaiting.remove(&txn);
            }
        }
        self.try_collect(txn);
    }

    /// Reclaim `txn`'s records if it has terminated and (for commits)
    /// every update is permanent.
    fn try_collect(&mut self, txn: TxnId) {
        let Some(&committed) = self.terminated.get(&txn) else {
            return;
        };
        if committed && self.awaiting.contains_key(&txn) {
            return; // some versions are still only on this site
        }
        self.awaiting.remove(&txn); // aborted txns owe no redo
        self.terminated.remove(&txn);
        let victims: Vec<Lsn> = self
            .live
            .iter()
            .filter(|(_, (r, _))| r.txn() == txn)
            .map(|(&l, _)| l)
            .collect();
        self.metrics.collected_records += victims.len() as u64;
        for l in victims {
            self.live.remove(&l);
        }
    }

    /// True while `txn` still has updated items whose versions are not
    /// yet permanent at the server. Engines use this to assert the GC
    /// rule across redispatches: a committed writer on an aborted and
    /// redispatched forward list must keep its records until the
    /// *redispatched* version is installed.
    pub fn awaits_permanence(&self, txn: TxnId) -> bool {
        self.awaiting.contains_key(&txn)
    }

    /// Live (uncollected) record count.
    pub fn live_records(&self) -> usize {
        self.live.len()
    }

    /// Live (uncollected) bytes.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().map(|&(_, s)| s).sum()
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> LogMetrics {
        self.metrics
    }

    /// True when every record has been reclaimed (drain invariant).
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }
    fn x(i: u32) -> ItemId {
        ItemId::new(i)
    }

    fn committed_txn(log: &mut SiteLog, txn: TxnId, items: &[ItemId]) {
        log.append(LogRecord::Begin { txn });
        for &item in items {
            log.append(LogRecord::Update {
                txn,
                item,
                old: 0,
                new: 1,
            });
        }
        log.append(LogRecord::Commit { txn });
    }

    #[test]
    fn commit_forces_exactly_once() {
        let mut log = SiteLog::new(4096);
        committed_txn(&mut log, t(1), &[x(0)]);
        assert_eq!(log.metrics().forces, 1);
        assert_eq!(log.metrics().bytes_forced, 32);
    }

    #[test]
    fn committed_records_survive_until_permanent() {
        let mut log = SiteLog::new(4096);
        committed_txn(&mut log, t(1), &[x(0), x(1)]);
        assert_eq!(log.live_records(), 4, "begin + 2 updates + commit");
        log.mark_permanent(t(1), x(0));
        assert_eq!(log.live_records(), 4, "one item still outstanding");
        log.mark_permanent(t(1), x(1));
        assert!(log.is_empty(), "all permanent + terminated => collected");
        assert_eq!(log.metrics().collected_records, 4);
    }

    #[test]
    fn aborts_collect_immediately() {
        let mut log = SiteLog::new(4096);
        log.append(LogRecord::Begin { txn: t(2) });
        log.append(LogRecord::Update {
            txn: t(2),
            item: x(0),
            old: 0,
            new: 1,
        });
        log.append(LogRecord::Abort { txn: t(2) });
        assert!(log.is_empty(), "aborted txns owe nothing");
    }

    #[test]
    fn permanence_before_commit_is_remembered() {
        // Out-of-order: the server installs before the commit record
        // lands (possible in g-2PL when the item returns home while the
        // committing forward is still in flight is NOT possible, but the
        // API must tolerate any call order).
        let mut log = SiteLog::new(4096);
        log.append(LogRecord::Begin { txn: t(3) });
        log.append(LogRecord::Update {
            txn: t(3),
            item: x(5),
            old: 0,
            new: 1,
        });
        log.mark_permanent(t(3), x(5));
        assert_eq!(log.live_records(), 2, "not yet terminated");
        log.append(LogRecord::Commit { txn: t(3) });
        assert!(log.is_empty());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "already-committed"))]
    fn stale_abort_cannot_downgrade_a_commit() {
        let mut log = SiteLog::new(4096);
        committed_txn(&mut log, t(7), &[x(0)]);
        assert!(log.awaits_permanence(t(7)));
        // A stale abort notice racing the commit must not let GC reclaim
        // the committed records before permanence (debug builds assert;
        // release builds repair by keeping the committed status).
        log.append(LogRecord::Abort { txn: t(7) });
        assert!(
            log.awaits_permanence(t(7)),
            "redo obligation must survive the stale abort"
        );
        assert!(!log.is_empty(), "records must not collect early");
        log.mark_permanent(t(7), x(0));
        assert!(log.is_empty(), "collected only once permanent");
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut log = SiteLog::new(100);
        committed_txn(&mut log, t(1), &[x(0)]);
        let peak = log.metrics().high_water_bytes;
        assert_eq!(peak, 32 + (32 + 200) + 32);
        log.mark_permanent(t(1), x(0));
        assert!(log.is_empty());
        assert_eq!(log.metrics().high_water_bytes, peak, "high water sticks");
    }

    #[test]
    fn read_only_txn_collects_at_commit() {
        let mut log = SiteLog::new(4096);
        log.append(LogRecord::Begin { txn: t(4) });
        log.append(LogRecord::Commit { txn: t(4) });
        assert!(log.is_empty(), "nothing awaited, collected at once");
    }

    #[test]
    fn interleaved_txns_collect_independently() {
        let mut log = SiteLog::new(4096);
        log.append(LogRecord::Begin { txn: t(1) });
        log.append(LogRecord::Begin { txn: t(2) });
        log.append(LogRecord::Update {
            txn: t(1),
            item: x(0),
            old: 0,
            new: 1,
        });
        log.append(LogRecord::Update {
            txn: t(2),
            item: x(1),
            old: 0,
            new: 1,
        });
        log.append(LogRecord::Commit { txn: t(1) });
        log.append(LogRecord::Commit { txn: t(2) });
        log.mark_permanent(t(2), x(1));
        assert_eq!(log.live_records(), 3, "t1's records remain");
        log.mark_permanent(t(1), x(0));
        assert!(log.is_empty());
    }
}
