//! # g2pl-wal
//!
//! Per-site write-ahead logging, the recovery substrate the paper assumes
//! without evaluating: "we assume that the sites follow the standard
//! protocol adopted by the s-2PL protocol where each site uses WAL and
//! garbage collects its log once the data are made permanent at the
//! server" (§1, citing Mohan & Narang's fast inter-system page transfer
//! protocols).
//!
//! The interesting protocol-dependent quantity is **log retention**: a
//! site may only garbage-collect the records of a transaction once every
//! version that transaction produced is *permanent at the server*. Under
//! s-2PL that happens at commit (the commit message carries the dirty
//! data home), so logs stay shallow. Under g-2PL a committed version
//! migrates client-to-client and reaches the server only when the item's
//! forward list drains — so clients must retain log records long past
//! commit, and the log high-water mark grows with the forward-list
//! length. The engines expose this via [`SiteLog`] bookkeeping, and the
//! `ext-log-retention` experiment plots it.
//!
//! Components:
//! * [`record::LogRecord`], [`record::Lsn`] — typed records with
//!   monotonically increasing log sequence numbers;
//! * [`log::SiteLog`] — one site's append-only log with force-at-commit
//!   accounting and permanence-driven garbage collection;
//! * [`log::LogMetrics`] — bytes written/forced, high-water marks;
//! * [`server::ServerLog`] — the data server's durable checkpoint log
//!   (grants, forward-list dispatches, permanence), replayed into a
//!   [`server::ServerImage`] by the crash-recovery protocol.

pub mod log;
pub mod record;
pub mod server;

pub use log::{LogMetrics, SiteLog};
pub use record::{LogRecord, Lsn};
pub use server::{
    DispatchImage, PreparedImage, ServerImage, ServerLog, ServerLogMetrics, ServerRecord,
};
