//! Log records and sequence numbers.

use g2pl_simcore::{ItemId, TxnId, Version};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A log sequence number: position of a record in one site's log.
/// Strictly increasing per site; not comparable across sites.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The position before the first record.
    pub const ZERO: Lsn = Lsn(0);

    /// The next sequence number.
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// One write-ahead log record.
///
/// The payload sizes are modelled, not stored: the simulator cares about
/// log *volume* and retention, not byte contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A transaction started at this site.
    Begin {
        /// The starting transaction.
        txn: TxnId,
    },
    /// A before/after-image pair for an updated item (undo + redo).
    Update {
        /// The writing transaction.
        txn: TxnId,
        /// The item written.
        item: ItemId,
        /// Version overwritten (undo image).
        old: Version,
        /// Version produced (redo image).
        new: Version,
    },
    /// The transaction committed; under WAL this record must be forced
    /// to stable storage before the commit is acknowledged.
    Commit {
        /// The committing transaction.
        txn: TxnId,
    },
    /// The transaction aborted (its updates roll back locally).
    Abort {
        /// The aborting transaction.
        txn: TxnId,
    },
}

impl LogRecord {
    /// The transaction the record belongs to.
    pub fn txn(&self) -> TxnId {
        match *self {
            LogRecord::Begin { txn }
            | LogRecord::Update { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => txn,
        }
    }

    /// Modelled on-disk size of the record in bytes: fixed header plus a
    /// full page pair for updates.
    pub fn size_bytes(&self, item_size: u64) -> u64 {
        match self {
            LogRecord::Update { .. } => 32 + 2 * item_size,
            _ => 32,
        }
    }

    /// Whether the record terminates its transaction.
    pub fn is_terminal(&self) -> bool {
        matches!(self, LogRecord::Commit { .. } | LogRecord::Abort { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ordering_and_next() {
        assert!(Lsn::ZERO < Lsn::ZERO.next());
        assert_eq!(Lsn(5).next(), Lsn(6));
        assert_eq!(format!("{}", Lsn(3)), "lsn3");
    }

    #[test]
    fn record_txn_extraction() {
        let t = TxnId::new(7);
        for r in [
            LogRecord::Begin { txn: t },
            LogRecord::Update {
                txn: t,
                item: ItemId::new(0),
                old: 1,
                new: 2,
            },
            LogRecord::Commit { txn: t },
            LogRecord::Abort { txn: t },
        ] {
            assert_eq!(r.txn(), t);
        }
    }

    #[test]
    fn sizes_reflect_update_images() {
        let t = TxnId::new(0);
        let upd = LogRecord::Update {
            txn: t,
            item: ItemId::new(0),
            old: 0,
            new: 1,
        };
        assert_eq!(upd.size_bytes(4096), 32 + 8192);
        assert_eq!(LogRecord::Commit { txn: t }.size_bytes(4096), 32);
    }

    #[test]
    fn terminal_records() {
        let t = TxnId::new(0);
        assert!(LogRecord::Commit { txn: t }.is_terminal());
        assert!(LogRecord::Abort { txn: t }.is_terminal());
        assert!(!LogRecord::Begin { txn: t }.is_terminal());
    }
}
