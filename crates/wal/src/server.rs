//! The data server's durable log for crash recovery.
//!
//! Client-side logging ([`SiteLog`]) answers "which committed versions
//! does this client still owe the server?"; the server's log answers the
//! dual question after a server crash: "which grants, forward-list
//! dispatches, and permanently installed versions had the server already
//! promised before it died?" The engines append a [`ServerRecord`] at
//! every externally visible server decision — a lock grant, a
//! forward-list construction/reorder ([`ServerRecord::Dispatch`]), a
//! commit application, a version becoming permanent — under a
//! write-ahead discipline: the record is forced before the message that
//! reveals the decision leaves the server.
//!
//! On restart the engine calls [`ServerLog::replay`], which folds the
//! durable prefix into a [`ServerImage`]: per-item permanent versions,
//! the last dispatched forward list (epoch, base version, entry list),
//! which items were checked out at the instant of the crash, which
//! transactions' commits were already applied, and which lock grants
//! were outstanding. The image seeds the re-registration handshake; it
//! is deliberately *not* enough to resume on its own, because committed
//! versions may live only in client logs until forward lists drain.
//!
//! Internally the log is a checkpoint image plus an append tail; the
//! tail folds into the checkpoint when it grows past a threshold, which
//! bounds memory without ever discarding recovery-relevant facts
//! (classic checkpoint + log-suffix recovery, compressed to its
//! simulation-observable core).
//!
//! [`SiteLog`]: crate::SiteLog

use g2pl_simcore::{ItemId, TxnId, Version};
use std::collections::{BTreeMap, BTreeSet};

/// One durable server-side checkpoint record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerRecord {
    /// A lock grant shipped to a client (s-2PL / c-2PL). Forced before
    /// the grant message leaves, so recovery can restore the exact
    /// outstanding lock set and validate re-registered claims against
    /// the durable grant history.
    Grant {
        /// Grantee transaction.
        txn: TxnId,
        /// Granted item.
        item: ItemId,
        /// True for an exclusive grant, false for shared.
        exclusive: bool,
    },
    /// All of `txn`'s grants released (commit applied or abort); its
    /// `Grant` records are dead and compaction may fold them away.
    Released {
        /// Releasing transaction.
        txn: TxnId,
    },
    /// `txn` is *prepared* at this shard: the shard votes yes in the
    /// two-phase commitment of a multi-home transaction and promises to
    /// apply `writes` if the coordinator decides commit. Forced before
    /// the prepare ack leaves, so a crash after the vote leaves the
    /// transaction in doubt (resolved by querying the other `involved`
    /// shards) instead of silently forgotten. Retired by a subsequent
    /// `Committed` or `Released` for the same transaction, per presumed
    /// abort.
    Prepared {
        /// Prepared transaction.
        txn: TxnId,
        /// The write slice this shard promised to apply, as
        /// `(item, version)` pairs.
        writes: Vec<(ItemId, Version)>,
        /// Bitmask of every shard involved in the transaction (bit `k`
        /// set = shard `k` participates), so recovery knows whom to ask.
        involved: u64,
    },
    /// `txn`'s commit was applied at the server (s-2PL / c-2PL). Forced
    /// before the commit ack leaves, so a retransmitted commit after a
    /// crash is recognized as a duplicate instead of re-applied.
    Committed {
        /// Committing transaction.
        txn: TxnId,
    },
    /// `version` of `item` is permanently installed at the server.
    Permanent {
        /// Installed item.
        item: ItemId,
        /// Installed version.
        version: Version,
    },
    /// A forward list was constructed (or reconstructed by lease/crash
    /// recovery) and dispatched for `item` (g-2PL). Forced before the
    /// first data segment leaves. `entries` records the ordered FL
    /// membership so recovery can enumerate holders even if none of
    /// them survive to re-register.
    Dispatch {
        /// Dispatched item.
        item: ItemId,
        /// Dispatch epoch stamped into every segment of this FL.
        epoch: u64,
        /// Item version at dispatch time (base of the FL's version chain).
        base: Version,
        /// Ordered FL entries as `(txn, exclusive)` pairs.
        entries: Vec<(TxnId, bool)>,
    },
    /// `item` returned home at `version` (g-2PL): the outstanding
    /// dispatch for it is complete and its writers' versions are
    /// permanent.
    Home {
        /// Returned item.
        item: ItemId,
        /// Version the item came home at.
        version: Version,
    },
}

impl ServerRecord {
    /// Nominal serialized size, for log-volume accounting.
    fn size_bytes(&self) -> u64 {
        match self {
            ServerRecord::Dispatch { entries, .. } => 24 + 8 * entries.len() as u64,
            ServerRecord::Prepared { writes, .. } => 24 + 12 * writes.len() as u64,
            _ => 24,
        }
    }

    /// Records forced at append time: anything a subsequently shipped
    /// message would reveal (write-ahead rule).
    fn is_forced(&self) -> bool {
        matches!(
            self,
            ServerRecord::Grant { .. }
                | ServerRecord::Prepared { .. }
                | ServerRecord::Committed { .. }
                | ServerRecord::Dispatch { .. }
        )
    }
}

/// One in-doubt prepared transaction, as recovered from the log: a
/// durable `Prepared` record with no subsequent `Committed` or
/// `Released` to retire it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedImage {
    /// The write slice this shard promised to apply on commit.
    pub writes: Vec<(ItemId, Version)>,
    /// Bitmask of every involved shard.
    pub involved: u64,
}

/// The last dispatched forward list for one item, as recovered from the
/// log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DispatchImage {
    /// Epoch of the dispatch.
    pub epoch: u64,
    /// Item version when the FL was dispatched.
    pub base: Version,
    /// Ordered FL entries as `(txn, exclusive)` pairs.
    pub entries: Vec<(TxnId, bool)>,
}

/// The durable state reconstructed by replaying a [`ServerLog`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerImage {
    /// Last permanently installed version per item (items absent were
    /// never written; their version is 0).
    pub versions: BTreeMap<ItemId, Version>,
    /// Outstanding lock grants per transaction, each mapped to whether
    /// the grant was exclusive (grants of released transactions have
    /// been folded away).
    pub grants: BTreeMap<TxnId, BTreeMap<ItemId, bool>>,
    /// Transactions whose commit was applied at the server.
    pub committed: BTreeSet<TxnId>,
    /// In-doubt transactions: prepared here, with the commit decision
    /// unknown at the instant the log ends. Seeds the recovery-time
    /// commit-status queries to the other involved shards.
    pub prepared: BTreeMap<TxnId, PreparedImage>,
    /// Last dispatch per item, whether or not it has since come home.
    pub dispatches: BTreeMap<ItemId, DispatchImage>,
    /// Items whose last dispatch has not come home: checked out at the
    /// moment the log ends (i.e. at the crash).
    pub out: BTreeSet<ItemId>,
}

impl ServerImage {
    /// Last durable version of `item` (0 if never written).
    pub fn version_of(&self, item: ItemId) -> Version {
        self.versions.get(&item).copied().unwrap_or(0)
    }

    /// Was `txn`'s commit already applied before the crash?
    pub fn is_committed(&self, txn: TxnId) -> bool {
        self.committed.contains(&txn)
    }

    /// Was `(txn, item)` a durably recorded grant still outstanding at
    /// the crash?
    pub fn was_granted(&self, txn: TxnId, item: ItemId) -> bool {
        self.grants.get(&txn).is_some_and(|s| s.contains_key(&item))
    }

    /// Fold one record into the image (replay step).
    fn fold(&mut self, rec: &ServerRecord) {
        match rec {
            ServerRecord::Grant {
                txn,
                item,
                exclusive,
            } => {
                self.grants
                    .entry(*txn)
                    .or_default()
                    .insert(*item, *exclusive);
            }
            ServerRecord::Released { txn } => {
                self.grants.remove(txn);
                self.prepared.remove(txn);
            }
            ServerRecord::Prepared {
                txn,
                writes,
                involved,
            } => {
                self.prepared.insert(
                    *txn,
                    PreparedImage {
                        writes: writes.clone(),
                        involved: *involved,
                    },
                );
            }
            ServerRecord::Committed { txn } => {
                self.committed.insert(*txn);
                self.prepared.remove(txn);
            }
            ServerRecord::Permanent { item, version } => {
                self.versions.insert(*item, *version);
            }
            ServerRecord::Dispatch {
                item,
                epoch,
                base,
                entries,
            } => {
                self.dispatches.insert(
                    *item,
                    DispatchImage {
                        epoch: *epoch,
                        base: *base,
                        entries: entries.clone(),
                    },
                );
                self.out.insert(*item);
            }
            ServerRecord::Home { item, version } => {
                self.versions.insert(*item, *version);
                self.out.remove(item);
            }
        }
    }
}

/// Accumulated statistics for the server log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerLogMetrics {
    /// Records appended over the run.
    pub records: u64,
    /// Total bytes appended.
    pub bytes_written: u64,
    /// Bytes forced under the write-ahead rule.
    pub bytes_forced: u64,
    /// Number of force operations.
    pub forces: u64,
    /// Checkpoint compactions performed.
    pub compactions: u64,
}

/// Tail length at which the log folds into its checkpoint image.
const COMPACT_THRESHOLD: usize = 1024;

/// The server's append-only recovery log: checkpoint image + tail.
#[derive(Clone, Debug, Default)]
pub struct ServerLog {
    checkpoint: ServerImage,
    tail: Vec<ServerRecord>,
    metrics: ServerLogMetrics,
}

impl ServerLog {
    /// An empty log.
    pub fn new() -> Self {
        ServerLog::default()
    }

    /// Durably append one record. Forced records model an immediate
    /// fsync; the rest ride along with the next force.
    pub fn append(&mut self, rec: ServerRecord) {
        let size = rec.size_bytes();
        self.metrics.records += 1;
        self.metrics.bytes_written += size;
        if rec.is_forced() {
            self.metrics.bytes_forced += size;
            self.metrics.forces += 1;
        }
        self.tail.push(rec);
        if self.tail.len() >= COMPACT_THRESHOLD {
            self.compact();
        }
    }

    /// Fold the tail into the checkpoint image. Loses no recovery
    /// information — the image is exactly what `replay` would produce.
    pub fn compact(&mut self) {
        for rec in self.tail.drain(..) {
            self.checkpoint.fold(&rec);
        }
        self.metrics.compactions += 1;
    }

    /// Reconstruct the durable server state after a crash.
    pub fn replay(&self) -> ServerImage {
        let mut image = self.checkpoint.clone();
        for rec in &self.tail {
            image.fold(rec);
        }
        image
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> ServerLogMetrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId::new(i)
    }
    fn x(i: u32) -> ItemId {
        ItemId::new(i)
    }

    #[test]
    fn replay_reconstructs_grants_until_release() {
        let mut log = ServerLog::new();
        log.append(ServerRecord::Grant {
            txn: t(1),
            item: x(0),
            exclusive: true,
        });
        log.append(ServerRecord::Grant {
            txn: t(1),
            item: x(3),
            exclusive: false,
        });
        log.append(ServerRecord::Grant {
            txn: t(2),
            item: x(1),
            exclusive: true,
        });
        log.append(ServerRecord::Released { txn: t(1) });
        let img = log.replay();
        assert!(!img.was_granted(t(1), x(0)));
        assert!(!img.was_granted(t(1), x(3)));
        assert!(img.was_granted(t(2), x(1)));
    }

    #[test]
    fn replay_tracks_commits_and_versions() {
        let mut log = ServerLog::new();
        log.append(ServerRecord::Committed { txn: t(5) });
        log.append(ServerRecord::Permanent {
            item: x(2),
            version: 1,
        });
        log.append(ServerRecord::Permanent {
            item: x(2),
            version: 2,
        });
        let img = log.replay();
        assert!(img.is_committed(t(5)));
        assert!(!img.is_committed(t(6)));
        assert_eq!(img.version_of(x(2)), 2);
        assert_eq!(img.version_of(x(9)), 0, "unwritten items are version 0");
    }

    #[test]
    fn last_dispatch_wins_and_home_clears_out() {
        let mut log = ServerLog::new();
        log.append(ServerRecord::Dispatch {
            item: x(4),
            epoch: 1,
            base: 0,
            entries: vec![(t(1), true)],
        });
        log.append(ServerRecord::Home {
            item: x(4),
            version: 1,
        });
        log.append(ServerRecord::Dispatch {
            item: x(4),
            epoch: 2,
            base: 1,
            entries: vec![(t(2), false), (t(3), true)],
        });
        let img = log.replay();
        assert!(img.out.contains(&x(4)), "second dispatch still out");
        let d = &img.dispatches[&x(4)];
        assert_eq!((d.epoch, d.base), (2, 1));
        assert_eq!(d.entries, vec![(t(2), false), (t(3), true)]);
        assert_eq!(img.version_of(x(4)), 1, "home installed version 1");
    }

    #[test]
    fn compaction_preserves_replay() {
        let mut a = ServerLog::new();
        let mut b = ServerLog::new();
        for i in 0..2000u32 {
            let rec = match i % 5 {
                0 => ServerRecord::Grant {
                    txn: t(i),
                    item: x(i % 7),
                    exclusive: i % 2 == 0,
                },
                1 => ServerRecord::Committed { txn: t(i - 1) },
                2 => ServerRecord::Permanent {
                    item: x(i % 7),
                    version: Version::from(i / 5 + 1),
                },
                3 => ServerRecord::Dispatch {
                    item: x(i % 7),
                    epoch: u64::from(i),
                    base: Version::from(i / 5),
                    entries: vec![(t(i), i % 2 == 0)],
                },
                _ => ServerRecord::Released { txn: t(i - 4) },
            };
            a.append(rec.clone());
            b.append(rec);
        }
        // Force extra compactions on one copy only.
        a.compact();
        a.compact();
        assert_eq!(a.replay(), b.replay());
        assert!(a.metrics().compactions > b.metrics().compactions);
        assert_eq!(a.metrics().records, 2000);
    }

    #[test]
    fn prepared_stays_in_doubt_until_retired() {
        let mut log = ServerLog::new();
        let prep = |txn: TxnId| ServerRecord::Prepared {
            txn,
            writes: vec![(x(1), 3)],
            involved: 0b101,
        };
        // Prepared then committed: retired, not in doubt.
        log.append(prep(t(1)));
        log.append(ServerRecord::Committed { txn: t(1) });
        // Prepared then released (abort): retired too.
        log.append(prep(t(2)));
        log.append(ServerRecord::Released { txn: t(2) });
        // Prepared with no decision: the crash leaves it in doubt.
        log.append(prep(t(3)));
        let img = log.replay();
        assert!(!img.prepared.contains_key(&t(1)));
        assert!(!img.prepared.contains_key(&t(2)));
        let p = &img.prepared[&t(3)];
        assert_eq!(p.writes, vec![(x(1), 3)]);
        assert_eq!(p.involved, 0b101);
        // The vote is forced before the ack leaves (write-ahead rule),
        // and compaction does not lose in-doubt entries.
        log.compact();
        assert_eq!(log.replay().prepared, img.prepared);
    }

    #[test]
    fn write_ahead_records_are_forced() {
        let mut log = ServerLog::new();
        log.append(ServerRecord::Grant {
            txn: t(1),
            item: x(0),
            exclusive: true,
        });
        log.append(ServerRecord::Permanent {
            item: x(0),
            version: 1,
        });
        log.append(ServerRecord::Home {
            item: x(0),
            version: 1,
        });
        log.append(ServerRecord::Committed { txn: t(1) });
        assert_eq!(log.metrics().forces, 2, "grant + committed force");
        assert_eq!(log.metrics().records, 4);
    }
}
