//! Property-based tests of the write-ahead log's GC rule.
//!
//! The invariant under test is the durability core of the whole fault
//! subsystem: a committed transaction's records are never collected
//! while any of its versions is still awaiting permanence at the server
//! — no matter how a fault plan reorders, duplicates, or drops the
//! permanence notifications, and no matter how late a stale abort
//! notice arrives.

use g2pl_simcore::{ItemId, TxnId};
use g2pl_wal::{LogRecord, SiteLog};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// One step of a randomized log history, as a fault-plan-shaped schedule
/// would drive it: begins, updates, terminations, permanence callbacks
/// (possibly duplicated or for the wrong item — lost callbacks are
/// modeled simply by never generating them).
#[derive(Clone, Debug)]
enum Op {
    Begin { txn: u32 },
    Update { txn: u32, item: u32 },
    Commit { txn: u32 },
    Abort { txn: u32 },
    MarkPermanent { txn: u32, item: u32 },
}

fn arb_op(txns: u32, items: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => (0..txns).prop_map(|txn| Op::Begin { txn }),
        3 => (0..txns, 0..items).prop_map(|(txn, item)| Op::Update { txn, item }),
        1 => (0..txns).prop_map(|txn| Op::Commit { txn }),
        1 => (0..txns).prop_map(|txn| Op::Abort { txn }),
        3 => (0..txns, 0..items).prop_map(|(txn, item)| Op::MarkPermanent { txn, item }),
    ]
}

/// Replay a schedule against a `SiteLog`, tracking the ground truth of
/// what each committed transaction still owes, and assert after every
/// step that no owed record has been collected.
fn run_script(ops: &[Op]) {
    let mut log = SiteLog::new(512);
    // Ground truth, maintained independently of the log's bookkeeping.
    let mut updates: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut committed: HashSet<u32> = HashSet::new();
    let mut aborted: HashSet<u32> = HashSet::new();
    let mut begun: HashSet<u32> = HashSet::new();
    for op in ops {
        match *op {
            Op::Begin { txn } => {
                if begun.contains(&txn) || committed.contains(&txn) || aborted.contains(&txn) {
                    continue; // one begin per txn id
                }
                begun.insert(txn);
                log.append(LogRecord::Begin {
                    txn: TxnId::new(txn),
                });
            }
            Op::Update { txn, item } => {
                if !begun.contains(&txn) || committed.contains(&txn) || aborted.contains(&txn) {
                    continue; // updates only while active
                }
                updates.entry(txn).or_default().push(item);
                log.append(LogRecord::Update {
                    txn: TxnId::new(txn),
                    item: ItemId::new(item),
                    old: 0,
                    new: 1,
                });
            }
            Op::Commit { txn } => {
                if !begun.contains(&txn) || committed.contains(&txn) || aborted.contains(&txn) {
                    continue;
                }
                committed.insert(txn);
                log.append(LogRecord::Commit {
                    txn: TxnId::new(txn),
                });
            }
            Op::Abort { txn } => {
                // Stale aborts for committed txns are exercised by the
                // dedicated unit test (they debug-assert); here we only
                // abort genuinely active transactions.
                if !begun.contains(&txn) || committed.contains(&txn) || aborted.contains(&txn) {
                    continue;
                }
                aborted.insert(txn);
                updates.remove(&txn);
                log.append(LogRecord::Abort {
                    txn: TxnId::new(txn),
                });
            }
            Op::MarkPermanent { txn, item } => {
                // The server may confirm permanence for any (txn, item),
                // including duplicates and pairs that were never updated
                // — as duplicated/misdirected fault-plan deliveries
                // would produce. The log must tolerate all of them.
                if let Some(v) = updates.get_mut(&txn) {
                    if let Some(pos) = v.iter().position(|&i| i == item) {
                        v.swap_remove(pos);
                        if v.is_empty() {
                            updates.remove(&txn);
                        }
                    }
                }
                log.mark_permanent(TxnId::new(txn), ItemId::new(item));
            }
        }
        // The invariant: every committed txn with outstanding versions
        // still has live records (its redo set was not collected), and
        // the log agrees about what is outstanding.
        for (&txn, items) in &updates {
            if committed.contains(&txn) {
                assert!(!items.is_empty());
                assert!(
                    log.awaits_permanence(TxnId::new(txn)),
                    "T{txn} owes {items:?} but the log dropped its obligation"
                );
                assert!(
                    log.live_records() > 0,
                    "T{txn} owes versions but the log is empty"
                );
            }
        }
    }
    // Drain: confirm every outstanding version; everything must collect.
    let owed: Vec<(u32, Vec<u32>)> = updates
        .iter()
        .filter(|(t, _)| committed.contains(t))
        .map(|(&t, v)| (t, v.clone()))
        .collect();
    for (txn, items) in owed {
        for item in items {
            log.mark_permanent(TxnId::new(txn), ItemId::new(item));
        }
    }
    // Transactions still active at the end abort (crash-style cleanup).
    for &txn in &begun {
        if !committed.contains(&txn) && !aborted.contains(&txn) {
            log.append(LogRecord::Abort {
                txn: TxnId::new(txn),
            });
        }
    }
    assert!(
        log.is_empty(),
        "after full permanence + termination the log must drain, {} records live",
        log.live_records()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn committed_records_never_collect_before_permanence(
        ops in proptest::collection::vec(arb_op(10, 8), 1..300)
    ) {
        run_script(&ops);
    }
}
