//! Committed-transaction histories for offline correctness checking.
//!
//! Both protocols must produce serializable, strict executions. Engines
//! optionally record, per committed transaction, the version of every item
//! it read and the version it installed for every item it wrote; the
//! checker in `g2pl-core::verify` rebuilds the version-order conflict
//! graph from this record and asserts acyclicity.

use g2pl_simcore::{ItemId, SimTime, TxnId, Version};
use g2pl_workload::AccessMode;
use serde::{Deserialize, Serialize};

/// One access of a committed transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// The item accessed.
    pub item: ItemId,
    /// Read or write.
    pub mode: AccessMode,
    /// For reads: the version observed. For writes: the version
    /// *installed* (observed version + 1).
    pub version: Version,
}

/// The commit record of one transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitRecord {
    /// The committed transaction.
    pub txn: TxnId,
    /// Commit instant (client-local).
    pub at: SimTime,
    /// Every access, in issue order.
    pub accesses: Vec<AccessRecord>,
}

/// An ordered log of commit records.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct History {
    records: Vec<CommitRecord>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a commit record. Records arrive in commit-event order.
    pub fn push(&mut self, rec: CommitRecord) {
        debug_assert!(
            self.records.last().is_none_or(|r| r.at <= rec.at),
            "commit records must arrive in time order"
        );
        self.records.push(rec);
    }

    /// All records, in commit order.
    pub fn records(&self) -> &[CommitRecord] {
        &self.records
    }

    /// Number of committed transactions recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no commits were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut h = History::new();
        h.push(CommitRecord {
            txn: TxnId::new(1),
            at: SimTime::new(10),
            accesses: vec![AccessRecord {
                item: ItemId::new(0),
                mode: AccessMode::Write,
                version: 1,
            }],
        });
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
        assert_eq!(h.records()[0].txn, TxnId::new(1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time order")]
    fn out_of_order_commit_panics_in_debug() {
        let mut h = History::new();
        let rec = |at| CommitRecord {
            txn: TxnId::new(0),
            at: SimTime::new(at),
            accesses: vec![],
        };
        h.push(rec(10));
        h.push(rec(5));
    }
}
